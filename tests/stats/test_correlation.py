"""Tests for the Pearson and Spearman correlation implementations."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.correlation import pearson_correlation, spearman_rank_correlation


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        expected = float(np.corrcoef(x, y)[0, 1])
        assert pearson_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_zero_variance_returns_nan(self):
        assert math.isnan(pearson_correlation([1, 1, 1], [1, 2, 3]))

    def test_clipped_into_range(self):
        r = pearson_correlation([1.0, 2.0, 3.0], [1.0 + 1e-15, 2.0, 3.0 - 1e-15])
        assert -1.0 <= r <= 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_few_observations_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])

    def test_two_dimensional_input_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))


class TestSpearmanRankCorrelation:
    def test_monotone_nonlinear_is_perfect(self):
        # Spearman sees through monotone transforms that break Pearson.
        x = [1.0, 2.0, 3.0, 4.0, 5.0]
        y = [math.exp(v) for v in x]
        assert spearman_rank_correlation(x, y) == pytest.approx(1.0)
        assert pearson_correlation(x, y) < 1.0

    def test_reversed_order_is_minus_one(self):
        assert spearman_rank_correlation(
            [1, 2, 3, 4], [40, 30, 20, 10]
        ) == pytest.approx(-1.0)

    def test_ties_get_average_ranks(self):
        # scipy.stats.spearmanr([1, 2, 2, 3], [1, 2, 3, 4]) == 0.9486832...
        r = spearman_rank_correlation([1, 2, 2, 3], [1, 2, 3, 4])
        assert r == pytest.approx(0.9486832980505138)

    def test_invariant_under_monotone_rescaling(self):
        x = [3.0, 1.0, 4.0, 1.5, 9.0]
        y = [2.0, 7.0, 1.0, 8.0, 2.5]
        assert spearman_rank_correlation(x, y) == pytest.approx(
            spearman_rank_correlation([10 * v + 3 for v in x], y)
        )

    def test_constant_input_returns_nan(self):
        assert math.isnan(spearman_rank_correlation([5, 5, 5], [1, 2, 3]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1, 2], [1, 2, 3])

    def test_too_few_observations_raises(self):
        with pytest.raises(ValueError):
            spearman_rank_correlation([1], [2])
