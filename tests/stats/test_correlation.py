"""Tests for the Pearson correlation implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats.correlation import pearson_correlation


class TestPearsonCorrelation:
    def test_perfect_positive(self):
        assert pearson_correlation([1, 2, 3, 4], [2, 4, 6, 8]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson_correlation([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=50)
        y = 0.5 * x + rng.normal(size=50)
        expected = float(np.corrcoef(x, y)[0, 1])
        assert pearson_correlation(x, y) == pytest.approx(expected, abs=1e-12)

    def test_zero_variance_returns_nan(self):
        assert math.isnan(pearson_correlation([1, 1, 1], [1, 2, 3]))

    def test_clipped_into_range(self):
        r = pearson_correlation([1.0, 2.0, 3.0], [1.0 + 1e-15, 2.0, 3.0 - 1e-15])
        assert -1.0 <= r <= 1.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1, 2, 3])

    def test_too_few_observations_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation([1], [2])

    def test_two_dimensional_input_raises(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones((2, 2)), np.ones((2, 2)))
