"""Tests for the OLS regression with dummy coding (Table 3 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.regression import (
    DesignMatrix,
    dummy_code,
    fit_ols,
    standardize,
)


class TestStandardize:
    def test_zero_mean_unit_std(self):
        z = standardize([1.0, 2.0, 3.0, 4.0])
        assert np.mean(z) == pytest.approx(0.0, abs=1e-12)
        assert np.std(z) == pytest.approx(1.0)

    def test_constant_column_centred_not_scaled(self):
        z = standardize([5.0, 5.0, 5.0])
        assert np.allclose(z, 0.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            standardize([])


class TestDummyCode:
    def test_reference_level_absent(self):
        columns = dummy_code(["a", "b", "a", "c"], reference="a")
        assert set(columns) == {"b", "c"}
        assert list(columns["b"]) == [0.0, 1.0, 0.0, 0.0]

    def test_explicit_levels_order(self):
        columns = dummy_code(["x"], reference="x", levels=["x", "y"])
        assert list(columns) == ["y"]
        assert list(columns["y"]) == [0.0]

    def test_unknown_reference_raises(self):
        with pytest.raises(ValueError):
            dummy_code(["a"], reference="z")

    def test_unknown_observation_raises(self):
        with pytest.raises(ValueError):
            dummy_code(["a", "q"], reference="a", levels=["a", "b"])


class TestDesignMatrix:
    def test_intercept_first(self):
        dm = DesignMatrix(3)
        assert dm.column_names == ["(intercept)"]
        assert np.allclose(dm.matrix()[:, 0], 1.0)

    def test_add_numeric_shape_checked(self):
        dm = DesignMatrix(3)
        with pytest.raises(ValueError):
            dm.add_numeric("x", [1.0, 2.0])

    def test_duplicate_name_rejected(self):
        dm = DesignMatrix(2).add_numeric("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            dm.add_numeric("x", [3.0, 4.0])

    def test_categorical_adds_level_columns(self):
        dm = DesignMatrix(4)
        dm.add_categorical("dim", ["a", "b", "c", "a"], reference="a")
        assert dm.column_names == ["(intercept)", "b", "c"]

    def test_zero_observations_rejected(self):
        with pytest.raises(ValueError):
            DesignMatrix(0)


class TestFitOls:
    def _make_data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        x1 = rng.normal(size=n)
        x2 = rng.normal(size=n)
        noise = rng.normal(scale=0.05, size=n)
        y = 1.5 + 2.0 * x1 - 3.0 * x2 + noise
        return x1, x2, y

    def test_recovers_known_coefficients(self):
        x1, x2, y = self._make_data()
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        result = fit_ols(dm, y)
        assert result.term("(intercept)").estimate == pytest.approx(1.5, abs=0.02)
        assert result.term("x1").estimate == pytest.approx(2.0, abs=0.02)
        assert result.term("x2").estimate == pytest.approx(-3.0, abs=0.02)

    def test_r_squared_near_one_for_clean_fit(self):
        x1, x2, y = self._make_data()
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        result = fit_ols(dm, y)
        assert result.r_squared > 0.99
        assert result.adjusted_r_squared <= result.r_squared

    def test_significance_of_strong_effects(self):
        x1, x2, y = self._make_data()
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        result = fit_ols(dm, y)
        assert result.term("x1").is_significant(0.001)
        assert result.term("x2").is_significant(0.001)

    def test_irrelevant_covariate_not_significant(self):
        rng = np.random.default_rng(3)
        n = 150
        x = rng.normal(size=n)
        junk = rng.normal(size=n)
        y = 1.0 + x + rng.normal(scale=1.0, size=n)
        dm = DesignMatrix(n).add_numeric("x", x).add_numeric("junk", junk)
        result = fit_ols(dm, y)
        assert not result.term("junk").is_significant(0.001)

    def test_dummy_coefficients_match_group_means(self):
        labels = ["a"] * 50 + ["b"] * 50
        y = np.array([1.0] * 50 + [3.0] * 50)
        dm = DesignMatrix(100).add_categorical("g", labels, reference="a")
        result = fit_ols(dm, y)
        assert result.term("(intercept)").estimate == pytest.approx(1.0, abs=1e-9)
        assert result.term("b").estimate == pytest.approx(2.0, abs=1e-9)

    def test_as_rows_structure(self):
        x1, x2, y = self._make_data(n=50)
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        rows = fit_ols(dm, y).as_rows()
        assert len(rows) == 3
        assert rows[0][0] == "(intercept)"
        assert rows[1][3] in ("OK", "-")

    def test_too_few_observations_raises(self):
        dm = DesignMatrix(2).add_numeric("x", [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_ols(dm, [1.0, 2.0])

    def test_response_shape_checked(self):
        dm = DesignMatrix(5).add_numeric("x", [1, 2, 3, 4, 5])
        with pytest.raises(ValueError):
            fit_ols(dm, [1.0, 2.0])

    def test_coefficients_dict(self):
        x1, x2, y = self._make_data(n=60)
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        coefficients = fit_ols(dm, y).coefficients()
        assert set(coefficients) == {"(intercept)", "x1", "x2"}

    def test_missing_term_raises_keyerror(self):
        x1, x2, y = self._make_data(n=60)
        dm = DesignMatrix(len(y)).add_numeric("x1", x1).add_numeric("x2", x2)
        with pytest.raises(KeyError):
            fit_ols(dm, y).term("nope")
