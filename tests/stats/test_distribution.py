"""Tests for ECDF/CCDF and histogram helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.distribution import (
    ccdf,
    ecdf,
    histogram2d_frequency,
    normalized_histogram,
)


class TestEcdf:
    def test_sorted_and_reaches_one(self):
        xs, probs = ecdf([3, 1, 2])
        assert list(xs) == [1, 2, 3]
        assert probs[-1] == pytest.approx(1.0)

    def test_monotone(self):
        _xs, probs = ecdf([5, 2, 9, 2, 7])
        assert all(b >= a for a, b in zip(probs, probs[1:]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ecdf([])


class TestCcdf:
    def test_complement_of_ecdf(self):
        xs, probs = ccdf([0.1, 0.4, 0.9])
        _xs2, cdf = ecdf([0.1, 0.4, 0.9])
        assert np.allclose(probs, 1.0 - cdf)

    def test_last_point_zero(self):
        _xs, probs = ccdf([1, 2, 3])
        assert probs[-1] == pytest.approx(0.0)


class TestNormalizedHistogram:
    def test_frequencies_sum_to_one(self):
        _edges, freqs = normalized_histogram([0.1, 0.2, 0.7, 0.9], bins=5)
        assert freqs.sum() == pytest.approx(1.0)

    def test_empty_input_gives_zeros(self):
        _edges, freqs = normalized_histogram([], bins=4)
        assert freqs.sum() == 0.0

    def test_bin_count(self):
        edges, freqs = normalized_histogram([0.5], bins=7)
        assert len(freqs) == 7
        assert len(edges) == 8


class TestHistogram2dFrequency:
    def test_rows_are_relative_frequencies(self):
        categories = [1, 1, 2, 9]
        scores = [0.05, 0.05, 0.05, 0.95]
        edges, values, matrix = histogram2d_frequency(
            categories, scores, category_values=range(10), score_bins=10
        )
        # First interval has 3 observations: two with k=1, one with k=2.
        assert matrix[0, 1] == pytest.approx(2 / 3)
        assert matrix[0, 2] == pytest.approx(1 / 3)
        # Last interval has a single observation with k=9.
        assert matrix[9, 9] == pytest.approx(1.0)

    def test_score_of_exactly_one_counted_in_last_bin(self):
        _e, _v, matrix = histogram2d_frequency([3], [1.0], range(10), score_bins=10)
        assert matrix[9, 3] == pytest.approx(1.0)

    def test_empty_rows_are_zero(self):
        _e, _v, matrix = histogram2d_frequency([1], [0.5], range(10), score_bins=10)
        assert matrix[0].sum() == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            histogram2d_frequency([1, 2], [0.5], range(10))

    def test_row_sums_at_most_one(self):
        rng = np.random.default_rng(1)
        categories = rng.integers(0, 10, size=100)
        scores = rng.random(size=100)
        _e, _v, matrix = histogram2d_frequency(categories, scores, range(10))
        for row in matrix:
            assert row.sum() == pytest.approx(1.0) or row.sum() == 0.0
