"""Tests for summary statistics and confidence intervals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.summary import confidence_interval, mean_confidence_interval, summarize


class TestConfidenceInterval:
    def test_contains_mean(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        low, high = confidence_interval(values)
        assert low <= np.mean(values) <= high

    def test_single_observation_collapses(self):
        assert confidence_interval([5.0]) == (5.0, 5.0)

    def test_zero_variance_collapses(self):
        assert confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_wider_at_higher_confidence(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low95, high95 = confidence_interval(values, 0.95)
        low99, high99 = confidence_interval(values, 0.99)
        assert (high99 - low99) > (high95 - low95)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([])

    def test_invalid_confidence_raises(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0, 2.0], confidence=1.5)


class TestSummarize:
    def test_fields(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.ci_low <= stats.mean <= stats.ci_high

    def test_ci_half_width(self):
        stats = summarize([1.0, 2.0, 3.0])
        assert stats.ci_half_width == pytest.approx((stats.ci_high - stats.ci_low) / 2)

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.std == 0.0
        assert stats.ci_low == stats.ci_high == 7.0

    def test_mean_confidence_interval_helper(self):
        mean, low, high = mean_confidence_interval([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert low <= mean <= high
