"""Tests for plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.stats.tables import format_float, format_table


class TestFormatFloat:
    def test_float_rounding(self):
        assert format_float(0.123456, digits=3) == "0.123"

    def test_int_passthrough(self):
        assert format_float(7) == "7"

    def test_bool_passthrough(self):
        assert format_float(True) == "True"

    def test_string_passthrough(self):
        assert format_float("abc") == "abc"


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(("name", "value"), [("alpha", 0.5), ("beta", 1.25)])
        assert "name" in text and "value" in text
        assert "alpha" in text and "1.250" in text

    def test_title_on_first_line(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_alignment_consistent_width(self):
        text = format_table(("col",), [("short",), ("a much longer cell",)])
        lines = text.splitlines()
        separator = lines[1]
        assert len(separator) >= len("a much longer cell")

    def test_wrong_cell_count_raises(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        text = format_table(("a", "b"), [])
        assert "a" in text


class TestFormatCsv:
    def test_rows_and_floats(self):
        from repro.stats.tables import format_csv

        text = format_csv(("a", "b"), [("x", 1.5), ("y", 2)], digits=2)
        assert text == "a,b\nx,1.50\ny,2\n"

    def test_quoting(self):
        from repro.stats.tables import format_csv

        text = format_csv(("a",), [('needs,"quotes"',)])
        assert text.splitlines()[1] == '"needs,""quotes"""'

    def test_wrong_cell_count_raises(self):
        from repro.stats.tables import format_csv

        with pytest.raises(ValueError):
            format_csv(("a", "b"), [(1,)])
