"""Tests for the simulation configuration."""

from __future__ import annotations

import pytest

from repro.sim.bandwidth import ConstantBandwidth, EmpiricalBandwidth
from repro.sim.config import SimulationConfig


class TestValidation:
    def test_defaults_follow_paper(self):
        config = SimulationConfig.paper()
        assert config.n_peers == 50
        assert config.rounds == 500

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_peers": 1},
            {"rounds": 0},
            {"churn_rate": 1.0},
            {"churn_rate": -0.1},
            {"requests_per_round": -1},
            {"discovery_per_round": -1},
            {"warmup_rounds": 500},
            {"stranger_bandwidth_cap": 1.5},
            {"history_rounds": 1},
            {"aspiration_smoothing": 0.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimulationConfig(**kwargs)

    def test_measured_rounds(self):
        config = SimulationConfig(n_peers=10, rounds=100, warmup_rounds=20)
        assert config.measured_rounds == 80


class TestHelpers:
    def test_default_distribution_is_piatek_like(self):
        assert isinstance(SimulationConfig().distribution(), EmpiricalBandwidth)

    def test_explicit_distribution_used(self):
        dist = ConstantBandwidth(64.0)
        assert SimulationConfig(bandwidth=dist).distribution() is dist

    def test_with_returns_copy(self):
        base = SimulationConfig.small()
        changed = base.with_(churn_rate=0.1)
        assert changed.churn_rate == 0.1
        assert base.churn_rate == 0.0

    def test_presets_are_ordered_by_size(self):
        assert SimulationConfig.smoke().n_peers < SimulationConfig.small().n_peers
        assert SimulationConfig.small().n_peers < SimulationConfig.paper().n_peers
