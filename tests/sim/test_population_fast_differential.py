"""Differential tests: optimised vs reference variable-population engine.

The pinned-fingerprint and degenerate-equivalence cases run on both engines
in ``test_population_differential.py``; this module adds the parts specific
to the two-engine architecture:

* a **hypothesis differential** — randomly drawn
  :class:`~repro.sim.dynamics.PopulationDynamics` bundles, behaviour mixes
  and seeds, with the full serialised result payloads of
  :class:`~repro.sim.population_fast.FastPopulationSimulation` and
  :class:`~repro.sim.population.PopulationSimulation` compared for
  equality (bit-identity, not tolerance);
* the positional-skip sampler's draw-equivalence with ``Random.sample``;
* :func:`repro.sim.engine.simulate` dispatch: fast by default, the
  ``reference`` escape hatch via argument, :func:`set_default_engine` and
  the ``REPRO_SIM_ENGINE`` environment variable — with the engine choice
  provably absent from the job fingerprint (results are interchangeable,
  so cached entries must be too);
* the per-phase profiling hooks used by the CLI ``--profile`` flag.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner.jobs import SimulationJob, result_to_payload
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.engine import (
    ENGINE_CHOICES,
    ENV_ENGINE,
    default_engine,
    set_default_engine,
    simulate,
)
from repro.sim.population import PopulationSimulation
from repro.sim.population_fast import FastPopulationSimulation, _sample_skip
from repro.sim.reference import ReferenceSimulation

from tests.property.test_property_population import behaviors, population_dynamics
from tests.sim.test_engine_equivalence import VARIANTS


@pytest.fixture
def pristine_engine():
    """Reset the process-wide default engine around a test."""
    set_default_engine(None)
    yield
    set_default_engine(None)


# ---------------------------------------------------------------------- #
# hypothesis differential: fast engine vs reference engine
# ---------------------------------------------------------------------- #
differential_runs = st.builds(
    lambda n, rounds, dynamics, behavior, warmup, seed: (
        SimulationConfig(
            n_peers=n, rounds=rounds, warmup_rounds=warmup, population=dynamics
        ),
        behavior,
        seed,
    ),
    n=st.integers(min_value=4, max_value=12),
    rounds=st.integers(min_value=5, max_value=20),
    dynamics=population_dynamics(),
    behavior=behaviors,
    warmup=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestFastEngineDifferential:
    @given(differential_runs)
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_reference_engine(self, run):
        """Random bundles, seeds and behaviours: full payloads must match."""
        config, behavior, seed = run
        reference = PopulationSimulation(config, [behavior], seed=seed).run()
        fast = FastPopulationSimulation(config, [behavior], seed=seed).run()
        assert result_to_payload(fast) == result_to_payload(reference)
        assert fast.active_counts == reference.active_counts
        assert fast.churn_events == reference.churn_events

    @given(differential_runs, st.sampled_from(sorted(VARIANTS)))
    @settings(max_examples=30, deadline=None)
    def test_bit_identical_on_mixed_groups(self, run, variant_name):
        """Two-group encounters under random dynamics must also match."""
        config, behavior, seed = run
        half = config.n_peers // 2
        mix = [behavior] * half + [VARIANTS[variant_name]] * (config.n_peers - half)
        groups = ["A"] * half + ["B"] * (config.n_peers - half)
        reference = PopulationSimulation(config, mix, groups, seed=seed).run()
        fast = FastPopulationSimulation(config, mix, groups, seed=seed).run()
        assert result_to_payload(fast) == result_to_payload(reference)


class TestSampleSkip:
    @given(
        n=st.integers(min_value=2, max_value=60),
        idx_seed=st.integers(min_value=0, max_value=2**16),
        k_seed=st.integers(min_value=0, max_value=2**16),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=120, deadline=None)
    def test_matches_stdlib_sample_on_materialised_others(
        self, n, idx_seed, k_seed, seed
    ):
        """Positional-skip draws == Random.sample on the others list."""
        active_ids = list(range(100, 100 + n))
        idx = idx_seed % n
        others = active_ids[:idx] + active_ids[idx + 1 :]
        k = 1 + k_seed % len(others)
        expected = random.Random(seed).sample(others, k)
        got = _sample_skip(
            random.Random(seed).getrandbits, active_ids, idx, len(others), k
        )
        assert got == expected


# ---------------------------------------------------------------------- #
# engine dispatch and the reference escape hatch
# ---------------------------------------------------------------------- #
VARIABLE_CONFIG = SimulationConfig(
    n_peers=8,
    rounds=16,
    population=PopulationDynamics(
        arrival=ArrivalProcess(kind="poisson", rate=0.4),
        departure=DepartureProcess(rate=0.03),
    ),
)


class TestEngineDispatch:
    def test_choices_are_fast_reference_and_vec(self):
        assert ENGINE_CHOICES == ("fast", "reference", "vec")

    def test_default_engine_is_fast(self, pristine_engine, monkeypatch):
        monkeypatch.delenv(ENV_ENGINE, raising=False)
        assert default_engine() == "fast"

    def test_engine_argument_selects_bit_identical_paths(self):
        behavior = VARIANTS["bittorrent"]
        fast = simulate(VARIABLE_CONFIG, [behavior], seed=2, engine="fast")
        reference = simulate(VARIABLE_CONFIG, [behavior], seed=2, engine="reference")
        assert result_to_payload(fast) == result_to_payload(reference)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(VARIABLE_CONFIG, [VARIANTS["bittorrent"]], seed=0, engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            set_default_engine("warp")

    def test_set_default_engine_governs_dispatch(self, pristine_engine):
        set_default_engine("reference")
        assert default_engine() == "reference"
        set_default_engine(None)
        assert default_engine() in ENGINE_CHOICES

    def test_env_variable_governs_dispatch(self, pristine_engine, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "reference")
        assert default_engine() == "reference"
        # An explicit set_default_engine overrides the environment.
        set_default_engine("fast")
        assert default_engine() == "fast"

    def test_reference_dispatch_for_fixed_population(self):
        """Fixed configs route onto the frozen seed engine."""
        config = SimulationConfig(n_peers=8, rounds=12)
        behavior = VARIANTS["bittorrent"]
        via_simulate = simulate(config, [behavior], seed=5, engine="reference")
        direct = ReferenceSimulation(config, [behavior], seed=5).run()
        assert result_to_payload(via_simulate) == result_to_payload(direct)

    def test_reference_engine_is_total_over_scenario_dynamics(self):
        """Dynamics configs have one implementation; both settings run it.

        A reference-engine sweep over a mixed scenario grid must not abort
        on the fixed-population scenarios that carry ScenarioDynamics.
        """
        from repro.scenarios import get_scenario

        job = get_scenario("flash-crowd").compile(scale="smoke", seed=3)
        assert job.config.dynamics is not None
        behaviors = list(job.behaviors)
        groups = list(job.groups) if job.groups is not None else None
        fast = simulate(job.config, behaviors, groups, seed=3, engine="fast")
        reference = simulate(
            job.config, behaviors, groups, seed=3, engine="reference"
        )
        assert result_to_payload(fast) == result_to_payload(reference)

    def test_fingerprint_is_engine_independent(self):
        """Engine choice must never split the result cache."""
        job = SimulationJob(
            config=VARIABLE_CONFIG, behaviors=(VARIANTS["bittorrent"],), seed=9
        )
        fingerprint = job.fingerprint()
        assert "engine" not in job.payload()["config"]
        # Both engines produce the payload stored under that fingerprint.
        fast = simulate(VARIABLE_CONFIG, [VARIANTS["bittorrent"]], seed=9)
        reference = simulate(
            VARIABLE_CONFIG, [VARIANTS["bittorrent"]], seed=9, engine="reference"
        )
        assert result_to_payload(fast) == result_to_payload(reference)
        assert job.fingerprint() == fingerprint


class TestProfileHooks:
    @pytest.mark.parametrize(
        "engine_cls", [PopulationSimulation, FastPopulationSimulation]
    )
    def test_profile_collects_phase_seconds(self, engine_cls):
        sim = engine_cls(
            VARIABLE_CONFIG, [VARIANTS["bittorrent"]], seed=1, profile=True
        )
        sim.run()
        assert set(sim.phase_seconds) == {"population", "decision", "transfer"}
        assert all(value >= 0.0 for value in sim.phase_seconds.values())
        assert sum(sim.phase_seconds.values()) > 0.0

    @pytest.mark.parametrize(
        "engine_cls", [PopulationSimulation, FastPopulationSimulation]
    )
    def test_profiling_does_not_perturb_results(self, engine_cls):
        behavior = VARIANTS["bittorrent"]
        plain = engine_cls(VARIABLE_CONFIG, [behavior], seed=3).run()
        profiled = engine_cls(
            VARIABLE_CONFIG, [behavior], seed=3, profile=True
        ).run()
        assert result_to_payload(plain) == result_to_payload(profiled)
