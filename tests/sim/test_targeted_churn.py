"""Targeted identity churn: group-targeted departures and whitewash rejoins."""

from __future__ import annotations

import random

import pytest

from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_true_departures
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import (
    ArrivalProcess,
    DepartureProcess,
    PopulationDynamics,
)
from repro.sim.engine import simulate
from repro.sim.history import InteractionHistory
from repro.sim.peer import PeerState


def _peers(groups):
    return [
        PeerState(
            peer_id=i,
            upload_capacity=50.0,
            behavior=PeerBehavior(),
            group=group,
            history=InteractionHistory(max_rounds=3),
        )
        for i, group in enumerate(groups)
    ]


class TestApplyTrueDeparturesTargeting:
    def test_empty_extra_rates_match_the_untargeted_path(self):
        groups = ["default"] * 30
        departed_plain = apply_true_departures(
            _peers(groups), 0.2, 0, random.Random(7)
        )
        departed_empty = apply_true_departures(
            _peers(groups), 0.2, 0, random.Random(7), extra_rates={}
        )
        assert [p.peer_id for p in departed_plain] == [
            p.peer_id for p in departed_empty
        ]

    def test_targeted_groups_depart_more(self):
        departures = {"colluder": 0, "default": 0}
        population = {"colluder": 0, "default": 0}
        rng = random.Random(11)
        for _ in range(60):
            peers = _peers(["colluder" if i % 5 == 0 else "default" for i in range(25)])
            for peer in peers:
                population[peer.group] += 1
            for peer in apply_true_departures(
                peers, 0.02, 0, rng, extra_rates={"colluder": 0.3}
            ):
                departures[peer.group] += 1
        colluder_rate = departures["colluder"] / population["colluder"]
        default_rate = departures["default"] / population["default"]
        assert colluder_rate > default_rate * 3

    def test_zero_base_rate_with_targeting_only_evicts_targets(self):
        peers = _peers(["colluder" if i < 10 else "default" for i in range(40)])
        departed = apply_true_departures(
            peers, 0.0, 0, random.Random(3), extra_rates={"colluder": 0.5}
        )
        assert departed
        assert all(p.group == "colluder" for p in departed)

    def test_combined_rate_must_stay_below_one(self):
        with pytest.raises(ValueError):
            apply_true_departures(
                _peers(["x"]), 0.6, 0, random.Random(0), extra_rates={"x": 0.5}
            )


class TestDynamicsValidationAndSerialization:
    def test_departure_group_rates_round_trip_and_sort(self):
        process = DepartureProcess(
            rate=0.02, group_rates=(("zeta", 0.1), ("alpha", 0.2))
        )
        assert process.group_rates == (("alpha", 0.2), ("zeta", 0.1))
        clone = DepartureProcess.from_dict(process.as_dict())
        assert clone == process
        # The targeting key is omitted when untargeted, keeping every
        # pre-targeting payload (and cache fingerprint) unchanged.
        assert "group_rates" not in DepartureProcess(rate=0.02).as_dict()

    def test_departure_group_rates_validation(self):
        with pytest.raises(ValueError):
            DepartureProcess(rate=0.0, mode="replace", group_rates=(("g", 0.1),))
        with pytest.raises(ValueError):
            DepartureProcess(rate=0.5, group_rates=(("g", 0.5),))
        with pytest.raises(ValueError):
            DepartureProcess(rate=0.0, group_rates=(("g", 0.1), ("g", 0.2)))

    def test_arrival_whitewash_groups_round_trip(self):
        process = ArrivalProcess(
            kind="whitewash", rate=0.9, whitewash_groups=("colluder",)
        )
        assert ArrivalProcess.from_dict(process.as_dict()) == process
        assert "whitewash_groups" not in ArrivalProcess(
            kind="whitewash", rate=0.9
        ).as_dict()
        assert process.whitewashes("colluder")
        assert not process.whitewashes("default")
        with pytest.raises(ValueError):
            ArrivalProcess(kind="poisson", rate=1.0, whitewash_groups=("g",))

    def test_group_rates_alone_make_dynamics_non_trivial(self):
        bundle = PopulationDynamics(
            departure=DepartureProcess(rate=0.0, group_rates=(("g", 0.1),))
        )
        assert not bundle.is_trivial()
        assert PopulationDynamics.from_dict(bundle.as_dict()) == bundle


class TestEnginesAgreeOnTargetedChurn:
    def test_fast_and_reference_engines_stay_bit_identical(self):
        from repro.runner.jobs import result_to_payload

        config = SimulationConfig(
            n_peers=16,
            rounds=30,
            population=PopulationDynamics(
                arrival=ArrivalProcess(
                    kind="whitewash", rate=0.9, whitewash_groups=("clique",)
                ),
                departure=DepartureProcess(
                    rate=0.02, group_rates=(("clique", 0.1),)
                ),
            ),
        )
        behaviors = [PeerBehavior()] * 16
        groups = ["clique" if i % 4 == 0 else "default" for i in range(16)]
        fast = simulate(config, behaviors, groups=groups, seed=5, engine="fast")
        reference = simulate(
            config, behaviors, groups=groups, seed=5, engine="reference"
        )
        assert result_to_payload(fast) == result_to_payload(reference)
        whitewashers = [r for r in fast.records if r.cohort == "whitewash"]
        assert all(r.group == "clique" for r in whitewashers)
