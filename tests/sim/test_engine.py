"""Tests for the cycle-based simulation engine."""

from __future__ import annotations

import pytest

from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation


def bt_like() -> PeerBehavior:
    return PeerBehavior(
        stranger_policy="periodic", stranger_count=1, ranking="fastest",
        partner_count=3, allocation="equal_split",
    )


def full_defector() -> PeerBehavior:
    return PeerBehavior(
        stranger_policy="defect", stranger_count=1, ranking="fastest",
        partner_count=3, allocation="freeride",
    )


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_peers=8, rounds=15, bandwidth=ConstantBandwidth(100.0))


class TestConstruction:
    def test_single_behavior_broadcast(self, config):
        sim = Simulation(config, [bt_like()], seed=0)
        assert len(sim.peers) == config.n_peers

    def test_behavior_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError):
            Simulation(config, [bt_like()] * 3, seed=0)

    def test_group_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError):
            Simulation(config, [bt_like()], groups=["a", "b"], seed=0)

    def test_capacities_drawn_from_distribution(self, config):
        sim = Simulation(config, [bt_like()], seed=0)
        assert all(p.upload_capacity == 100.0 for p in sim.peers)


class TestConservationAndAccounting:
    def test_total_download_equals_total_upload(self, config):
        result = Simulation(config, [bt_like()], seed=1).run()
        downloaded = sum(r.downloaded for r in result.records)
        uploaded = sum(r.uploaded for r in result.records)
        assert downloaded == pytest.approx(uploaded)

    def test_upload_never_exceeds_capacity(self, config):
        result = Simulation(config, [bt_like()], seed=1).run()
        for record in result.records:
            assert record.uploaded <= record.upload_capacity * config.rounds + 1e-6

    def test_utilization_in_unit_interval(self, config):
        result = Simulation(config, [bt_like()], seed=2).run()
        assert 0.0 <= result.utilization() <= 1.0

    def test_warmup_rounds_excluded_from_metrics(self):
        config = SimulationConfig(
            n_peers=8, rounds=20, warmup_rounds=10, bandwidth=ConstantBandwidth(100.0)
        )
        full = SimulationConfig(n_peers=8, rounds=20, bandwidth=ConstantBandwidth(100.0))
        with_warmup = Simulation(config, [bt_like()], seed=3).run()
        without_warmup = Simulation(full, [bt_like()], seed=3).run()
        assert sum(r.downloaded for r in with_warmup.records) < sum(
            r.downloaded for r in without_warmup.records
        )


class TestBehaviouralContrast:
    def test_cooperators_outperform_full_defectors_in_throughput(self, config):
        cooperative = Simulation(config, [bt_like()], seed=4).run()
        defecting = Simulation(config, [full_defector()], seed=4).run()
        assert cooperative.throughput > defecting.throughput

    def test_full_defectors_upload_nothing(self, config):
        result = Simulation(config, [full_defector()], seed=5).run()
        assert result.utilization() == 0.0

    def test_encounter_group_metrics(self, config):
        n = config.n_peers
        behaviors = [bt_like()] * (n // 2) + [full_defector()] * (n - n // 2)
        groups = ["coop"] * (n // 2) + ["defect"] * (n - n // 2)
        result = Simulation(config, behaviors, groups, seed=6).run()
        assert set(result.groups()) == {"coop", "defect"}
        assert result.group_mean_download("coop") > result.group_mean_download("defect")

    def test_explicit_refusals_counted_for_defect_policy(self, config):
        result = Simulation(config, [full_defector()], seed=7).run()
        assert result.total_explicit_refusals > 0


class TestDeterminismAndChurn:
    def test_same_seed_same_result(self, config):
        a = Simulation(config, [bt_like()], seed=11).run()
        b = Simulation(config, [bt_like()], seed=11).run()
        assert [r.downloaded for r in a.records] == [r.downloaded for r in b.records]

    def test_different_seeds_differ(self, config):
        a = Simulation(config, [bt_like()], seed=11).run()
        b = Simulation(config, [bt_like()], seed=12).run()
        assert [r.downloaded for r in a.records] != [r.downloaded for r in b.records]

    def test_churn_counted(self):
        config = SimulationConfig(
            n_peers=8, rounds=30, churn_rate=0.2, bandwidth=ConstantBandwidth(100.0)
        )
        result = Simulation(config, [bt_like()], seed=13).run()
        assert result.churn_events > 0

    def test_churned_population_still_transfers(self):
        config = SimulationConfig(
            n_peers=8, rounds=30, churn_rate=0.1, bandwidth=ConstantBandwidth(100.0)
        )
        result = Simulation(config, [bt_like()], seed=14).run()
        assert result.throughput > 0.0


class TestResultApi:
    def test_records_one_per_peer(self, config):
        result = Simulation(config, [bt_like()], seed=15).run()
        assert len(result.records) == config.n_peers
        assert result.rounds_executed == config.rounds

    def test_mean_download_per_peer(self, config):
        result = Simulation(config, [bt_like()], seed=15).run()
        expected = sum(r.downloaded for r in result.records) / config.n_peers
        assert result.mean_download_per_peer == pytest.approx(expected)

    def test_group_metrics_contains_utilization(self, config):
        result = Simulation(config, [bt_like()], seed=16).run()
        metrics = result.group_metrics()["default"]
        assert 0.0 <= metrics.upload_utilization <= 1.0
        assert metrics.peer_count == config.n_peers
