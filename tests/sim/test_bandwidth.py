"""Tests for bandwidth distributions."""

from __future__ import annotations

import random

import pytest

from repro.sim.bandwidth import (
    ConstantBandwidth,
    EmpiricalBandwidth,
    TwoClassBandwidth,
    UniformBandwidth,
    piatek_distribution,
)


class TestConstantBandwidth:
    def test_always_same_value(self, rng):
        dist = ConstantBandwidth(42.0)
        assert dist.sample(rng) == 42.0
        assert dist.mean() == 42.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0)


class TestUniformBandwidth:
    def test_within_bounds(self, rng):
        dist = UniformBandwidth(10.0, 20.0)
        for _ in range(100):
            assert 10.0 <= dist.sample(rng) <= 20.0

    def test_mean(self):
        assert UniformBandwidth(10.0, 20.0).mean() == 15.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformBandwidth(20.0, 10.0)


class TestTwoClassBandwidth:
    def test_only_two_values(self, rng):
        dist = TwoClassBandwidth(25.0, 100.0, 0.5)
        values = {dist.sample(rng) for _ in range(200)}
        assert values <= {25.0, 100.0}
        assert len(values) == 2

    def test_extreme_fractions(self, rng):
        all_fast = TwoClassBandwidth(25.0, 100.0, 1.0)
        all_slow = TwoClassBandwidth(25.0, 100.0, 0.0)
        assert all_fast.sample(rng) == 100.0
        assert all_slow.sample(rng) == 25.0

    def test_mean(self):
        assert TwoClassBandwidth(20.0, 100.0, 0.25).mean() == pytest.approx(40.0)

    def test_requires_fast_above_slow(self):
        with pytest.raises(ValueError):
            TwoClassBandwidth(100.0, 25.0)


class TestEmpiricalBandwidth:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            EmpiricalBandwidth([(0.5, 10.0), (0.4, 20.0)])

    def test_capacities_must_increase(self):
        with pytest.raises(ValueError):
            EmpiricalBandwidth([(0.5, 20.0), (0.5, 10.0)])

    def test_samples_positive_and_bounded(self, rng):
        dist = EmpiricalBandwidth([(0.5, 10.0), (0.5, 100.0)])
        for _ in range(200):
            value = dist.sample(rng)
            assert 10.0 <= value <= 100.0

    def test_mean_positive(self):
        assert EmpiricalBandwidth([(1.0, 50.0)]).mean() == 50.0

    def test_sample_population_length(self, rng):
        dist = EmpiricalBandwidth([(1.0, 50.0)])
        assert len(dist.sample_population(7, rng)) == 7

    def test_sample_population_negative_count(self, rng):
        with pytest.raises(ValueError):
            piatek_distribution().sample_population(-1, rng)


class TestPiatekDistribution:
    def test_heterogeneous(self, rng):
        dist = piatek_distribution()
        values = dist.sample_population(300, rng)
        assert min(values) < 60.0
        assert max(values) > 300.0

    def test_skewed_towards_slow_peers(self, rng):
        values = piatek_distribution().sample_population(500, rng)
        slow = sum(1 for v in values if v < 100)
        fast = sum(1 for v in values if v > 400)
        assert slow > fast

    def test_mean_reasonable(self):
        assert 50.0 < piatek_distribution().mean() < 500.0

    def test_reproducible_given_seed(self):
        a = piatek_distribution().sample_population(10, random.Random(3))
        b = piatek_distribution().sample_population(10, random.Random(3))
        assert a == b
