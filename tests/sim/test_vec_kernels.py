"""Property tests for the vec engine's selection and history kernels.

The exactness contract of :func:`repro.sim._vec_kernels.grouped_topk` is
set-equality against the full ``np.lexsort`` oracle: for every segment,
the selected *set* must equal the first ``k`` entries of the segment
sorted ascending by ``(primary, secondary, tie)``.  The engine draws
``tie`` from a continuous RNG, so full-key ties are measure-zero there —
but these tests feed adversarial discrete keys (constant columns, heavy
ties, negative values, mixed signed zeros) to force every tie-resolution
path: the ``k <= 1`` reduceat fast path, the saturated-segment expansion,
the width-class argpartition path, and the boundary-tie resolver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim._vec_kernels import (
    ScratchBuffers,
    grouped_topk,
    merge_sorted_histories,
    pack_float64_for_order,
    segment_bounds,
)


def lexsort_oracle(group, k_per_seg, primary, tie, secondary):
    """Selected-index set per the full lexsort ranking (the spec)."""
    if secondary is None:
        order = np.lexsort((tie, primary, group))
    else:
        order = np.lexsort((tie, secondary, primary, group))
    g = group[order]
    new = np.empty(g.size, bool)
    new[0] = True
    new[1:] = g[1:] != g[:-1]
    run_id = np.cumsum(new) - 1
    run_start = np.flatnonzero(new)
    within = np.arange(g.size) - run_start[run_id]
    keep = within < k_per_seg[run_id]
    return set(order[keep].tolist())


def primary_for_style(rng, style, n):
    if style == "continuous":
        return rng.random(n)
    if style == "heavy_ties":
        return rng.integers(0, 3, n).astype(float)
    if style == "all_tied":
        return np.zeros(n)
    if style == "negative_ties":
        return -rng.integers(0, 5, n).astype(float)
    assert style == "signed_zeros"
    return rng.choice([0.0, -0.0, 1.5, -2.25, 1e-300, -1e-300], n)


STYLES = ("continuous", "heavy_ties", "all_tied", "negative_ties", "signed_zeros")


class TestGroupedTopk:
    @pytest.mark.parametrize("style", STYLES)
    @pytest.mark.parametrize("use_secondary", (False, True))
    def test_matches_lexsort_oracle(self, style, use_secondary):
        rng = np.random.default_rng(hash((style, use_secondary)) % 2**32)
        scratch = ScratchBuffers()
        for trial in range(60):
            n_segs = int(rng.integers(1, 40))
            widths = rng.integers(1, 70, n_segs)
            group = np.repeat(np.arange(n_segs), widths)
            n = group.size
            primary = primary_for_style(rng, style, n)
            tie = rng.random(n)
            secondary = (
                rng.integers(0, 2, n).astype(float) if use_secondary else None
            )
            k = rng.integers(0, 12, n_segs)
            starts, seg_widths = segment_bounds(group)
            assert np.array_equal(seg_widths, widths)
            selected = grouped_topk(
                starts, seg_widths, k, primary, tie, secondary,
                scratch if trial % 2 else None,
            )
            got = set(selected.tolist())
            want = lexsort_oracle(group, k, primary, tie, secondary)
            assert got == want, (
                f"trial {trial}: extra={sorted(got - want)[:5]} "
                f"missing={sorted(want - got)[:5]}"
            )

    def test_k_one_fast_path_with_duplicated_minima(self):
        # k == 1 everywhere routes through the reduceat argmin fast path;
        # constant primaries force its duplicate-minimum tie resolver.
        rng = np.random.default_rng(7)
        for _ in range(40):
            n_segs = int(rng.integers(1, 30))
            widths = rng.integers(1, 6, n_segs)
            group = np.repeat(np.arange(n_segs), widths)
            n = group.size
            primary = np.zeros(n)
            tie = rng.random(n)
            k = np.ones(n_segs, dtype=np.int64)
            starts, seg_widths = segment_bounds(group)
            got = set(
                grouped_topk(starts, seg_widths, k, primary, tie).tolist()
            )
            assert got == lexsort_oracle(group, k, primary, tie, None)

    def test_k_zero_selects_nothing(self):
        group = np.repeat(np.arange(3), [4, 2, 5])
        starts, widths = segment_bounds(group)
        k = np.zeros(3, dtype=np.int64)
        selected = grouped_topk(
            starts, widths, k, np.zeros(group.size), np.zeros(group.size)
        )
        assert selected.size == 0

    def test_k_at_least_width_selects_everything(self):
        group = np.repeat(np.arange(3), [4, 1, 7])
        starts, widths = segment_bounds(group)
        k = np.array([4, 10, 7], dtype=np.int64)
        rng = np.random.default_rng(11)
        selected = grouped_topk(
            starts, widths, k, rng.random(group.size), rng.random(group.size)
        )
        assert set(selected.tolist()) == set(range(group.size))

    @pytest.mark.parametrize("width", (1, 2, 3, 4, 5, 8, 9, 16, 17, 64, 65))
    def test_width_class_boundaries(self, width):
        # Power-of-two width classes: widths straddling each boundary must
        # gather/pad correctly.
        rng = np.random.default_rng(width)
        n_segs = 8
        group = np.repeat(np.arange(n_segs), width)
        primary = rng.integers(0, 2, group.size).astype(float)
        tie = rng.random(group.size)
        k = rng.integers(0, width + 2, n_segs)
        starts, widths = segment_bounds(group)
        got = set(grouped_topk(starts, widths, k, primary, tie).tolist())
        assert got == lexsort_oracle(group, k, primary, tie, None)

    def test_scratch_reuse_across_calls_is_safe(self):
        # Reusing one ScratchBuffers over growing then shrinking workloads
        # must never leak a previous call's contents into the next result.
        rng = np.random.default_rng(3)
        scratch = ScratchBuffers()
        for n_segs in (40, 5, 60, 2):
            widths = rng.integers(1, 50, n_segs)
            group = np.repeat(np.arange(n_segs), widths)
            primary = rng.integers(0, 2, group.size).astype(float)
            tie = rng.random(group.size)
            k = rng.integers(0, 8, n_segs)
            starts, seg_widths = segment_bounds(group)
            got = set(
                grouped_topk(
                    starts, seg_widths, k, primary, tie, None, scratch
                ).tolist()
            )
            assert got == lexsort_oracle(group, k, primary, tie, None)


class TestPackFloat64:
    def test_pack_preserves_float_order(self):
        rng = np.random.default_rng(5)
        values = np.concatenate(
            [
                rng.standard_normal(5000) * 1e3,
                [0.0, -0.0, 1e-300, -1e-300, 1e300, -1e300],
            ]
        )
        packed = pack_float64_for_order(values)
        assert np.all(np.diff(values[np.argsort(packed)]) >= 0)

    def test_signed_zeros_pack_equal(self):
        # -0.0 and 0.0 compare equal as floats; the pack must not invent
        # an ordering between them (it would diverge from the lexsort
        # oracle on zero-valued keys).
        packed = pack_float64_for_order(np.array([0.0, -0.0]))
        assert packed[0] == packed[1]


class TestSegmentBounds:
    def test_runs_of_sorted_ids(self):
        ids = np.array([2, 2, 2, 5, 7, 7])
        starts, widths = segment_bounds(ids)
        assert starts.tolist() == [0, 3, 4]
        assert widths.tolist() == [3, 1, 2]

    def test_empty(self):
        starts, widths = segment_bounds(np.empty(0, dtype=np.int64))
        assert starts.size == 0 and widths.size == 0


class TestMergeSortedHistories:
    def test_matches_unique_reduce_oracle(self):
        rng = np.random.default_rng(13)
        for _ in range(60):
            na, nb = rng.integers(0, 50, 2)
            keys_a = (
                np.sort(
                    rng.choice(np.arange(100, dtype=np.uint64), na, replace=False)
                )
                if na
                else np.empty(0, np.uint64)
            )
            keys_b = (
                np.sort(
                    rng.choice(np.arange(100, dtype=np.uint64), nb, replace=False)
                )
                if nb
                else np.empty(0, np.uint64)
            )
            amounts_a = rng.random(na)
            amounts_b = rng.random(nb)
            merged_keys, merged_amounts = merge_sorted_histories(
                keys_a, amounts_a, keys_b, amounts_b
            )
            all_keys = np.concatenate([keys_a, keys_b])
            all_amounts = np.concatenate([amounts_a, amounts_b])
            want_keys, inverse = np.unique(all_keys, return_inverse=True)
            want_amounts = np.bincount(
                inverse, weights=all_amounts, minlength=want_keys.size
            )
            assert np.array_equal(merged_keys, want_keys)
            assert np.allclose(merged_amounts, want_amounts)

    def test_overlapping_keys_sum(self):
        keys_a = np.array([1, 3, 5], dtype=np.uint64)
        keys_b = np.array([3, 5, 9], dtype=np.uint64)
        merged_keys, merged_amounts = merge_sorted_histories(
            keys_a, np.array([1.0, 2.0, 3.0]), keys_b, np.array([10.0, 20.0, 30.0])
        )
        assert merged_keys.tolist() == [1, 3, 5, 9]
        assert merged_amounts.tolist() == [1.0, 12.0, 23.0, 30.0]


class TestScratchBuffers:
    def test_buffers_grow_and_are_reused(self):
        scratch = ScratchBuffers()
        small = scratch.int64("a", 10)
        assert small.shape == (10,)
        grown = scratch.int64("a", 1000)
        assert grown.shape == (1000,)
        again = scratch.int64("a", 500)
        assert again.shape == (500,)
        # Shrinking requests reuse the grown allocation (views share base).
        assert again.base is grown.base or again.base is grown

    def test_zeros_buffers_are_zeroed(self):
        scratch = ScratchBuffers()
        buf = scratch.zeros_float64("z", 8)
        buf[:] = 7.0
        assert np.all(scratch.zeros_float64("z", 8) == 0.0)
