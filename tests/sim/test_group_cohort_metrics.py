"""Invariants of the per-(group, cohort) metrics the atlas reports on.

The hypothesis suite checks the partition laws over synthetic records —
the cells partition the records, so their totals must sum to the record
totals, download shares to 1 and the marginals must agree with the
group-only and cohort-only aggregations — plus per-seed determinism on a
real targeted-churn simulation.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.metrics import (
    PeerRecord,
    compute_cohort_metrics,
    compute_group_cohort_metrics,
    compute_group_metrics,
)

MEASURED_ROUNDS = 40


def _record(draw_tuple):
    index, group, cohort, down, up, rounds_present, departed = draw_tuple
    return PeerRecord(
        peer_id=index,
        group=group,
        upload_capacity=50.0,
        behavior_label="B1h1-C1-I1k4-R1",
        downloaded=down,
        uploaded=up,
        cohort=cohort,
        joined_round=0,
        departed_round=10 if departed else None,
        rounds_present=rounds_present,
    )


record_tuples = st.tuples(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(["default", "colluder", "seed"]),
    st.sampled_from(["initial", "arrival", "whitewash"]),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    st.one_of(st.none(), st.integers(min_value=0, max_value=MEASURED_ROUNDS)),
    st.booleans(),
)

records_strategy = st.lists(record_tuples, min_size=1, max_size=40).map(
    lambda tuples: [_record(t) for t in tuples]
)


class TestGroupCohortInvariants:
    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cells_partition_the_records(self, records):
        metrics = compute_group_cohort_metrics(records, MEASURED_ROUNDS)
        assert sum(m.peer_count for m in metrics.values()) == len(records)
        assert math.isclose(
            sum(m.total_downloaded for m in metrics.values()),
            sum(r.downloaded for r in records),
            rel_tol=1e-9,
            abs_tol=1e-6,
        )
        assert math.isclose(
            sum(m.total_uploaded for m in metrics.values()),
            sum(r.uploaded for r in records),
            rel_tol=1e-9,
            abs_tol=1e-6,
        )
        assert sum(m.departures for m in metrics.values()) == sum(
            1 for r in records if r.departed_round is not None
        )

    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_download_shares_sum_to_one_when_anything_flowed(self, records):
        metrics = compute_group_cohort_metrics(records, MEASURED_ROUNDS)
        total = sum(r.downloaded for r in records)
        share_sum = sum(m.download_share for m in metrics.values())
        if total > 0:
            assert math.isclose(share_sum, 1.0, rel_tol=1e-9)
        else:
            assert share_sum == 0.0

    @given(records=records_strategy)
    @settings(max_examples=60, deadline=None)
    def test_marginals_agree_with_single_axis_aggregations(self, records):
        cells = compute_group_cohort_metrics(records, MEASURED_ROUNDS)
        by_group = compute_group_metrics(records, MEASURED_ROUNDS)
        for group, expected in by_group.items():
            row = [m for (g, _c), m in cells.items() if g == group]
            assert sum(m.peer_count for m in row) == expected.peer_count
            assert math.isclose(
                sum(m.total_downloaded for m in row),
                expected.total_downloaded,
                rel_tol=1e-9,
                abs_tol=1e-6,
            )
        by_cohort = compute_cohort_metrics(records, MEASURED_ROUNDS)
        for cohort, expected in by_cohort.items():
            column = [m for (_g, c), m in cells.items() if c == cohort]
            assert sum(m.peer_count for m in column) == expected.peer_count
            assert sum(m.peer_rounds for m in column) == expected.peer_rounds

    @given(records=records_strategy)
    @settings(max_examples=40, deadline=None)
    def test_rates_are_bounded_and_exposure_consistent(self, records):
        metrics = compute_group_cohort_metrics(records, MEASURED_ROUNDS)
        for m in metrics.values():
            assert 0.0 <= m.download_share <= 1.0 + 1e-9
            assert 0.0 <= m.departure_rate <= 1.0
            assert m.peer_rounds <= m.peer_count * MEASURED_ROUNDS
            if m.peer_rounds == 0:
                assert m.downloaded_per_peer_round == 0.0
                assert m.uploaded_per_peer_round == 0.0

    def test_measured_rounds_validated(self):
        with pytest.raises(ValueError):
            compute_group_cohort_metrics([], 0)


class TestDeterminismOnRealRuns:
    def test_identical_seeds_give_identical_metrics(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("colluding-whitewash")
        job = spec.compile("smoke", seed=spec.job_seed(3, 0))
        first = job.execute().group_cohort_metrics()
        second = job.execute().group_cohort_metrics()
        assert first == second

    def test_fixed_population_runs_expose_a_single_cohort(self):
        from repro.scenarios import get_scenario

        spec = get_scenario("colluders")
        result = spec.compile("smoke", seed=spec.job_seed(0, 0)).execute()
        metrics = result.group_cohort_metrics()
        assert metrics
        assert {cohort for _g, cohort in metrics} == {"initial"}
        # Fixed engines never record true departures.
        assert all(m.departures == 0 for m in metrics.values())
