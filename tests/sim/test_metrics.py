"""Tests for simulation metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import PeerRecord, compute_group_metrics, population_throughput


def record(peer_id, group, downloaded, uploaded, capacity=100.0) -> PeerRecord:
    return PeerRecord(
        peer_id=peer_id,
        group=group,
        upload_capacity=capacity,
        behavior_label="B1h1-C1-I1k4-R1",
        downloaded=downloaded,
        uploaded=uploaded,
    )


class TestGroupMetrics:
    def test_grouping_and_means(self):
        records = [
            record(0, "a", downloaded=100.0, uploaded=50.0),
            record(1, "a", downloaded=300.0, uploaded=150.0),
            record(2, "b", downloaded=10.0, uploaded=5.0),
        ]
        metrics = compute_group_metrics(records, measured_rounds=10)
        assert metrics["a"].peer_count == 2
        assert metrics["a"].mean_downloaded == pytest.approx(200.0)
        assert metrics["b"].total_uploaded == pytest.approx(5.0)

    def test_upload_utilization(self):
        records = [record(0, "a", downloaded=0.0, uploaded=500.0, capacity=100.0)]
        metrics = compute_group_metrics(records, measured_rounds=10)
        assert metrics["a"].upload_utilization == pytest.approx(0.5)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            compute_group_metrics([], measured_rounds=0)

    def test_empty_records(self):
        assert compute_group_metrics([], measured_rounds=5) == {}


class TestPopulationThroughput:
    def test_total_per_round(self):
        records = [
            record(0, "a", downloaded=100.0, uploaded=0.0),
            record(1, "a", downloaded=200.0, uploaded=0.0),
        ]
        assert population_throughput(records, measured_rounds=10) == pytest.approx(30.0)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            population_throughput([], measured_rounds=0)
