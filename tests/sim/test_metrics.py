"""Tests for simulation metrics."""

from __future__ import annotations

import pytest

from repro.sim.metrics import PeerRecord, compute_group_metrics, population_throughput


def record(peer_id, group, downloaded, uploaded, capacity=100.0) -> PeerRecord:
    return PeerRecord(
        peer_id=peer_id,
        group=group,
        upload_capacity=capacity,
        behavior_label="B1h1-C1-I1k4-R1",
        downloaded=downloaded,
        uploaded=uploaded,
    )


class TestGroupMetrics:
    def test_grouping_and_means(self):
        records = [
            record(0, "a", downloaded=100.0, uploaded=50.0),
            record(1, "a", downloaded=300.0, uploaded=150.0),
            record(2, "b", downloaded=10.0, uploaded=5.0),
        ]
        metrics = compute_group_metrics(records, measured_rounds=10)
        assert metrics["a"].peer_count == 2
        assert metrics["a"].mean_downloaded == pytest.approx(200.0)
        assert metrics["b"].total_uploaded == pytest.approx(5.0)

    def test_upload_utilization(self):
        records = [record(0, "a", downloaded=0.0, uploaded=500.0, capacity=100.0)]
        metrics = compute_group_metrics(records, measured_rounds=10)
        assert metrics["a"].upload_utilization == pytest.approx(0.5)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            compute_group_metrics([], measured_rounds=0)

    def test_empty_records(self):
        assert compute_group_metrics([], measured_rounds=5) == {}


class TestPopulationThroughput:
    def test_total_per_round(self):
        records = [
            record(0, "a", downloaded=100.0, uploaded=0.0),
            record(1, "a", downloaded=200.0, uploaded=0.0),
        ]
        assert population_throughput(records, measured_rounds=10) == pytest.approx(30.0)

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            population_throughput([], measured_rounds=0)


class TestCohortMetrics:
    @staticmethod
    def cohort_record(peer_id, cohort, downloaded, uploaded, rounds_present):
        return PeerRecord(
            peer_id=peer_id,
            group="default",
            upload_capacity=100.0,
            behavior_label="B1h1-C1-I1k4-R1",
            downloaded=downloaded,
            uploaded=uploaded,
            cohort=cohort,
            joined_round=0 if cohort == "initial" else 5,
            rounds_present=rounds_present,
        )

    def test_per_peer_round_normalisation(self):
        from repro.sim.metrics import compute_cohort_metrics

        records = [
            self.cohort_record(0, "initial", 100.0, 40.0, 10),
            self.cohort_record(1, "initial", 300.0, 60.0, 10),
            self.cohort_record(2, "arrival", 50.0, 20.0, 5),
        ]
        metrics = compute_cohort_metrics(records, measured_rounds=10)
        initial, arrival = metrics["initial"], metrics["arrival"]
        assert initial.peer_count == 2
        assert initial.peer_rounds == 20
        assert initial.downloaded_per_peer_round == pytest.approx(20.0)
        assert arrival.peer_rounds == 5
        assert arrival.downloaded_per_peer_round == pytest.approx(10.0)
        assert arrival.uploaded_per_peer_round == pytest.approx(4.0)

    def test_fixed_population_records_default_to_full_window(self):
        from repro.sim.metrics import compute_cohort_metrics

        records = [record(0, "a", downloaded=100.0, uploaded=50.0)]
        metrics = compute_cohort_metrics(records, measured_rounds=4)
        assert set(metrics) == {"initial"}
        assert metrics["initial"].peer_rounds == 4
        assert metrics["initial"].downloaded_per_peer_round == pytest.approx(25.0)

    def test_zero_exposure_cohort_reports_zero_rates(self):
        from repro.sim.metrics import compute_cohort_metrics

        records = [self.cohort_record(0, "arrival", 0.0, 0.0, 0)]
        metrics = compute_cohort_metrics(records, measured_rounds=8)
        assert metrics["arrival"].peer_rounds == 0
        assert metrics["arrival"].downloaded_per_peer_round == 0.0

    def test_invalid_rounds(self):
        from repro.sim.metrics import compute_cohort_metrics

        with pytest.raises(ValueError):
            compute_cohort_metrics([], measured_rounds=0)
