"""Tests for resource-allocation policies."""

from __future__ import annotations

import pytest

from repro.sim.behavior import PeerBehavior
from repro.sim.peer import PeerState
from repro.sim.policies.allocation import allocate_upload


def make_peer(allocation="equal_split", k=4, h=1, capacity=100.0) -> PeerState:
    behavior = PeerBehavior(
        allocation=allocation, partner_count=k, stranger_count=h
    )
    return PeerState(peer_id=0, upload_capacity=capacity, behavior=behavior)


class TestEqualSplit:
    def test_partners_share_equally(self):
        peer = make_peer("equal_split", capacity=90.0)
        allocation = allocate_upload(peer, partners=[1, 2, 3], strangers=[], current_round=1)
        assert allocation == {1: 30.0, 2: 30.0, 3: 30.0}

    def test_strangers_get_one_slot_each(self):
        peer = make_peer("equal_split", capacity=100.0)
        allocation = allocate_upload(peer, partners=[1], strangers=[9], current_round=1)
        assert allocation[1] == pytest.approx(50.0)
        assert allocation[9] == pytest.approx(50.0)

    def test_no_targets_no_allocation(self):
        peer = make_peer("equal_split")
        assert allocate_upload(peer, [], [], 1) == {}

    def test_total_never_exceeds_capacity(self):
        peer = make_peer("equal_split", capacity=70.0)
        allocation = allocate_upload(peer, [1, 2], [3], 1)
        assert sum(allocation.values()) <= 70.0 + 1e-9


class TestStrangerCap:
    def test_cap_limits_stranger_budget(self):
        peer = make_peer("equal_split", k=0, h=3, capacity=100.0)
        allocation = allocate_upload(
            peer, partners=[], strangers=[1, 2, 3], current_round=1,
            stranger_bandwidth_cap=0.3,
        )
        assert sum(allocation.values()) == pytest.approx(30.0)

    def test_invalid_cap_rejected(self):
        peer = make_peer()
        with pytest.raises(ValueError):
            allocate_upload(peer, [1], [], 1, stranger_bandwidth_cap=1.5)


class TestFreeride:
    def test_partners_get_explicit_zero(self):
        peer = make_peer("freeride")
        allocation = allocate_upload(peer, partners=[1, 2], strangers=[], current_round=1)
        assert allocation == {1: 0.0, 2: 0.0}

    def test_strangers_still_served(self):
        peer = make_peer("freeride", capacity=100.0)
        allocation = allocate_upload(peer, partners=[1], strangers=[5], current_round=1)
        assert allocation[1] == 0.0
        assert allocation[5] > 0.0


class TestPropShare:
    def _peer_with_contributions(self, contributions, **kwargs):
        peer = make_peer("prop_share", **kwargs)
        for partner, amount in contributions.items():
            peer.history.record(0, partner, amount)
        return peer

    def test_proportional_to_contribution(self):
        peer = self._peer_with_contributions({1: 30.0, 2: 10.0}, capacity=120.0, k=2, h=1)
        allocation = allocate_upload(peer, partners=[1, 2], strangers=[], current_round=1)
        # Partner budget = 2 slots of 60 each = 80... capacity 120 over 2 active
        # slots = 60 per slot, budget 120; split 3:1.
        assert allocation[1] == pytest.approx(3 * allocation[2])

    def test_zero_contributors_get_nothing(self):
        peer = self._peer_with_contributions({1: 10.0, 2: 0.0})
        allocation = allocate_upload(peer, partners=[1, 2], strangers=[], current_round=1)
        assert allocation[2] == 0.0
        assert allocation[1] > 0.0

    def test_no_contributions_at_all_gives_nothing(self):
        peer = make_peer("prop_share")
        allocation = allocate_upload(peer, partners=[1, 2], strangers=[], current_round=1)
        assert allocation == {1: 0.0, 2: 0.0}

    def test_strangers_bootstrapping_still_served(self):
        peer = make_peer("prop_share", capacity=100.0)
        allocation = allocate_upload(peer, partners=[1], strangers=[7], current_round=1)
        assert allocation[7] > 0.0

    def test_budget_respected(self):
        peer = self._peer_with_contributions({1: 5.0, 2: 15.0}, capacity=100.0)
        allocation = allocate_upload(peer, partners=[1, 2], strangers=[], current_round=1)
        assert sum(allocation.values()) <= 100.0 + 1e-9
