"""Tests for per-peer simulation state."""

from __future__ import annotations

import pytest

from repro.sim.behavior import PeerBehavior
from repro.sim.peer import PeerState


def make_peer(**behavior_kwargs) -> PeerState:
    return PeerState(
        peer_id=0,
        upload_capacity=100.0,
        behavior=PeerBehavior(**behavior_kwargs),
    )


class TestConstruction:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            PeerState(peer_id=0, upload_capacity=0.0, behavior=PeerBehavior())

    def test_initial_aspiration_per_slot(self):
        peer = make_peer(partner_count=4, stranger_count=1)
        assert peer.aspiration == pytest.approx(100.0 / 5)


class TestLoyalty:
    def test_consecutive_cooperation_increments(self):
        peer = make_peer()
        peer.history.record(0, 7, 5.0)
        peer.update_loyalty(0)
        peer.history.record(1, 7, 5.0)
        peer.update_loyalty(1)
        assert peer.loyalty_of(7) == 2

    def test_break_in_cooperation_resets(self):
        peer = make_peer()
        peer.history.record(0, 7, 5.0)
        peer.update_loyalty(0)
        # Round 1: peer 7 gives nothing.
        peer.update_loyalty(1)
        assert peer.loyalty_of(7) == 0

    def test_zero_amount_does_not_count_as_cooperation(self):
        peer = make_peer()
        peer.history.record(0, 7, 0.0)
        peer.update_loyalty(0)
        assert peer.loyalty_of(7) == 0

    def test_unknown_peer_loyalty_zero(self):
        assert make_peer().loyalty_of(99) == 0


class TestAspiration:
    def test_moves_towards_received(self):
        peer = make_peer(partner_count=1, stranger_count=1)
        initial = peer.aspiration
        peer.update_aspiration(received_this_round=200.0, smoothing=0.5)
        assert peer.aspiration > initial

    def test_smoothing_validation(self):
        with pytest.raises(ValueError):
            make_peer().update_aspiration(10.0, smoothing=0.0)

    def test_full_smoothing_jumps_to_target(self):
        peer = make_peer(partner_count=1, stranger_count=1)
        peer.update_aspiration(50.0, smoothing=1.0)
        assert peer.aspiration == pytest.approx(50.0 / 2)


class TestRejoin:
    def test_reset_clears_session_state(self):
        peer = make_peer()
        peer.history.record(0, 1, 5.0)
        peer.loyalty[1] = 3
        peer.pending_requests.add(4)
        peer.reset_for_rejoin(round_index=10)
        assert len(peer.history) == 0
        assert peer.loyalty == {}
        assert peer.pending_requests == set()
        assert peer.joined_round == 10

    def test_reset_restores_default_aspiration(self):
        peer = make_peer(partner_count=4, stranger_count=1)
        peer.update_aspiration(500.0, smoothing=1.0)
        peer.reset_for_rejoin(3)
        assert peer.aspiration == pytest.approx(100.0 / 5)
