"""Tests for the bounded interaction history."""

from __future__ import annotations

import pytest

from repro.sim.history import InteractionHistory


class TestRecording:
    def test_record_and_lookup(self):
        history = InteractionHistory()
        history.record(5, sender=2, amount=10.0)
        assert history.amount_from(2, 5) == 10.0
        assert history.amount_from(2, 4) == 0.0

    def test_amounts_accumulate_within_round(self):
        history = InteractionHistory()
        history.record(1, 3, 4.0)
        history.record(1, 3, 6.0)
        assert history.amount_from(3, 1) == 10.0

    def test_zero_amount_recorded_as_interaction(self):
        history = InteractionHistory()
        history.record(1, 9, 0.0)
        assert 9 in history.senders_in_window(2, 1)
        assert history.amount_from(9, 1) == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            InteractionHistory().record(0, 1, -1.0)

    def test_window_trimming(self):
        history = InteractionHistory(max_rounds=2)
        for round_index in range(5):
            history.record(round_index, 1, 1.0)
        assert history.rounds_recorded() == [3, 4]

    def test_invalid_max_rounds(self):
        with pytest.raises(ValueError):
            InteractionHistory(max_rounds=0)


class TestQueries:
    def test_senders_in_window_tft_vs_tf2t(self):
        history = InteractionHistory(max_rounds=3)
        history.record(1, 10, 1.0)
        history.record(2, 20, 1.0)
        assert history.senders_in_window(3, window=1) == {20}
        assert history.senders_in_window(3, window=2) == {10, 20}

    def test_senders_window_validation(self):
        with pytest.raises(ValueError):
            InteractionHistory().senders_in_window(3, window=0)

    def test_received_in_window_and_rate(self):
        history = InteractionHistory()
        history.record(1, 5, 4.0)
        history.record(2, 5, 8.0)
        assert history.received_in_window(5, current_round=3, window=2) == 12.0
        assert history.observed_rate(5, current_round=3, window=2) == 6.0

    def test_total_received(self):
        history = InteractionHistory()
        history.record(4, 1, 5.0)
        history.record(4, 2, 7.0)
        assert history.total_received(4) == 12.0
        assert history.total_received(3) == 0.0

    def test_all_known_peers(self):
        history = InteractionHistory()
        history.record(0, 1, 1.0)
        history.record(1, 2, 1.0)
        assert history.all_known_peers() == {1, 2}

    def test_interactions_in_round_returns_copy(self):
        history = InteractionHistory()
        history.record(0, 1, 1.0)
        snapshot = history.interactions_in_round(0)
        snapshot[99] = 5.0
        assert 99 not in history.interactions_in_round(0)


class TestForgetting:
    def test_forget_peer(self):
        history = InteractionHistory()
        history.record(0, 1, 1.0)
        history.record(0, 2, 1.0)
        history.forget_peer(1)
        assert history.all_known_peers() == {2}

    def test_forget_peers_bulk_matches_per_id_forget(self):
        bulk, one_by_one = InteractionHistory(), InteractionHistory()
        for history in (bulk, one_by_one):
            for round_index in range(3):
                for sender in range(5):
                    history.record(round_index, sender, float(sender + 1))
        bulk.forget_peers({1, 3})
        one_by_one.forget_peer(1)
        one_by_one.forget_peer(3)
        for round_index in range(3):
            assert bulk.interactions_in_round(
                round_index
            ) == one_by_one.interactions_in_round(round_index)
        assert bulk.all_known_peers() == {0, 2, 4}

    def test_forget_peers_empty_is_noop(self):
        history = InteractionHistory()
        history.record(0, 1, 1.0)
        history.forget_peers(())
        assert history.all_known_peers() == {1}

    def test_clear(self):
        history = InteractionHistory()
        history.record(0, 1, 1.0)
        history.clear()
        assert len(history) == 0
        assert history.all_known_peers() == set()
