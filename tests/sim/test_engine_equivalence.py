"""Golden-equivalence suite: optimised engine vs frozen reference engine.

The optimised :class:`repro.sim.engine.Simulation` inlines the policy logic
and restructures the round loop for speed; these tests prove it reproduces
the seed engine's outputs **bit-identically** on fixed seeds.  The reference
is :class:`repro.sim.reference.ReferenceSimulation`, a self-contained frozen
snapshot of the seed implementation — any engine or policy change that
perturbs a single random draw or float operation fails here.
"""

from __future__ import annotations

import pytest

from repro.core.protocol import (
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    random_ranking_protocol,
    sort_s,
)
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.sim.reference import ReferenceSimulation

#: Protocol variants covering every ranking function, every stranger policy
#: and every allocation policy at least once (well beyond the required five).
VARIANTS = {
    "bittorrent": bittorrent_reference().behavior,
    "birds": birds_protocol().behavior,
    "loyal_when_needed": loyal_when_needed().behavior,
    "sort_s": sort_s().behavior,
    "random_ranking": random_ranking_protocol().behavior,
    "defect_propshare_adaptive": PeerBehavior(
        stranger_policy="defect",
        stranger_count=2,
        candidate_policy="tf2t",
        ranking="adaptive",
        partner_count=3,
        allocation="prop_share",
    ),
    "none_freeride": PeerBehavior(
        stranger_policy="none",
        stranger_count=0,
        candidate_policy="tft",
        ranking="fastest",
        partner_count=2,
        allocation="freeride",
    ),
    "when_needed_no_partners": PeerBehavior(
        stranger_policy="when_needed",
        stranger_count=3,
        candidate_policy="tf2t",
        ranking="loyal",
        partner_count=0,
        allocation="equal_split",
        stranger_period=2,
    ),
    "periodic_slow_propshare": PeerBehavior(
        stranger_policy="periodic",
        stranger_count=2,
        candidate_policy="tf2t",
        ranking="slowest",
        partner_count=5,
        allocation="prop_share",
        stranger_period=3,
    ),
}


def assert_identical_results(result, reference):
    """Every output of the two runs must match exactly (no tolerances)."""
    assert result.records == reference.records
    assert result.rounds_executed == reference.rounds_executed
    assert result.churn_events == reference.churn_events
    assert result.total_explicit_refusals == reference.total_explicit_refusals
    # Derived metrics follow from the records, but assert the headline ones
    # explicitly so a failure names the quantity the figures consume.
    assert result.throughput == reference.throughput
    assert result.utilization() == reference.utilization()


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("seed", [0, 7])
def test_homogeneous_equivalence(variant, seed):
    behavior = VARIANTS[variant]
    config = SimulationConfig(n_peers=12, rounds=30)
    optimised = Simulation(config, [behavior], seed=seed).run()
    reference = ReferenceSimulation(config, [behavior], seed=seed).run()
    assert_identical_results(optimised, reference)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_churn_and_warmup_equivalence(variant):
    behavior = VARIANTS[variant]
    config = SimulationConfig(
        n_peers=10, rounds=25, churn_rate=0.05, warmup_rounds=5
    )
    optimised = Simulation(config, [behavior], seed=11).run()
    reference = ReferenceSimulation(config, [behavior], seed=11).run()
    assert_identical_results(optimised, reference)


@pytest.mark.parametrize(
    "pair",
    [
        ("bittorrent", "sort_s"),
        ("birds", "none_freeride"),
        ("loyal_when_needed", "defect_propshare_adaptive"),
        ("random_ranking", "periodic_slow_propshare"),
        ("sort_s", "when_needed_no_partners"),
    ],
    ids=lambda pair: f"{pair[0]}-vs-{pair[1]}",
)
def test_encounter_equivalence(pair):
    """Mixed-group (PRA encounter) populations must also match exactly."""
    behavior_a, behavior_b = VARIANTS[pair[0]], VARIANTS[pair[1]]
    config = SimulationConfig(n_peers=10, rounds=20)
    behaviors = [behavior_a] * 5 + [behavior_b] * 5
    groups = ["A"] * 5 + ["B"] * 5
    optimised = Simulation(config, behaviors, groups, seed=3).run()
    reference = ReferenceSimulation(config, behaviors, groups, seed=3).run()
    assert_identical_results(optimised, reference)
    assert optimised.group_mean_download("A") == reference.group_mean_download("A")
    assert optimised.group_mean_download("B") == reference.group_mean_download("B")


def test_no_discovery_no_requests_equivalence():
    """Degenerate communication settings exercise the skipped-sample paths."""
    config = SimulationConfig(
        n_peers=8, rounds=20, requests_per_round=0, discovery_per_round=0
    )
    behavior = VARIANTS["bittorrent"]
    optimised = Simulation(config, [behavior], seed=5).run()
    reference = ReferenceSimulation(config, [behavior], seed=5).run()
    assert_identical_results(optimised, reference)


def test_tight_stranger_cap_equivalence():
    config = SimulationConfig(
        n_peers=12, rounds=25, discovery_per_round=3, stranger_bandwidth_cap=0.2
    )
    behavior = VARIANTS["periodic_slow_propshare"]
    optimised = Simulation(config, [behavior], seed=17).run()
    reference = ReferenceSimulation(config, [behavior], seed=17).run()
    assert_identical_results(optimised, reference)


@pytest.mark.parametrize("variant", ["bittorrent", "defect_propshare_adaptive"])
def test_two_round_history_equivalence(variant):
    """history_rounds=2 forces the engine's buffered (non-fused) phase-2 path."""
    config = SimulationConfig(n_peers=10, rounds=25, history_rounds=2)
    behavior = VARIANTS[variant]
    optimised = Simulation(config, [behavior], seed=13).run()
    reference = ReferenceSimulation(config, [behavior], seed=13).run()
    assert_identical_results(optimised, reference)


@pytest.mark.parametrize("variant", ["bittorrent", "sort_s", "periodic_slow_propshare"])
def test_paper_scale_population_equivalence(variant):
    """n_peers=50 exercises random.sample's selection-set branch (n > 21)."""
    config = SimulationConfig(n_peers=50, rounds=12)
    behavior = VARIANTS[variant]
    optimised = Simulation(config, [behavior], seed=23).run()
    reference = ReferenceSimulation(config, [behavior], seed=23).run()
    assert_identical_results(optimised, reference)


def test_many_requests_and_discoveries_equivalence():
    """requests/discovery > 2 exercise the k>2 pool-copy sampling loop."""
    config = SimulationConfig(
        n_peers=14, rounds=20, requests_per_round=4, discovery_per_round=5
    )
    behavior = VARIANTS["loyal_when_needed"]
    optimised = Simulation(config, [behavior], seed=29).run()
    reference = ReferenceSimulation(config, [behavior], seed=29).run()
    assert_identical_results(optimised, reference)
