"""Tests for the executable protocol behaviour."""

from __future__ import annotations

import pytest

from repro.sim.behavior import PeerBehavior


class TestValidation:
    def test_defaults_valid(self):
        behavior = PeerBehavior()
        assert behavior.stranger_policy == "periodic"

    @pytest.mark.parametrize(
        "field, value",
        [
            ("stranger_policy", "bogus"),
            ("candidate_policy", "bogus"),
            ("ranking", "bogus"),
            ("allocation", "bogus"),
        ],
    )
    def test_unknown_categorical_rejected(self, field, value):
        with pytest.raises(ValueError):
            PeerBehavior(**{field: value})

    def test_partner_count_bounds(self):
        with pytest.raises(ValueError):
            PeerBehavior(partner_count=10)
        with pytest.raises(ValueError):
            PeerBehavior(partner_count=-1)

    def test_stranger_count_bounds(self):
        with pytest.raises(ValueError):
            PeerBehavior(stranger_count=4)

    def test_none_policy_requires_zero_strangers(self):
        with pytest.raises(ValueError):
            PeerBehavior(stranger_policy="none", stranger_count=1)
        assert PeerBehavior(stranger_policy="none", stranger_count=0).stranger_count == 0

    def test_cooperative_policies_require_strangers(self):
        with pytest.raises(ValueError):
            PeerBehavior(stranger_policy="when_needed", stranger_count=0)

    def test_stranger_period_positive(self):
        with pytest.raises(ValueError):
            PeerBehavior(stranger_period=0)


class TestDerivedProperties:
    def test_candidate_window(self):
        assert PeerBehavior(candidate_policy="tft").candidate_window == 1
        assert PeerBehavior(candidate_policy="tf2t").candidate_window == 2

    def test_total_slots(self):
        behavior = PeerBehavior(partner_count=4, stranger_count=2)
        assert behavior.total_slots == 6

    def test_uploads_nothing_for_full_defector(self):
        behavior = PeerBehavior(
            stranger_policy="defect", stranger_count=1, allocation="freeride"
        )
        assert behavior.uploads_nothing

    def test_uploads_something_with_stranger_cooperation(self):
        behavior = PeerBehavior(
            stranger_policy="periodic", stranger_count=1, allocation="freeride"
        )
        assert not behavior.uploads_nothing

    def test_uploads_something_with_partner_cooperation(self):
        behavior = PeerBehavior(stranger_policy="defect", allocation="equal_split")
        assert not behavior.uploads_nothing

    def test_with_returns_modified_copy(self):
        base = PeerBehavior()
        changed = base.with_(partner_count=7)
        assert changed.partner_count == 7
        assert base.partner_count == 4


class TestLabelAndSerialization:
    def test_label_format(self):
        behavior = PeerBehavior(
            stranger_policy="when_needed",
            stranger_count=2,
            candidate_policy="tft",
            ranking="loyal",
            partner_count=7,
            allocation="prop_share",
        )
        assert behavior.label() == "B2h2-C1-I5k7-R2"

    def test_label_unique_over_sampled_space(self):
        from repro.core.space import DesignSpace

        space = DesignSpace.default()
        labels = {space.protocol(i).behavior.label() for i in range(0, len(space), 37)}
        assert len(labels) == len(range(0, len(space), 37))

    def test_dict_roundtrip(self):
        behavior = PeerBehavior(
            stranger_policy="defect",
            stranger_count=3,
            candidate_policy="tf2t",
            ranking="slowest",
            partner_count=1,
            allocation="freeride",
        )
        assert PeerBehavior.from_dict(behavior.as_dict()) == behavior

    def test_hashable_and_equality(self):
        assert PeerBehavior() == PeerBehavior()
        assert len({PeerBehavior(), PeerBehavior()}) == 1
