"""Tests for stranger policies."""

from __future__ import annotations

import pytest

from repro.sim.behavior import PeerBehavior
from repro.sim.peer import PeerState
from repro.sim.policies.stranger import stranger_decision


def make_peer(policy, h=1, k=4, period=1) -> PeerState:
    behavior = PeerBehavior(
        stranger_policy=policy,
        stranger_count=h if policy not in ("none",) else 0,
        partner_count=k,
        stranger_period=period,
    )
    return PeerState(peer_id=0, upload_capacity=100.0, behavior=behavior)


class TestNonePolicy:
    def test_ignores_everyone(self, rng):
        peer = make_peer("none")
        peer.pending_requests = {3, 4}
        decision = stranger_decision(peer, [3, 4, 5], 0, 1, rng)
        assert decision.cooperate == []
        assert decision.refuse == []


class TestDefectPolicy:
    def test_refuses_requesters(self, rng):
        peer = make_peer("defect", h=2)
        peer.pending_requests = {3, 4, 5}
        decision = stranger_decision(peer, [3, 4, 5], 0, 1, rng)
        assert decision.cooperate == []
        assert 1 <= len(decision.refuse) <= 2
        assert set(decision.refuse) <= {3, 4, 5}

    def test_no_requesters_no_refusals(self, rng):
        peer = make_peer("defect", h=1)
        decision = stranger_decision(peer, [7, 8], 0, 1, rng)
        assert decision.refuse == []

    def test_refuses_at_least_one_even_with_h_one(self, rng):
        peer = make_peer("defect", h=1)
        peer.pending_requests = {9}
        decision = stranger_decision(peer, [9], 0, 1, rng)
        assert decision.refuse == [9]


class TestPeriodicPolicy:
    def test_cooperates_with_up_to_h(self, rng):
        peer = make_peer("periodic", h=2)
        decision = stranger_decision(peer, [1, 2, 3, 4], 4, 1, rng)
        assert len(decision.cooperate) == 2
        assert decision.refuse == []

    def test_prefers_requesters(self, rng):
        peer = make_peer("periodic", h=1)
        peer.pending_requests = {7}
        decision = stranger_decision(peer, [5, 6, 7], 4, 1, rng)
        assert decision.cooperate == [7]

    def test_respects_period(self, rng):
        peer = make_peer("periodic", h=1, period=3)
        # Round 1 is not a multiple of the period.
        assert stranger_decision(peer, [1, 2], 4, 1, rng).cooperate == []
        assert stranger_decision(peer, [1, 2], 4, 3, rng).cooperate != []

    def test_empty_pool(self, rng):
        peer = make_peer("periodic", h=3)
        assert stranger_decision(peer, [], 0, 1, rng).cooperate == []


class TestWhenNeededPolicy:
    def test_cooperates_when_partner_set_not_full(self, rng):
        peer = make_peer("when_needed", h=2, k=4)
        decision = stranger_decision(peer, [1, 2, 3], selected_partner_count=2,
                                     current_round=1, rng=rng)
        assert len(decision.cooperate) == 2

    def test_defects_when_partner_set_full(self, rng):
        peer = make_peer("when_needed", h=2, k=4)
        decision = stranger_decision(peer, [1, 2, 3], selected_partner_count=4,
                                     current_round=1, rng=rng)
        assert decision.cooperate == []
        assert decision.refuse == []

    def test_zero_partner_protocol_always_needs(self, rng):
        # k = 0 means the partner set can never be "not full"; when_needed
        # therefore never cooperates, which matches its definition.
        peer = make_peer("when_needed", h=1, k=0)
        decision = stranger_decision(peer, [1, 2], 0, 1, rng)
        assert decision.cooperate == []
