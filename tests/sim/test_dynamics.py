"""Tests for engine-level scenario dynamics (waves, shifts, pinned capacities)."""

from __future__ import annotations

import random

import pytest

from repro.sim.bandwidth import ConstantBandwidth, MultiClassBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_correlated_churn
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import BehaviorShift, ChurnWave, ScenarioDynamics
from repro.sim.engine import Simulation
from repro.sim.history import InteractionHistory
from repro.sim.peer import PeerState


def make_peers(count: int, capacity: float = 50.0):
    return [
        PeerState(
            peer_id=i,
            upload_capacity=capacity,
            behavior=PeerBehavior(),
            history=InteractionHistory(),
        )
        for i in range(count)
    ]


class TestChurnWave:
    def test_covers_window(self):
        wave = ChurnWave(start=5, rounds=3, intensity=0.2)
        assert not wave.covers(4)
        assert wave.covers(5) and wave.covers(7)
        assert not wave.covers(8)

    def test_round_trip(self):
        wave = ChurnWave(start=2, rounds=4, intensity=0.5, correlated=True)
        assert ChurnWave.from_dict(wave.as_dict()) == wave

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnWave(start=-1)
        with pytest.raises(ValueError):
            ChurnWave(start=0, rounds=0)
        with pytest.raises(ValueError):
            ChurnWave(start=0, intensity=0.0)
        with pytest.raises(ValueError):
            ChurnWave(start=0, intensity=1.0)  # independent must stay < 1
        # correlated intensity of exactly 1 (whole swarm) is allowed
        ChurnWave(start=0, intensity=1.0, correlated=True)


class TestBehaviorShift:
    def test_round_trip(self):
        shift = BehaviorShift(
            round=7, peer_ids=(0, 3, 5), behavior=PeerBehavior.free_rider(),
            group="freerider",
        )
        assert BehaviorShift.from_dict(shift.as_dict()) == shift

    def test_validation(self):
        with pytest.raises(ValueError):
            BehaviorShift(round=1, peer_ids=(), behavior=PeerBehavior())
        with pytest.raises(ValueError):
            BehaviorShift(round=1, peer_ids=(1, 1), behavior=PeerBehavior())
        with pytest.raises(ValueError):
            BehaviorShift(round=-1, peer_ids=(0,), behavior=PeerBehavior())


class TestScenarioDynamics:
    def test_round_trip_full(self):
        dynamics = ScenarioDynamics(
            initial_capacities=(10.0, 20.0, 30.0),
            churn_waves=(
                ChurnWave(start=1, rounds=2, intensity=0.3, correlated=True),
                ChurnWave(start=4, rounds=1, intensity=0.05),
            ),
            behavior_shifts=(
                BehaviorShift(round=2, peer_ids=(1,), behavior=PeerBehavior()),
            ),
        )
        assert ScenarioDynamics.from_dict(dynamics.as_dict()) == dynamics

    def test_trivial(self):
        assert ScenarioDynamics().is_trivial()
        assert not ScenarioDynamics(churn_waves=(ChurnWave(start=0),)).is_trivial()

    def test_round_lookups(self):
        dynamics = ScenarioDynamics(
            churn_waves=(
                ChurnWave(start=3, rounds=2, intensity=0.1),
                ChurnWave(start=4, rounds=1, intensity=0.2),
                ChurnWave(start=3, rounds=1, intensity=0.5, correlated=True),
            )
        )
        assert dynamics.extra_rate(3) == pytest.approx(0.1)
        assert dynamics.extra_rate(4) == pytest.approx(0.3)
        assert dynamics.extra_rate(5) == 0.0
        assert dynamics.correlated_fraction(3) == pytest.approx(0.5)
        assert dynamics.correlated_fraction(4) == 0.0

    def test_config_validates_capacity_length(self):
        with pytest.raises(ValueError):
            SimulationConfig(
                n_peers=5,
                rounds=20,
                dynamics=ScenarioDynamics(initial_capacities=(10.0,) * 4),
            )

    def test_config_validates_shift_peer_ids(self):
        shift = BehaviorShift(round=1, peer_ids=(7,), behavior=PeerBehavior())
        with pytest.raises(ValueError):
            SimulationConfig(
                n_peers=5, rounds=20, dynamics=ScenarioDynamics(behavior_shifts=(shift,))
            )


class TestApplyCorrelatedChurn:
    def test_replaces_exact_fraction(self):
        peers = make_peers(10)
        churned = apply_correlated_churn(
            peers, 0.4, 3, random.Random(0), ConstantBandwidth(25.0)
        )
        assert len(churned) == 4
        assert len(set(churned)) == 4
        for pid in churned:
            assert peers[pid].joined_round == 3
            assert peers[pid].upload_capacity == 25.0

    def test_positive_fraction_churns_at_least_one(self):
        peers = make_peers(10)
        churned = apply_correlated_churn(
            peers, 0.01, 1, random.Random(0), ConstantBandwidth(25.0)
        )
        assert len(churned) == 1

    def test_zero_fraction_is_noop(self):
        peers = make_peers(4)
        assert apply_correlated_churn(
            peers, 0.0, 1, random.Random(0), ConstantBandwidth(25.0)
        ) == []

    def test_survivors_forget_churned(self):
        peers = make_peers(6)
        peers[0].history.record(2, 1, 5.0)
        peers[0].loyalty[1] = 3
        peers[0].pending_requests.add(1)
        rng = random.Random(4)
        churned = apply_correlated_churn(peers, 1.0 / 6.0, 3, rng, ConstantBandwidth(25.0))
        if 1 in churned:
            assert peers[0].history.amount_from(1, 2) == 0.0
            assert peers[0].loyalty_of(1) == 0
            assert 1 not in peers[0].pending_requests

    def test_exclude_removes_ids_from_the_draw(self):
        # Batch size stays relative to the full population, but excluded
        # slots (already churned this round) can never be drawn again.
        for seed in range(20):
            peers = make_peers(10)
            churned = apply_correlated_churn(
                peers, 0.5, 1, random.Random(seed), ConstantBandwidth(25.0),
                exclude=(0, 1, 2),
            )
            assert len(churned) == 5
            assert not set(churned) & {0, 1, 2}

    def test_exclude_clamps_batch_to_eligible_pool(self):
        peers = make_peers(4)
        churned = apply_correlated_churn(
            peers, 1.0, 1, random.Random(0), ConstantBandwidth(25.0),
            exclude=(0, 1, 2),
        )
        assert churned == [3]

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            apply_correlated_churn(
                make_peers(4), 1.5, 1, random.Random(0), ConstantBandwidth(25.0)
            )


class TestEngineDynamics:
    def test_trivial_dynamics_is_bit_identical_to_none(self):
        base = SimulationConfig(n_peers=10, rounds=15, churn_rate=0.05)
        with_trivial = base.with_(dynamics=ScenarioDynamics())
        plain = Simulation(base, [PeerBehavior()], seed=11).run()
        gated = Simulation(with_trivial, [PeerBehavior()], seed=11).run()
        assert plain.records == gated.records
        assert plain.churn_events == gated.churn_events

    def test_initial_capacities_are_pinned(self):
        capacities = tuple(float(10 * (i + 1)) for i in range(6))
        config = SimulationConfig(
            n_peers=6,
            rounds=16,
            dynamics=ScenarioDynamics(initial_capacities=capacities),
        )
        sim = Simulation(config, [PeerBehavior()], seed=0)
        assert tuple(p.upload_capacity for p in sim.peers) == capacities

    def test_correlated_wave_churns_exact_batch(self):
        config = SimulationConfig(
            n_peers=10,
            rounds=20,
            dynamics=ScenarioDynamics(
                churn_waves=(ChurnWave(start=5, rounds=1, intensity=0.5, correlated=True),)
            ),
        )
        result = Simulation(config, [PeerBehavior()], seed=2).run()
        assert result.churn_events == 5

    def test_independent_wave_raises_churn(self):
        config = SimulationConfig(
            n_peers=16,
            rounds=40,
            dynamics=ScenarioDynamics(
                churn_waves=(ChurnWave(start=0, rounds=40, intensity=0.3),)
            ),
        )
        result = Simulation(config, [PeerBehavior()], seed=3).run()
        # Expect roughly 0.3 * 16 * 40 = 192 churn events; far above zero.
        assert result.churn_events > 100

    def test_behavior_shift_switches_protocol_and_group(self):
        shift = BehaviorShift(
            round=0,
            peer_ids=(0, 1),
            behavior=PeerBehavior.free_rider(),
            group="freerider",
        )
        config = SimulationConfig(
            n_peers=8, rounds=20, dynamics=ScenarioDynamics(behavior_shifts=(shift,))
        )
        result = Simulation(config, [PeerBehavior()], seed=5).run()
        shifted = [r for r in result.records if r.peer_id in (0, 1)]
        assert all(r.group == "freerider" for r in shifted)
        assert all(r.behavior_label == PeerBehavior.free_rider().label() for r in shifted)
        # A peer free-riding from round 0 never uploads anything.
        assert all(r.uploaded == 0.0 for r in shifted)

    def test_mid_run_shift_stops_contributions(self):
        shift = BehaviorShift(
            round=10, peer_ids=(0,), behavior=PeerBehavior.free_rider()
        )
        config = SimulationConfig(n_peers=8, rounds=30)
        shifted_config = config.with_(
            dynamics=ScenarioDynamics(behavior_shifts=(shift,))
        )
        baseline = Simulation(config, [PeerBehavior()], seed=7).run()
        shifted = Simulation(shifted_config, [PeerBehavior()], seed=7).run()
        base_up = next(r for r in baseline.records if r.peer_id == 0).uploaded
        shift_up = next(r for r in shifted.records if r.peer_id == 0).uploaded
        assert 0.0 < shift_up < base_up

    def test_dynamics_runs_are_deterministic(self):
        config = SimulationConfig(
            n_peers=10,
            rounds=25,
            churn_rate=0.02,
            dynamics=ScenarioDynamics(
                initial_capacities=(40.0,) * 10,
                churn_waves=(
                    ChurnWave(start=4, rounds=2, intensity=0.3, correlated=True),
                    ChurnWave(start=12, rounds=3, intensity=0.1),
                ),
                behavior_shifts=(
                    BehaviorShift(
                        round=8, peer_ids=(2, 5), behavior=PeerBehavior.colluder(),
                        group="colluder",
                    ),
                ),
            ),
        )
        first = Simulation(config, [PeerBehavior()], seed=9).run()
        second = Simulation(config, [PeerBehavior()], seed=9).run()
        assert first.records == second.records
        assert first.churn_events == second.churn_events


class TestMultiClassBandwidth:
    def test_samples_stay_on_class_grid(self):
        distribution = MultiClassBandwidth([(0.5, 10.0), (0.3, 50.0), (0.2, 400.0)])
        rng = random.Random(0)
        values = {distribution.sample(rng) for _ in range(200)}
        assert values <= {10.0, 50.0, 400.0}
        assert len(values) == 3

    def test_mean(self):
        distribution = MultiClassBandwidth([(0.5, 10.0), (0.5, 30.0)])
        assert distribution.mean() == pytest.approx(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiClassBandwidth([])
        with pytest.raises(ValueError):
            MultiClassBandwidth([(0.5, 10.0)])  # fractions must sum to 1
        with pytest.raises(ValueError):
            MultiClassBandwidth([(1.0, -5.0)])


class TestPopulationDynamicsTypes:
    def test_arrival_process_round_trips(self):
        from repro.sim.dynamics import ArrivalProcess

        for process in (
            ArrivalProcess(),
            ArrivalProcess(kind="poisson", rate=0.75, start=3),
            ArrivalProcess(kind="flash", start=5, count=7, duration=2),
            ArrivalProcess(kind="whitewash", rate=0.6),
            ArrivalProcess(kind="poisson", rate=1.0, group="newcomer"),
        ):
            assert ArrivalProcess.from_dict(process.as_dict()) == process

    def test_arrival_process_validation(self):
        from repro.sim.dynamics import ArrivalProcess

        with pytest.raises(ValueError):
            ArrivalProcess(kind="teleport")
        with pytest.raises(ValueError):
            ArrivalProcess(kind="poisson", rate=0.0)
        with pytest.raises(ValueError):
            ArrivalProcess(kind="whitewash", rate=1.5)
        with pytest.raises(ValueError):
            ArrivalProcess(kind="flash", count=0)

    def test_flash_schedule_spreads_the_batch(self):
        from repro.sim.dynamics import ArrivalProcess

        process = ArrivalProcess(kind="flash", start=4, count=7, duration=3)
        schedule = [process.flash_count_for_round(r) for r in range(10)]
        assert schedule == [0, 0, 0, 0, 3, 2, 2, 0, 0, 0]
        assert sum(schedule) == 7
        # Non-flash kinds never schedule anything.
        assert ArrivalProcess(kind="poisson", rate=1.0).flash_count_for_round(4) == 0

    def test_departure_process_round_trips_and_validates(self):
        from repro.sim.dynamics import DepartureProcess

        process = DepartureProcess(rate=0.05, mode="replace", min_active=4)
        assert DepartureProcess.from_dict(process.as_dict()) == process
        with pytest.raises(ValueError):
            DepartureProcess(rate=1.0)
        with pytest.raises(ValueError):
            DepartureProcess(rate=0.1, mode="vanish")
        with pytest.raises(ValueError):
            DepartureProcess(rate=0.1, min_active=1)

    def test_population_dynamics_round_trips_and_triviality(self):
        from repro.sim.dynamics import (
            ArrivalProcess,
            DepartureProcess,
            PopulationDynamics,
        )

        bundle = PopulationDynamics(
            arrival=ArrivalProcess(kind="poisson", rate=0.5),
            departure=DepartureProcess(rate=0.02),
            max_active=40,
        )
        assert PopulationDynamics.from_dict(bundle.as_dict()) == bundle
        assert not bundle.is_trivial()
        assert PopulationDynamics().is_trivial()
        # Whitewash arrivals are coupled to a shrink departure process.
        with pytest.raises(ValueError):
            PopulationDynamics(arrival=ArrivalProcess(kind="whitewash", rate=0.5))
        with pytest.raises(ValueError):
            PopulationDynamics(
                arrival=ArrivalProcess(kind="whitewash", rate=0.5),
                departure=DepartureProcess(rate=0.1, mode="replace"),
            )
        # Replacement departures blend identities per slot; they are only
        # the degenerate no-arrival bridge to the fixed engine.
        with pytest.raises(ValueError):
            PopulationDynamics(
                arrival=ArrivalProcess(kind="poisson", rate=0.5),
                departure=DepartureProcess(rate=0.1, mode="replace"),
            )
        PopulationDynamics(departure=DepartureProcess(rate=0.1, mode="replace"))

    def test_population_config_validation(self):
        from repro.sim.dynamics import (
            ArrivalProcess,
            DepartureProcess,
            PopulationDynamics,
        )

        bundle = PopulationDynamics(
            arrival=ArrivalProcess(kind="poisson", rate=0.5),
            departure=DepartureProcess(rate=0.02),
        )
        config = SimulationConfig(n_peers=10, rounds=20, population=bundle)
        assert config.is_variable_population
        assert not SimulationConfig(n_peers=10, rounds=20).is_variable_population
        with pytest.raises(ValueError):  # population owns departures
            SimulationConfig(n_peers=10, rounds=20, churn_rate=0.1, population=bundle)
        with pytest.raises(ValueError):  # waves/shifts address fixed slots
            SimulationConfig(
                n_peers=10,
                rounds=20,
                population=bundle,
                dynamics=ScenarioDynamics(churn_waves=(ChurnWave(start=2),)),
            )
        with pytest.raises(ValueError):  # cap below the initial population
            SimulationConfig(
                n_peers=10,
                rounds=20,
                population=PopulationDynamics(
                    arrival=ArrivalProcess(kind="poisson", rate=0.5),
                    max_active=5,
                ),
            )
