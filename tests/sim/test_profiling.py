"""Tests for the per-phase profiling harness.

The load-bearing property is *accounting closure*: a profiled engine run's
phase totals must sum to its wall-clock time within tolerance, otherwise a
"regression in phase X" read off a breakdown could be an artifact of
unattributed time.  The rest pins the harness surface itself: roll-ups,
legacy aliases, payload round-trips, rendering and the no-op profiler.
"""

from __future__ import annotations

import time

import pytest

from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.population_vec import VecSimulation
from repro.sim.profiling import (
    NULL_PROFILER,
    NullProfiler,
    PhaseProfiler,
    aggregate_phases,
    payload_seconds,
    phases_payload,
    profile_seconds_of,
    profiler_for,
    render_phases,
    top_level_phases,
)


class TestPhaseProfiler:
    def test_tick_lap_accumulates(self):
        profiler = PhaseProfiler()
        profiler.tick()
        time.sleep(0.002)
        profiler.lap("decision")
        profiler.lap("transfer")
        assert profiler.seconds["decision"] >= 0.002
        assert profiler.seconds["transfer"] >= 0.0
        profiler.tick()
        profiler.lap("decision")
        assert set(profiler.seconds) == {"decision", "transfer"}

    def test_phase_context_manager(self):
        profiler = PhaseProfiler()
        with profiler.phase("metrics"):
            time.sleep(0.002)
        assert profiler.seconds["metrics"] >= 0.002

    def test_phase_totals_close_over_wall_time(self):
        # The split timer charges every interval between marks to exactly
        # one phase, so a fully-lapped block's phase sum equals its wall
        # time up to timer resolution.
        profiler = PhaseProfiler()
        start = time.perf_counter()
        profiler.tick()
        for name in ("churn", "decision", "allocation", "transfer"):
            time.sleep(0.003)
            profiler.lap(name)
        wall = time.perf_counter() - start
        assert profiler.total() == pytest.approx(wall, rel=0.25, abs=0.005)
        assert profiler.total() >= 4 * 0.003

    def test_engine_run_phase_totals_sum_to_wall_time(self):
        config = SimulationConfig(
            n_peers=50,
            rounds=40,
            bandwidth=ConstantBandwidth(100.0),
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="whitewash", rate=0.9),
                departure=DepartureProcess(rate=0.08, mode="shrink"),
            ),
        )
        behavior = PeerBehavior(
            stranger_policy="periodic", stranger_count=1, ranking="fastest",
            partner_count=3, allocation="equal_split",
        )
        sim = VecSimulation(config, [behavior], seed=2, profile=True)
        start = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - start
        total = sum(sim.phase_seconds.values())
        # Everything inside run() is lapped; the slack covers the loop
        # scaffolding between laps and timer overhead.
        assert total <= wall
        assert total >= 0.80 * wall

    def test_merge_and_add(self):
        profiler = PhaseProfiler()
        profiler.add("decision", 1.0)
        profiler.merge({"decision": 0.5, "transfer": 2.0})
        assert profiler.seconds == {"decision": 1.5, "transfer": 2.0}


class TestRollups:
    def test_dotted_subphases_roll_up(self):
        rolled = top_level_phases(
            {"decision.rank": 1.0, "decision.select": 0.5, "transfer": 2.0}
        )
        assert rolled == {"decision": 1.5, "transfer": 2.0}

    def test_legacy_population_alias(self):
        assert top_level_phases({"population": 1.0}) == {"churn": 1.0}

    def test_canonical_order_then_alphabetical(self):
        rolled = top_level_phases(
            {"zeta": 1.0, "metrics": 1.0, "churn": 1.0, "decision": 1.0}
        )
        assert list(rolled) == ["churn", "decision", "metrics", "zeta"]

    def test_aggregate_phases(self):
        total = aggregate_phases(
            [{"decision": 1.0}, {"decision": 2.0, "transfer": 1.0}]
        )
        assert total == {"decision": 3.0, "transfer": 1.0}


class TestPayload:
    def test_payload_shape_and_round_trip(self):
        seconds = {"decision.rank": 0.25, "decision": 0.5, "transfer": 1.0}
        payload = phases_payload(seconds, rounds=10)
        assert payload["phases"] == {"decision": 0.75, "transfer": 1.0}
        assert payload["subphases"] == {"decision.rank": 0.25}
        assert payload["rounds"] == 10
        assert payload["ms_per_round"]["transfer"] == pytest.approx(100.0)
        assert payload["total_seconds"] == pytest.approx(1.75)
        # payload_seconds reconstructs the finest-grained table: the
        # sub-phase replaces its share of the roll-up.
        seconds_back = payload_seconds(payload)
        assert seconds_back == pytest.approx(
            {"decision": 0.5, "decision.rank": 0.25, "transfer": 1.0}
        )
        assert top_level_phases(seconds_back) == pytest.approx(
            payload["phases"]
        )

    def test_profiler_as_payload_delegates(self):
        profiler = PhaseProfiler()
        profiler.add("decision", 0.5)
        assert profiler.as_payload() == phases_payload({"decision": 0.5})

    def test_profile_seconds_of_prefers_profiler(self):
        class WithProfiler:
            profiler = PhaseProfiler()
            phase_seconds = {"decision": 9.0}

        WithProfiler.profiler.add("decision.rank", 1.0)
        assert profile_seconds_of(WithProfiler()) == {"decision.rank": 1.0}

        class PlainEngine:
            phase_seconds = {"population": 2.0}

        assert profile_seconds_of(PlainEngine()) == {"population": 2.0}


class TestRender:
    def test_render_lists_subphases_and_total(self):
        text = render_phases(
            {"decision": 1.0, "decision.rank": 0.5, "transfer": 0.5},
            rounds=10,
        )
        lines = text.splitlines()
        assert "ms/round" in lines[0]
        assert any(line.lstrip().startswith("decision") for line in lines)
        assert any(".rank" in line for line in lines)
        assert lines[-1].startswith("total")

    def test_render_zero_total_does_not_divide(self):
        assert "0.0%" in render_phases({"decision": 0.0})


class TestNullProfiler:
    def test_shared_instance_records_nothing(self):
        NULL_PROFILER.tick()
        NULL_PROFILER.lap("decision")
        NULL_PROFILER.add("decision", 1.0)
        NULL_PROFILER.merge({"transfer": 1.0})
        with NULL_PROFILER.phase("metrics"):
            pass
        assert NULL_PROFILER.seconds == {}
        assert NULL_PROFILER.total() == 0.0
        assert not NULL_PROFILER.enabled

    def test_profiler_for(self):
        assert profiler_for(False) is NULL_PROFILER
        enabled = profiler_for(True)
        assert isinstance(enabled, PhaseProfiler)
        assert not isinstance(enabled, NullProfiler)
        assert enabled is not profiler_for(True)
