"""Unit tests for the vec (numpy batch) engine.

Distributional agreement with the replica engines is enforced by
``tests/statistical/``; here we pin the engine-local contracts: broadcast
and validation rules, conservation and accounting, behavioural contrast
(the qualitative orderings every engine must reproduce), result shapes for
fixed/legacy/variable runs, cohort labelling, and the profiling hooks.
"""

from __future__ import annotations

import pytest

from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.population_vec import VecSimulation


def bt_like() -> PeerBehavior:
    return PeerBehavior(
        stranger_policy="periodic", stranger_count=1, ranking="fastest",
        partner_count=3, allocation="equal_split",
    )


def full_defector() -> PeerBehavior:
    return PeerBehavior(
        stranger_policy="defect", stranger_count=1, ranking="fastest",
        partner_count=3, allocation="freeride",
    )


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_peers=8, rounds=15, bandwidth=ConstantBandwidth(100.0))


def whitewash_config(n_peers: int = 10, rounds: int = 25) -> SimulationConfig:
    return SimulationConfig(
        n_peers=n_peers,
        rounds=rounds,
        bandwidth=ConstantBandwidth(100.0),
        population=PopulationDynamics(
            arrival=ArrivalProcess(kind="whitewash", rate=0.9),
            departure=DepartureProcess(rate=0.08, mode="shrink"),
            max_active=3 * n_peers,
        ),
    )


class TestConstruction:
    def test_single_behavior_broadcast(self, config):
        result = VecSimulation(config, [bt_like()], seed=0).run()
        assert len(result.records) == config.n_peers

    def test_behavior_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError):
            VecSimulation(config, [bt_like()] * 3, seed=0)

    def test_group_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError):
            VecSimulation(config, [bt_like()], groups=["a", "b"], seed=0)

    def test_capacities_drawn_from_distribution(self, config):
        result = VecSimulation(config, [bt_like()], seed=0).run()
        assert all(r.upload_capacity == 100.0 for r in result.records)


class TestConservationAndAccounting:
    def test_total_download_equals_total_upload(self, config):
        result = VecSimulation(config, [bt_like()], seed=1).run()
        downloaded = sum(r.downloaded for r in result.records)
        uploaded = sum(r.uploaded for r in result.records)
        assert downloaded == pytest.approx(uploaded)

    def test_upload_never_exceeds_capacity(self, config):
        result = VecSimulation(config, [bt_like()], seed=1).run()
        for record in result.records:
            assert record.uploaded <= record.upload_capacity * config.rounds + 1e-6

    def test_utilization_in_unit_interval(self, config):
        result = VecSimulation(config, [bt_like()], seed=2).run()
        assert 0.0 <= result.utilization() <= 1.0

    def test_warmup_rounds_excluded_from_metrics(self):
        config = SimulationConfig(
            n_peers=8, rounds=20, warmup_rounds=10, bandwidth=ConstantBandwidth(100.0)
        )
        full = SimulationConfig(n_peers=8, rounds=20, bandwidth=ConstantBandwidth(100.0))
        with_warmup = VecSimulation(config, [bt_like()], seed=3).run()
        without_warmup = VecSimulation(full, [bt_like()], seed=3).run()
        assert sum(r.downloaded for r in with_warmup.records) < sum(
            r.downloaded for r in without_warmup.records
        )


class TestBehaviouralContrast:
    def test_cooperators_outperform_full_defectors_in_throughput(self, config):
        cooperative = VecSimulation(config, [bt_like()], seed=4).run()
        defecting = VecSimulation(config, [full_defector()], seed=4).run()
        assert cooperative.throughput > defecting.throughput

    def test_full_defectors_upload_nothing(self, config):
        result = VecSimulation(config, [full_defector()], seed=5).run()
        assert result.utilization() == 0.0

    def test_explicit_refusals_counted_for_defect_policy(self, config):
        result = VecSimulation(config, [full_defector()], seed=7).run()
        assert result.total_explicit_refusals > 0

    def test_encounter_group_metrics(self, config):
        n = config.n_peers
        behaviors = [bt_like()] * (n // 2) + [full_defector()] * (n - n // 2)
        groups = ["coop"] * (n // 2) + ["defect"] * (n - n // 2)
        result = VecSimulation(config, behaviors, groups, seed=6).run()
        assert set(result.groups()) == {"coop", "defect"}
        assert result.group_mean_download("coop") > result.group_mean_download("defect")


class TestDeterminismAndChurn:
    def test_same_seed_same_result(self, config):
        a = VecSimulation(config, [bt_like()], seed=11).run()
        b = VecSimulation(config, [bt_like()], seed=11).run()
        assert [r.downloaded for r in a.records] == [r.downloaded for r in b.records]

    def test_different_seeds_differ(self, config):
        a = VecSimulation(config, [bt_like()], seed=11).run()
        b = VecSimulation(config, [bt_like()], seed=12).run()
        assert [r.downloaded for r in a.records] != [r.downloaded for r in b.records]

    def test_churn_counted(self):
        config = SimulationConfig(
            n_peers=8, rounds=30, churn_rate=0.2, bandwidth=ConstantBandwidth(100.0)
        )
        result = VecSimulation(config, [bt_like()], seed=13).run()
        assert result.churn_events > 0

    def test_churned_population_still_transfers(self):
        config = SimulationConfig(
            n_peers=8, rounds=30, churn_rate=0.1, bandwidth=ConstantBandwidth(100.0)
        )
        result = VecSimulation(config, [bt_like()], seed=14).run()
        assert result.throughput > 0.0


class TestResultShapes:
    def test_fixed_run_is_legacy_shaped(self, config):
        result = VecSimulation(config, [bt_like()], seed=15).run()
        assert len(result.records) == config.n_peers
        assert result.active_counts is None
        assert result.total_arrivals == 0
        assert result.total_departures == 0
        assert all(r.rounds_present is None for r in result.records)

    def test_variable_run_reports_active_counts_and_cohorts(self):
        config = whitewash_config()
        result = VecSimulation(config, [bt_like()], seed=16).run()
        assert result.active_counts is not None
        assert len(result.active_counts) == config.rounds
        assert len(result.records) == config.n_peers + result.total_arrivals
        cohorts = {r.cohort for r in result.records}
        assert "initial" in cohorts

    def test_whitewash_rejoins_labelled_as_whitewash_cohort(self):
        config = whitewash_config(rounds=40)
        result = VecSimulation(config, [bt_like()], seed=17).run()
        assert result.total_departures > 0
        whitewashed = [r for r in result.records if r.cohort == "whitewash"]
        assert whitewashed, "expected whitewash rejoins at rate 0.9"
        for record in whitewashed:
            # Rejoins are fresh identities appended after the initial block.
            assert record.peer_id >= config.n_peers

    def test_degenerate_bundle_is_legacy_shaped(self):
        config = SimulationConfig(
            n_peers=8,
            rounds=12,
            bandwidth=ConstantBandwidth(100.0),
            population=PopulationDynamics(
                arrival=ArrivalProcess(),
                departure=DepartureProcess(rate=0.1, mode="replace"),
            ),
        )
        result = VecSimulation(config, [bt_like()], seed=18).run()
        assert result.active_counts is None
        assert len(result.records) == config.n_peers


class TestProfileHooks:
    def test_profile_collects_phase_seconds(self):
        sim = VecSimulation(whitewash_config(), [bt_like()], seed=1, profile=True)
        sim.run()
        assert set(sim.phase_seconds) == {
            "churn", "decision", "allocation", "transfer", "metrics",
        }
        assert all(value >= 0.0 for value in sim.phase_seconds.values())
        assert sum(sim.phase_seconds.values()) > 0.0

    def test_unprofiled_run_keeps_phase_seconds_empty(self):
        sim = VecSimulation(whitewash_config(), [bt_like()], seed=1)
        sim.run()
        assert sim.phase_seconds == {}

    def test_profiling_does_not_perturb_results(self):
        config = whitewash_config()
        plain = VecSimulation(config, [bt_like()], seed=3).run()
        profiled = VecSimulation(config, [bt_like()], seed=3, profile=True).run()
        assert [r.downloaded for r in plain.records] == [
            r.downloaded for r in profiled.records
        ]
