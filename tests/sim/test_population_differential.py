"""Differential suite: variable-population engines vs fixed-population engine.

Two halves, mirroring the tentpole guarantee:

1. **Degenerate equivalence** — with no arrivals and departures in
   ``"replace"`` mode, the variable-population engines must reproduce the
   optimised fixed-population engine (and therefore the golden reference it
   is proven against) **bit-for-bit**, across every case of the
   golden-equivalence suite.  The comparison includes the full serialised
   result payload, so a single diverging random draw or float operation
   fails here.

2. **Pinned variable-count runs** — six genuinely variable configurations
   (growth, capped growth, flash arrivals, pure shrink, whitewashing, and
   a mixed-group encounter under growth) are pinned by the SHA-256 of
   their serialised result payloads.  Any intentional change to the
   variable engines' draw order or semantics must update these pins.

Every case runs on **both** variable-population engines — the reference
:class:`~repro.sim.population.PopulationSimulation` and the optimised
:class:`~repro.sim.population_fast.FastPopulationSimulation` — via the
``engine_cls`` fixture, so the optimised hot path is held to exactly the
same pins as the spec it replaces (see also
``tests/sim/test_population_fast_differential.py`` for the hypothesis
differential between the two).
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.runner.jobs import result_to_payload
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.engine import Simulation, simulate
from repro.sim.population import PopulationSimulation
from repro.sim.population_fast import FastPopulationSimulation

from tests.sim.test_engine_equivalence import VARIANTS, assert_identical_results

#: Both variable-population engines, held to identical behaviour.
POPULATION_ENGINES = {
    "reference": PopulationSimulation,
    "fast": FastPopulationSimulation,
}


@pytest.fixture(params=sorted(POPULATION_ENGINES))
def engine_cls(request):
    """The variable-population engine class under test."""
    return POPULATION_ENGINES[request.param]


def as_variable_twin(config: SimulationConfig) -> SimulationConfig:
    """The variable-population twin of a fixed-population config.

    ``churn_rate`` becomes a replacement-mode :class:`DepartureProcess` at
    the same rate with no arrivals — the degenerate bundle the variable
    engine must execute exactly like the legacy churn model.
    """
    return config.with_(
        churn_rate=0.0,
        population=PopulationDynamics(
            departure=DepartureProcess(rate=config.churn_rate, mode="replace")
        ),
    )


def assert_bit_identical(variable_result, fixed_result):
    """Results must match on every output, including the cache payload."""
    assert_identical_results(variable_result, fixed_result)
    assert variable_result.active_counts is None
    assert variable_result.total_arrivals == 0
    assert variable_result.total_departures == 0
    # The serialised payloads are what the result cache stores; equal
    # payloads mean the two runs are indistinguishable byte-for-byte.
    assert result_to_payload(variable_result) == result_to_payload(fixed_result)


def run_both(engine_cls, config, behaviors, groups=None, seed=None):
    fixed = Simulation(config, behaviors, groups, seed=seed).run()
    variable = engine_cls(
        as_variable_twin(config), behaviors, groups, seed=seed
    ).run()
    return variable, fixed


# ---------------------------------------------------------------------- #
# half 1: the golden-equivalence cases, replayed differentially
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("seed", [0, 7])
def test_homogeneous_differential(engine_cls, variant, seed):
    config = SimulationConfig(n_peers=12, rounds=30)
    variable, fixed = run_both(engine_cls, config, [VARIANTS[variant]], seed=seed)
    assert_bit_identical(variable, fixed)


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_churn_as_replacement_differential(engine_cls, variant):
    """The crux: replacement-mode departures == legacy churn, draw for draw."""
    config = SimulationConfig(n_peers=10, rounds=25, churn_rate=0.05, warmup_rounds=5)
    variable, fixed = run_both(engine_cls, config, [VARIANTS[variant]], seed=11)
    assert_bit_identical(variable, fixed)


@pytest.mark.parametrize(
    "pair",
    [
        ("bittorrent", "sort_s"),
        ("birds", "none_freeride"),
        ("loyal_when_needed", "defect_propshare_adaptive"),
        ("random_ranking", "periodic_slow_propshare"),
        ("sort_s", "when_needed_no_partners"),
    ],
    ids=lambda pair: f"{pair[0]}-vs-{pair[1]}",
)
def test_encounter_differential(engine_cls, pair):
    config = SimulationConfig(n_peers=10, rounds=20, churn_rate=0.02)
    behaviors = [VARIANTS[pair[0]]] * 5 + [VARIANTS[pair[1]]] * 5
    groups = ["A"] * 5 + ["B"] * 5
    variable, fixed = run_both(engine_cls, config, behaviors, groups, seed=3)
    assert_bit_identical(variable, fixed)
    assert variable.group_mean_download("A") == fixed.group_mean_download("A")
    assert variable.group_mean_download("B") == fixed.group_mean_download("B")


def test_no_discovery_no_requests_differential(engine_cls):
    config = SimulationConfig(
        n_peers=8, rounds=20, requests_per_round=0, discovery_per_round=0
    )
    variable, fixed = run_both(engine_cls, config, [VARIANTS["bittorrent"]], seed=5)
    assert_bit_identical(variable, fixed)


def test_tight_stranger_cap_differential(engine_cls):
    config = SimulationConfig(
        n_peers=12, rounds=25, discovery_per_round=3, stranger_bandwidth_cap=0.2
    )
    variable, fixed = run_both(
        engine_cls, config, [VARIANTS["periodic_slow_propshare"]], seed=17
    )
    assert_bit_identical(variable, fixed)


@pytest.mark.parametrize("variant", ["bittorrent", "defect_propshare_adaptive"])
def test_two_round_history_differential(engine_cls, variant):
    config = SimulationConfig(n_peers=10, rounds=25, history_rounds=2, churn_rate=0.03)
    variable, fixed = run_both(engine_cls, config, [VARIANTS[variant]], seed=13)
    assert_bit_identical(variable, fixed)


@pytest.mark.parametrize("variant", ["bittorrent", "sort_s", "periodic_slow_propshare"])
def test_paper_scale_population_differential(engine_cls, variant):
    config = SimulationConfig(n_peers=50, rounds=12, churn_rate=0.01)
    variable, fixed = run_both(engine_cls, config, [VARIANTS[variant]], seed=23)
    assert_bit_identical(variable, fixed)


def test_many_requests_and_discoveries_differential(engine_cls):
    config = SimulationConfig(
        n_peers=14, rounds=20, requests_per_round=4, discovery_per_round=5
    )
    variable, fixed = run_both(
        engine_cls, config, [VARIANTS["loyal_when_needed"]], seed=29
    )
    assert_bit_identical(variable, fixed)


def test_simulate_dispatches_by_population():
    """simulate() routes variable configs off the fixed engine (and back)."""
    fixed_config = SimulationConfig(n_peers=8, rounds=16)
    variable_config = fixed_config.with_(
        population=PopulationDynamics(
            arrival=ArrivalProcess(kind="poisson", rate=0.4),
            departure=DepartureProcess(rate=0.02),
        )
    )
    with pytest.raises(ValueError):
        Simulation(variable_config, [VARIANTS["bittorrent"]], seed=1)
    fixed = simulate(fixed_config, [VARIANTS["bittorrent"]], seed=1)
    variable = simulate(variable_config, [VARIANTS["bittorrent"]], seed=1)
    assert fixed.active_counts is None
    assert variable.active_counts is not None
    assert len(variable.active_counts) == variable_config.rounds


# ---------------------------------------------------------------------- #
# half 2: variable-count runs pinned by result fingerprint
# ---------------------------------------------------------------------- #
def _payload_digest(result) -> str:
    blob = json.dumps(result_to_payload(result), sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def _variable_case(name):
    """``name -> (config, behaviors, groups, seed)`` for the pinned runs."""
    bittorrent = VARIANTS["bittorrent"]
    if name == "poisson-growth":
        config = SimulationConfig(
            n_peers=10,
            rounds=30,
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="poisson", rate=0.5),
                departure=DepartureProcess(rate=0.02),
            ),
        )
        return config, [bittorrent], None, 3
    if name == "capped-growth":
        config = SimulationConfig(
            n_peers=10,
            rounds=30,
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="poisson", rate=1.0),
                departure=DepartureProcess(rate=0.01),
                max_active=15,
            ),
        )
        return config, [bittorrent], None, 7
    if name == "flash-arrivals":
        config = SimulationConfig(
            n_peers=8,
            rounds=24,
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="flash", start=8, count=6, duration=3),
            ),
        )
        return config, [VARIANTS["sort_s"]], None, 11
    if name == "pure-shrink":
        config = SimulationConfig(
            n_peers=14,
            rounds=30,
            population=PopulationDynamics(
                departure=DepartureProcess(rate=0.06, min_active=4),
            ),
        )
        return config, [VARIANTS["loyal_when_needed"]], None, 13
    if name == "whitewash":
        config = SimulationConfig(
            n_peers=12,
            rounds=30,
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="whitewash", rate=0.75),
                departure=DepartureProcess(rate=0.08),
            ),
        )
        return config, [bittorrent], None, 17
    if name == "encounter-growth":
        config = SimulationConfig(
            n_peers=10,
            rounds=25,
            warmup_rounds=5,
            population=PopulationDynamics(
                arrival=ArrivalProcess(kind="poisson", rate=0.4),
                departure=DepartureProcess(rate=0.03),
            ),
        )
        behaviors = [bittorrent] * 5 + [VARIANTS["defect_propshare_adaptive"]] * 5
        groups = ["A"] * 5 + ["B"] * 5
        return config, behaviors, groups, 19
    raise KeyError(name)


#: case -> sha256 prefix of the serialised result payload.  These pin the
#: variable engine's full draw order and accounting; update them only for
#: an intentional semantic change (which also invalidates cached results).
GOLDEN_VARIABLE = {
    "poisson-growth": "f705f2085eff3d2a",
    "capped-growth": "518bdce4d363112d",
    "flash-arrivals": "c87c7e443341931f",
    "pure-shrink": "a2b8c3cb35e56ade",
    "whitewash": "2a30499526c5a058",
    "encounter-growth": "ef55537079d1b1f1",
}


@pytest.mark.parametrize("name", sorted(GOLDEN_VARIABLE))
def test_variable_run_pinned_by_fingerprint(engine_cls, name):
    config, behaviors, groups, seed = _variable_case(name)
    result = engine_cls(config, behaviors, groups, seed=seed).run()
    assert _payload_digest(result).startswith(GOLDEN_VARIABLE[name])
    # Re-running must reproduce the digest (determinism backs the pin).
    again = engine_cls(config, behaviors, groups, seed=seed).run()
    assert _payload_digest(again) == _payload_digest(result)


@pytest.mark.parametrize("name", sorted(GOLDEN_VARIABLE))
def test_variable_run_population_accounting(engine_cls, name):
    """Structural invariants of every pinned variable case."""
    config, behaviors, groups, seed = _variable_case(name)
    result = engine_cls(config, behaviors, groups, seed=seed).run()
    population = config.population
    assert result.active_counts is not None
    assert len(result.active_counts) == config.rounds
    assert all(count >= 2 for count in result.active_counts)
    if population.max_active:
        assert all(count <= population.max_active for count in result.active_counts)
    # Identities: every record is unique, initial + arrivals accounted.
    ids = [record.peer_id for record in result.records]
    assert len(ids) == len(set(ids))
    assert len(result.records) == config.n_peers + result.total_arrivals
    departed = [r for r in result.records if r.departed_round is not None]
    assert len(departed) == result.total_departures
    # The end-of-run bookkeeping must agree with the timeline.
    assert result.final_active_count == len(result.records) - len(departed)
