"""Tests for the churn process."""

from __future__ import annotations

import random

import pytest

from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.churn import apply_churn
from repro.sim.peer import PeerState


def make_peers(count=5) -> list:
    return [
        PeerState(peer_id=i, upload_capacity=100.0, behavior=PeerBehavior())
        for i in range(count)
    ]


class TestApplyChurn:
    def test_zero_rate_no_churn(self):
        peers = make_peers()
        churned = apply_churn(peers, 0.0, 1, random.Random(0), ConstantBandwidth(50.0))
        assert churned == []

    def test_full_state_reset_for_churned_peer(self):
        peers = make_peers(3)
        peers[0].history.record(0, 1, 5.0)
        peers[0].loyalty[1] = 2
        # Rate close to 1 so everyone churns.
        churned = apply_churn(peers, 0.99, 5, random.Random(1), ConstantBandwidth(50.0))
        assert 0 in churned
        assert len(peers[0].history) == 0
        assert peers[0].loyalty == {}
        assert peers[0].joined_round == 5

    def test_survivors_forget_churned_identities(self):
        peers = make_peers(2)
        peers[1].history.record(0, 0, 5.0)
        peers[1].loyalty[0] = 3
        peers[1].pending_requests.add(0)
        rng = random.Random(2)
        # Force only peer 0 to churn by repeatedly trying seeds until exactly
        # peer 0 churned; with rate 0.5 and two peers this happens quickly.
        for seed in range(100):
            peers = make_peers(2)
            peers[1].history.record(0, 0, 5.0)
            peers[1].loyalty[0] = 3
            peers[1].pending_requests.add(0)
            churned = apply_churn(
                peers, 0.5, 1, random.Random(seed), ConstantBandwidth(50.0)
            )
            if churned == [0]:
                break
        assert churned == [0]
        assert peers[1].history.all_known_peers() == set()
        assert 0 not in peers[1].loyalty
        assert 0 not in peers[1].pending_requests

    def test_capacity_resampled_when_requested(self):
        peers = make_peers(4)
        apply_churn(peers, 0.99, 1, random.Random(3), ConstantBandwidth(7.0),
                    resample_capacity=True)
        assert any(p.upload_capacity == 7.0 for p in peers)

    def test_capacity_kept_when_not_resampling(self):
        peers = make_peers(4)
        apply_churn(peers, 0.99, 1, random.Random(3), ConstantBandwidth(7.0),
                    resample_capacity=False)
        assert all(p.upload_capacity == 100.0 for p in peers)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            apply_churn(make_peers(), 1.0, 0, random.Random(0), ConstantBandwidth(1.0))

    def test_rate_statistics(self):
        total = 0
        for seed in range(30):
            peers = make_peers(10)
            total += len(
                apply_churn(peers, 0.2, 0, random.Random(seed), ConstantBandwidth(1.0))
            )
        # Expected churn count is 30 * 10 * 0.2 = 60; allow generous slack.
        assert 30 <= total <= 95


class TestTrueDepartures:
    def test_zero_rate_makes_no_draws(self):
        from repro.sim.churn import apply_true_departures

        peers = make_peers(5)
        rng = random.Random(0)
        state_before = rng.getstate()
        assert apply_true_departures(peers, 0.0, 1, rng) == []
        assert rng.getstate() == state_before
        assert len(peers) == 5

    def test_departed_are_removed_and_forgotten(self):
        from repro.sim.churn import apply_true_departures

        peers = make_peers(6)
        for peer in peers:
            peer.history.record(0, 99, 1.0)
            for other in peers:
                if other.peer_id != peer.peer_id:
                    peer.history.record(0, other.peer_id, 2.0)
                    peer.loyalty[other.peer_id] = 1
                    peer.pending_requests.add(other.peer_id)
        departed = apply_true_departures(peers, 0.9, 3, random.Random(1))
        assert departed
        departed_ids = {p.peer_id for p in departed}
        assert all(p.departed_round == 3 for p in departed)
        assert len(peers) == 6 - len(departed)
        for survivor in peers:
            assert survivor.departed_round is None
            known = survivor.history.all_known_peers()
            assert not (known & departed_ids)
            assert not (set(survivor.loyalty) & departed_ids)
            assert not (survivor.pending_requests & departed_ids)
            # Unrelated records survive the forget sweep.
            assert 99 in known

    def test_min_active_floor_suppresses_departures(self):
        from repro.sim.churn import apply_true_departures

        peers = make_peers(5)
        # A near-certain rate would otherwise empty the swarm.
        departed = apply_true_departures(
            peers, 0.99, 0, random.Random(2), min_active=4
        )
        assert len(departed) <= 1
        assert len(peers) >= 4

    def test_invalid_rate_rejected(self):
        from repro.sim.churn import apply_true_departures

        with pytest.raises(ValueError):
            apply_true_departures(make_peers(), 1.0, 0, random.Random(0))


class TestPoissonGuard:
    def test_overflow_prone_rates_rejected(self):
        from repro.sim.churn import MAX_POISSON_RATE, sample_poisson

        with pytest.raises(ValueError):
            sample_poisson(random.Random(0), MAX_POISSON_RATE + 1)
        with pytest.raises(ValueError):
            sample_poisson(random.Random(0), -0.5)
        # The boundary itself still samples unbiased.
        assert sample_poisson(random.Random(0), MAX_POISSON_RATE) >= 0

    def test_arrival_process_rejects_overflow_prone_rates(self):
        from repro.sim.dynamics import ArrivalProcess

        with pytest.raises(ValueError):
            ArrivalProcess(kind="poisson", rate=800.0)
