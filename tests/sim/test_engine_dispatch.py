"""Engine-dispatch regressions: env-var validation and the vec route.

``test_population_fast_differential.py`` covers the fast/reference dispatch
pairs; this module adds the parts the three-engine architecture introduced:

* an unknown ``REPRO_SIM_ENGINE`` value must raise a clear error at
  resolution time instead of silently falling back to ``fast`` (the
  original dispatch tests only exercised unknown *argument* values);
* ``engine="vec"`` routes **every** config — fixed-slot, scenario-dynamics
  and variable-population — onto
  :class:`~repro.sim.population_vec.VecSimulation`;
* the engine choice stays out of job fingerprints with ``vec`` in the
  choice set (vec results are statistically interchangeable with the
  replica engines', so cached entries must be shared, not split).
"""

from __future__ import annotations

import pytest

from repro.runner.jobs import SimulationJob, result_to_payload
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.engine import (
    ENGINE_CHOICES,
    ENV_ENGINE,
    default_engine,
    population_engine_class,
    set_default_engine,
    simulate,
)
from repro.sim.population_vec import VecSimulation

BEHAVIOR = PeerBehavior()

FIXED_CONFIG = SimulationConfig(n_peers=8, rounds=12)

VARIABLE_CONFIG = SimulationConfig(
    n_peers=8,
    rounds=16,
    population=PopulationDynamics(
        arrival=ArrivalProcess(kind="poisson", rate=0.4),
        departure=DepartureProcess(rate=0.03),
    ),
)


@pytest.fixture
def pristine_engine():
    """Reset the process-wide default engine around a test."""
    set_default_engine(None)
    yield
    set_default_engine(None)


class TestUnknownEnvEngine:
    def test_unknown_env_value_raises_instead_of_falling_back(
        self, pristine_engine, monkeypatch
    ):
        monkeypatch.setenv(ENV_ENGINE, "warp")
        with pytest.raises(ValueError, match="unknown engine 'warp'"):
            default_engine()

    def test_unknown_env_value_fails_simulate(self, pristine_engine, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "warp")
        with pytest.raises(ValueError, match="unknown engine"):
            simulate(FIXED_CONFIG, [BEHAVIOR], seed=0)

    def test_error_names_the_valid_choices(self, pristine_engine, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "warp")
        with pytest.raises(ValueError, match="fast.*reference.*vec"):
            default_engine()

    def test_explicit_default_shadows_bad_env(self, pristine_engine, monkeypatch):
        """set_default_engine wins before the env value is even inspected."""
        monkeypatch.setenv(ENV_ENGINE, "warp")
        set_default_engine("fast")
        assert default_engine() == "fast"


class TestVecDispatch:
    def test_population_engine_class_maps_vec(self):
        assert population_engine_class("vec") is VecSimulation

    def test_env_variable_selects_vec(self, pristine_engine, monkeypatch):
        monkeypatch.setenv(ENV_ENGINE, "vec")
        assert default_engine() == "vec"
        assert population_engine_class() is VecSimulation

    def test_vec_argument_routes_variable_config(self):
        via_simulate = simulate(VARIABLE_CONFIG, [BEHAVIOR], seed=2, engine="vec")
        direct = VecSimulation(VARIABLE_CONFIG, [BEHAVIOR], seed=2).run()
        assert result_to_payload(via_simulate) == result_to_payload(direct)

    def test_vec_argument_routes_fixed_config(self):
        via_simulate = simulate(FIXED_CONFIG, [BEHAVIOR], seed=5, engine="vec")
        direct = VecSimulation(FIXED_CONFIG, [BEHAVIOR], seed=5).run()
        assert result_to_payload(via_simulate) == result_to_payload(direct)

    def test_vec_is_total_over_scenario_dynamics(self):
        """The whole scenario registry must be runnable on the vec engine."""
        from repro.scenarios import get_scenario

        job = get_scenario("flash-crowd").compile(scale="smoke", seed=3)
        assert job.config.dynamics is not None
        groups = list(job.groups) if job.groups is not None else None
        result = simulate(
            job.config, list(job.behaviors), groups, seed=3, engine="vec"
        )
        assert result.rounds_executed == job.config.rounds

    def test_vec_in_engine_choices(self):
        assert "vec" in ENGINE_CHOICES

    def test_fingerprint_is_engine_independent_with_vec(self):
        """Engine choice must never split the result cache."""
        job = SimulationJob(
            config=VARIABLE_CONFIG, behaviors=(BEHAVIOR,), seed=9
        )
        fingerprint = job.fingerprint()
        assert "engine" not in job.payload()["config"]
        simulate(VARIABLE_CONFIG, [BEHAVIOR], seed=9, engine="vec")
        assert job.fingerprint() == fingerprint


class TestUsingEngine:
    def test_scopes_default_and_env(self, pristine_engine):
        import os

        from repro.sim.engine import using_engine

        os.environ.pop(ENV_ENGINE, None)
        with using_engine("vec"):
            assert default_engine() == "vec"
            # Worker processes inherit the choice through the environment.
            assert os.environ[ENV_ENGINE] == "vec"
        assert default_engine() == "fast"
        assert ENV_ENGINE not in os.environ

    def test_restores_previous_selection(self, pristine_engine, monkeypatch):
        from repro.sim.engine import using_engine

        monkeypatch.setenv(ENV_ENGINE, "reference")
        set_default_engine("reference")
        with using_engine("vec"):
            assert default_engine() == "vec"
        assert default_engine() == "reference"
        import os

        assert os.environ[ENV_ENGINE] == "reference"

    def test_none_is_a_no_op(self, pristine_engine):
        from repro.sim.engine import using_engine

        set_default_engine("reference")
        with using_engine(None):
            assert default_engine() == "reference"
        assert default_engine() == "reference"

    def test_restores_on_exception(self, pristine_engine):
        from repro.sim.engine import using_engine

        with pytest.raises(RuntimeError):
            with using_engine("vec"):
                raise RuntimeError("boom")
        assert default_engine() == "fast"

    def test_unknown_engine_rejected_before_entry(self, pristine_engine):
        from repro.sim.engine import using_engine

        with pytest.raises(ValueError, match="unknown engine"):
            with using_engine("warp"):
                pass  # pragma: no cover
        assert default_engine() == "fast"
