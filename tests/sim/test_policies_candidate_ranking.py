"""Tests for candidate-list construction and ranking functions."""

from __future__ import annotations

import random

import pytest

from repro.sim.behavior import PeerBehavior
from repro.sim.peer import PeerState
from repro.sim.policies.candidate import candidate_list
from repro.sim.policies.ranking import rank_candidates


def make_peer(ranking="fastest", candidate_policy="tft", **kwargs) -> PeerState:
    behavior = PeerBehavior(
        ranking=ranking, candidate_policy=candidate_policy, **kwargs
    )
    return PeerState(peer_id=0, upload_capacity=100.0, behavior=behavior)


class TestCandidateList:
    def test_tft_only_last_round(self):
        peer = make_peer(candidate_policy="tft")
        peer.history.record(1, 5, 1.0)
        peer.history.record(2, 6, 1.0)
        assert candidate_list(peer, current_round=3) == {6}

    def test_tf2t_two_rounds(self):
        peer = make_peer(candidate_policy="tf2t")
        peer.history.record(1, 5, 1.0)
        peer.history.record(2, 6, 1.0)
        assert candidate_list(peer, current_round=3) == {5, 6}

    def test_zero_amount_interactions_are_candidates(self):
        peer = make_peer()
        peer.history.record(2, 9, 0.0)
        assert candidate_list(peer, current_round=3) == {9}

    def test_self_excluded(self):
        peer = make_peer()
        peer.history.record(2, 0, 1.0)
        assert candidate_list(peer, current_round=3) == set()

    def test_empty_history_gives_empty_candidates(self):
        assert candidate_list(make_peer(), current_round=5) == set()


class TestRankingFunctions:
    def _peer_with_rates(self, ranking, rates):
        """Build a peer that observed the given {candidate: amount} last round."""
        peer = make_peer(ranking=ranking)
        for candidate, amount in rates.items():
            peer.history.record(4, candidate, amount)
        return peer

    def test_empty_candidates(self, rng):
        assert rank_candidates(make_peer(), [], 5, rng) == []

    def test_fastest_orders_descending(self, rng):
        peer = self._peer_with_rates("fastest", {1: 10.0, 2: 50.0, 3: 30.0})
        assert rank_candidates(peer, [1, 2, 3], 5, rng) == [2, 3, 1]

    def test_slowest_orders_ascending(self, rng):
        peer = self._peer_with_rates("slowest", {1: 10.0, 2: 50.0, 3: 30.0})
        assert rank_candidates(peer, [1, 2, 3], 5, rng) == [1, 3, 2]

    def test_slowest_prefers_zero_givers(self, rng):
        peer = self._peer_with_rates("slowest", {1: 10.0, 2: 0.0})
        assert rank_candidates(peer, [1, 2], 5, rng)[0] == 2

    def test_proximity_prefers_own_rate(self, rng):
        # Own per-slot rate: 100 / (4 + 1) = 20.
        peer = self._peer_with_rates("proximity", {1: 19.0, 2: 100.0, 3: 2.0})
        assert rank_candidates(peer, [1, 2, 3], 5, rng)[0] == 1

    def test_adaptive_uses_aspiration(self, rng):
        peer = self._peer_with_rates("adaptive", {1: 5.0, 2: 60.0})
        peer.aspiration = 58.0
        assert rank_candidates(peer, [1, 2], 5, rng)[0] == 2

    def test_loyal_prefers_long_cooperation(self, rng):
        peer = self._peer_with_rates("loyal", {1: 100.0, 2: 1.0})
        peer.loyalty[1] = 1
        peer.loyalty[2] = 7
        assert rank_candidates(peer, [1, 2], 5, rng)[0] == 2

    def test_loyal_tiebreak_by_rate(self, rng):
        peer = self._peer_with_rates("loyal", {1: 5.0, 2: 50.0})
        peer.loyalty[1] = 3
        peer.loyalty[2] = 3
        assert rank_candidates(peer, [1, 2], 5, rng)[0] == 2

    def test_random_is_permutation(self, rng):
        peer = self._peer_with_rates("random", {1: 1.0, 2: 2.0, 3: 3.0})
        ranked = rank_candidates(peer, [1, 2, 3], 5, rng)
        assert sorted(ranked) == [1, 2, 3]

    def test_random_order_varies_with_seed(self):
        peer = self._peer_with_rates("random", {i: float(i) for i in range(1, 8)})
        orders = {
            tuple(rank_candidates(peer, list(range(1, 8)), 5, random.Random(seed)))
            for seed in range(10)
        }
        assert len(orders) > 1

    def test_deterministic_given_same_rng_state(self):
        peer = self._peer_with_rates("fastest", {1: 1.0, 2: 2.0, 3: 3.0})
        a = rank_candidates(peer, [1, 2, 3], 5, random.Random(3))
        b = rank_candidates(peer, [1, 2, 3], 5, random.Random(3))
        assert a == b
