"""Tests for the PRA-sweep-based drivers (Figures 2-8 and Table 3).

These tests derive every figure from the shared smoke-scale study fixture, so
they check structure and internal consistency rather than the paper's
absolute numbers (which require the paper-scale sweep; see EXPERIMENTS.md).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table3,
)
from repro.experiments import base
from repro.experiments.pra_study import build_study, shared_pra_study


class TestSharedStudy:
    def test_includes_named_protocols(self, smoke_study):
        names = {p.name for p in smoke_study.protocols if p.name}
        assert {"BitTorrent", "Birds", "Loyal-When-needed", "Sort-S"} <= names

    def test_sample_size_matches_scale(self, smoke_study):
        assert len(smoke_study) == base.pra_sample_size("smoke")

    def test_repeated_call_uses_memo(self, smoke_study):
        again = shared_pra_study(scale="smoke", seed=0)
        assert again is smoke_study

    def test_build_study_fingerprint_stable(self):
        assert build_study("smoke", seed=0).fingerprint == build_study("smoke", seed=0).fingerprint


class TestFigure2:
    def test_points_match_study(self, smoke_study):
        result = figure2.from_study(smoke_study)
        assert result.n_protocols == len(smoke_study)
        assert len(result.points) == len(smoke_study)

    def test_histograms_normalised(self, smoke_study):
        result = figure2.from_study(smoke_study)
        assert sum(result.performance_hist) == pytest.approx(1.0)
        assert sum(result.robustness_hist) == pytest.approx(1.0)

    def test_freerider_max_performance_below_best(self, smoke_study):
        result = figure2.from_study(smoke_study)
        assert result.freerider_max_performance < 1.0

    def test_render(self, smoke_study):
        text = figure2.render(figure2.from_study(smoke_study))
        assert "Figure 2" in text and "freerider" in text


class TestFigures3And4:
    def test_matrix_shape(self, smoke_study):
        result = figure3.from_study(smoke_study)
        assert len(result.matrix) == 10
        assert len(result.matrix[0]) == 10  # k = 0..9

    def test_rows_are_frequencies(self, smoke_study):
        result = figure3.from_study(smoke_study)
        for row in result.matrix:
            assert sum(row) == pytest.approx(1.0) or sum(row) == 0.0

    def test_measures_differ_between_figures(self, smoke_study):
        assert figure3.from_study(smoke_study).measure == "performance"
        assert figure4.from_study(smoke_study).measure == "robustness"

    def test_top_partner_summary_valid(self, smoke_study):
        result = figure4.from_study(smoke_study)
        assert 0 <= result.mean_partners_top <= 9
        assert len(result.top_protocol_partner_counts) <= 15

    def test_render(self, smoke_study):
        assert "number of partners" in figure3.render(figure3.from_study(smoke_study))


class TestFigure5:
    def test_groups_cover_stranger_policies(self, smoke_study):
        result = figure5.from_study(smoke_study)
        assert {"B1", "B2", "B3"} <= set(result.curves)

    def test_ccdf_values_monotone_decreasing(self, smoke_study):
        result = figure5.from_study(smoke_study)
        for curve in result.curves.values():
            probs = curve["ccdf"]
            assert all(b <= a + 1e-12 for a, b in zip(probs, probs[1:]))

    def test_group_sizes_sum_to_study(self, smoke_study):
        result = figure5.from_study(smoke_study)
        assert sum(result.group_sizes.values()) == len(smoke_study)

    def test_render(self, smoke_study):
        assert "stranger policy" in figure5.render(figure5.from_study(smoke_study))


class TestFigures6And7:
    def test_allocation_groups(self, smoke_study):
        result = figure6.from_study(smoke_study)
        assert set(result.points) == {"R1", "R2", "R3"}

    def test_ranking_groups(self, smoke_study):
        result = figure7.from_study(smoke_study)
        assert set(result.points) <= {"I1", "I2", "I3", "I4", "I5", "I6"}

    def test_group_statistics_consistent(self, smoke_study):
        result = figure6.from_study(smoke_study)
        for code, points in result.points.items():
            assert result.group_maxima[code] >= result.group_means[code]

    def test_render(self, smoke_study):
        assert "Figure 6" in figure6.render(figure6.from_study(smoke_study))
        assert "Figure 7" in figure7.render(figure7.from_study(smoke_study))


class TestFigure8:
    def test_pearson_in_range_or_nan(self, smoke_study):
        result = figure8.from_study(smoke_study)
        assert (-1.0 <= result.pearson_r <= 1.0) or math.isnan(result.pearson_r)

    def test_points_match_study(self, smoke_study):
        result = figure8.from_study(smoke_study)
        assert len(result.points) == len(smoke_study)

    def test_render(self, smoke_study):
        assert "Pearson" in figure8.render(figure8.from_study(smoke_study))


class TestTable3:
    def test_three_fits(self, smoke_study):
        result = table3.from_study(smoke_study)
        assert set(result.fits) == {"performance", "robustness", "aggressiveness"}

    def test_adjusted_r_squared_finite(self, smoke_study):
        result = table3.from_study(smoke_study)
        for value in result.adjusted_r_squared().values():
            assert math.isfinite(value)

    def test_freeride_hurts_performance(self, smoke_study):
        result = table3.from_study(smoke_study)
        assert result.coefficient("performance", "R3") < 0

    def test_terms_include_numeric_covariates(self, smoke_study):
        result = table3.from_study(smoke_study)
        names = result.fits["performance"].term_names
        assert "log(k)" in names and "log(h)" in names

    def test_render(self, smoke_study):
        text = table3.render(table3.from_study(smoke_study))
        assert "adj. R²" in text and "log(k)" in text
