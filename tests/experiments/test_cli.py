"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main
from repro.runner import get_default_runner, set_default_runner
from repro.runner.runner import ENV_CACHE_DIR, ENV_JOBS


@pytest.fixture
def pristine_runner():
    """Reset the process-wide default runner around a CLI invocation."""
    set_default_runner(None)
    yield
    set_default_runner(None)


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
            "figure7", "figure8", "figure9", "figure10", "table2", "table3",
            "section2", "split-check", "churn-check", "scenarios", "atlas",
            "cross-substrate",
        }
        assert expected == set(EXPERIMENTS)


class TestCliRun:
    def test_run_unscaled_experiment(self, capsys):
        assert main(["run", "figure1"]) == 0
        assert "BitTorrent Dilemma" in capsys.readouterr().out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "BarterCast" in capsys.readouterr().out

    def test_run_scaled_experiment_smoke(self, capsys):
        assert main(["run", "figure8", "--scale", "smoke"]) == 0
        assert "Pearson" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure2", "--scale", "enormous"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_verbose_flag(self, capsys):
        assert main(["-v", "run", "table2"]) == 0


class TestCliScenario:
    def test_list_shows_registry(self, capsys):
        from repro.scenarios import scenario_names

        assert main(["scenario", "--list"]) == 0
        output = capsys.readouterr().out
        assert len(scenario_names()) >= 6
        for name in scenario_names():
            assert name in output

    def test_bare_scenario_command_lists(self, capsys):
        assert main(["scenario"]) == 0
        assert "flash-crowd" in capsys.readouterr().out

    def test_run_named_scenario_smoke(self, capsys):
        assert main(["scenario", "flash-crowd", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "flash-crowd" in output
        assert "throughput" in output

    def test_second_invocation_served_from_cache(self, tmp_path, capsys, pristine_runner):
        argv = [
            "scenario", "flash-crowd", "--scale", "smoke",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        set_default_runner(None)
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # Deterministic table, and every job answered by the cache.
        assert warm.splitlines()[:-1] == cold.splitlines()[:-1]
        assert "0 misses (0 simulated)" in warm

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "does-not-exist", "--scale", "smoke"])

    def test_bad_reps_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "baseline", "--scale", "smoke", "--reps", "0"])


class TestCliAtlas:
    ARGS = [
        "atlas", "--scale", "smoke",
        "--protocol-axes", "ranking=I1,I5",
        "--scenarios", "baseline,colluding-whitewash",
        "--reps", "1",
    ]

    def test_atlas_prints_ranking_and_heatmaps(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "robustness ranking" in output
        assert "protocol x workload heat map" in output
        assert "per-group PRA heat map" in output
        assert "colluding-whitewash:colluder" in output
        # The paper codes resolved onto the swept protocols.
        assert "I1" in output and "I5" in output

    def test_atlas_output_is_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_atlas_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "atlas.csv"
        assert main(self.ARGS + ["--csv", str(target)]) == 0
        lines = target.read_text().splitlines()
        assert lines[0].startswith("protocol,scenario,group,cohort")
        assert len(lines) > 1

    def test_atlas_served_from_cache_on_rerun(self, tmp_path, capsys, pristine_runner):
        argv = self.ARGS + ["--jobs", "1", "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        set_default_runner(None)
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert ", 0 simulated" in warm
        # Identical report either way.
        assert [l for l in warm.splitlines() if not l.startswith("grid:")] == [
            l for l in cold.splitlines() if not l.startswith("grid:")
        ]

    def test_atlas_rejects_bad_axes_and_scenarios(self):
        with pytest.raises(SystemExit):
            main(["atlas", "--protocol-axes", "warp=9"])
        with pytest.raises(SystemExit):
            main(["atlas", "--scenarios", "no-such-scenario", "--scale", "smoke"])
        with pytest.raises(SystemExit):
            main(["atlas", "--reps", "0", "--scale", "smoke"])
        # Grid validation errors surface as CLI errors, not tracebacks.
        with pytest.raises(SystemExit):
            main(
                ["atlas", "--scenarios", "baseline,baseline",
                 "--protocol-axes", "ranking=I1", "--scale", "smoke"]
            )


class TestCliRunnerConfiguration:
    def test_env_only_configuration_is_honoured(
        self, tmp_path, capsys, monkeypatch, pristine_runner
    ):
        """REPRO_JOBS/REPRO_CACHE_DIR alone must configure the runner (no flags)."""
        from repro.runner.executors import SerialExecutor

        monkeypatch.setenv(ENV_JOBS, "1")
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path))
        assert main(["scenario", "baseline", "--scale", "smoke"]) == 0
        runner = get_default_runner()
        assert runner.cache is not None
        assert str(runner.cache.root) == str(tmp_path)
        assert isinstance(runner.executor, SerialExecutor)
        # The run went through the env-configured cache.
        assert runner.jobs_executed > 0
        assert "cache:" in capsys.readouterr().out

    def test_env_jobs_selects_parallel_executor(
        self, monkeypatch, capsys, pristine_runner
    ):
        from repro.runner.executors import ProcessExecutor

        monkeypatch.setenv(ENV_JOBS, "2")
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert main(["scenario", "baseline", "--scale", "smoke"]) == 0
        runner = get_default_runner()
        assert isinstance(runner.executor, ProcessExecutor)
        assert runner.executor.processes == 2

    def test_flag_overrides_env(self, monkeypatch, capsys, pristine_runner):
        from repro.runner.executors import SerialExecutor

        monkeypatch.setenv(ENV_JOBS, "4")
        assert main(["scenario", "baseline", "--scale", "smoke", "--jobs", "1"]) == 0
        assert isinstance(get_default_runner().executor, SerialExecutor)

    def test_invalid_env_jobs_is_a_cli_error(self, monkeypatch, pristine_runner):
        monkeypatch.setenv(ENV_JOBS, "many")
        with pytest.raises(SystemExit):
            main(["scenario", "baseline", "--scale", "smoke"])


class TestCliEngineAndProfile:
    @pytest.fixture(autouse=True)
    def pristine_engine(self):
        """Reset the process-wide engine selection around each test.

        The ``--engine`` flag intentionally exports ``REPRO_SIM_ENGINE``
        (worker processes inherit it), so the environment must be popped
        explicitly — monkeypatch records nothing for a var that was absent
        before the test set it.
        """
        import os

        from repro.sim.engine import ENV_ENGINE, set_default_engine

        os.environ.pop(ENV_ENGINE, None)
        set_default_engine(None)
        yield
        set_default_engine(None)
        os.environ.pop(ENV_ENGINE, None)

    def test_engine_flag_sets_default_and_env(self, capsys):
        import os

        from repro.sim.engine import ENV_ENGINE, default_engine

        assert main(
            ["scenario", "whitewash-churn", "--scale", "smoke",
             "--engine", "reference"]
        ) == 0
        assert default_engine() == "reference"
        assert os.environ[ENV_ENGINE] == "reference"

    def test_engines_render_identical_scenario_output(self, capsys):
        assert main(["scenario", "whitewash-churn", "--scale", "smoke"]) == 0
        fast_output = capsys.readouterr().out
        assert main(
            ["scenario", "whitewash-churn", "--scale", "smoke",
             "--engine", "reference"]
        ) == 0
        reference_output = capsys.readouterr().out
        assert fast_output == reference_output

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "whitewash-churn", "--engine", "warp"])

    def test_invalid_env_engine_is_a_cli_error(self, monkeypatch):
        from repro.sim.engine import ENV_ENGINE

        monkeypatch.setenv(ENV_ENGINE, "warp")
        with pytest.raises(SystemExit):
            main(["scenario", "whitewash-churn", "--scale", "smoke"])

    def test_reference_engine_covers_dynamics_scenarios(self, capsys):
        """A reference-engine run of a ScenarioDynamics scenario completes."""
        assert main(["scenario", "flash-crowd", "--scale", "smoke"]) == 0
        fast_output = capsys.readouterr().out
        assert main(
            ["scenario", "flash-crowd", "--scale", "smoke",
             "--engine", "reference"]
        ) == 0
        assert capsys.readouterr().out == fast_output

    def test_profile_prints_phase_timings(self, capsys):
        assert main(
            ["scenario", "whitewash-churn", "--scale", "smoke", "--profile"]
        ) == 0
        output = capsys.readouterr().out
        assert "engine fast" in output
        # The fast engines record the legacy "population" phase; reports
        # render it under the canonical name "churn".
        for phase in ("churn", "decision", "transfer", "ms/round"):
            assert phase in output

    def test_profile_honours_engine_override(self, capsys):
        assert main(
            ["scenario", "growing-swarm", "--scale", "smoke",
             "--engine", "reference", "--profile"]
        ) == 0
        assert "engine reference" in capsys.readouterr().out

    def test_profile_covers_fixed_population_scenarios(self, capsys):
        assert main(
            ["scenario", "flash-crowd", "--scale", "smoke", "--profile"]
        ) == 0
        output = capsys.readouterr().out
        assert "(fixed)" in output
        assert "[fused decision+transfer]" in output
        for phase in ("churn", "decision", "transfer", "ms/round"):
            assert phase in output

    def test_fixed_profile_rejects_reference_engine(self):
        with pytest.raises(SystemExit):
            main(
                ["scenario", "flash-crowd", "--scale", "smoke",
                 "--engine", "reference", "--profile"]
            )


class TestCliSwarmSubstrate:
    def test_scenario_runs_on_swarm_substrate(self, capsys):
        assert main(
            ["scenario", "burst-churn", "--scale", "smoke",
             "--substrate", "swarm"]
        ) == 0
        output = capsys.readouterr().out
        assert "burst-churn" in output
        assert "censored" in output

    def test_swarm_scenario_served_from_cache(self, tmp_path, capsys, pristine_runner):
        argv = [
            "scenario", "baseline", "--scale", "smoke", "--substrate", "swarm",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        set_default_runner(None)
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm.splitlines()[:-1] == cold.splitlines()[:-1]
        assert "0 misses (0 simulated)" in warm

    def test_profile_rejected_on_swarm_substrate(self):
        with pytest.raises(SystemExit):
            main(
                ["scenario", "baseline", "--scale", "smoke",
                 "--substrate", "swarm", "--profile"]
            )

    def test_unknown_substrate_rejected(self):
        with pytest.raises(SystemExit):
            main(["scenario", "baseline", "--substrate", "packets"])

    def test_atlas_runs_on_swarm_substrate(self, capsys):
        assert main(
            ["atlas", "--scale", "smoke", "--substrate", "swarm",
             "--protocol-axes", "ranking=I1,I5",
             "--scenarios", "baseline,colluding-whitewash", "--reps", "1"]
        ) == 0
        output = capsys.readouterr().out
        assert "swarm robustness atlas" in output
        assert "I1" in output and "I5" in output

    def test_atlas_swarm_csv(self, tmp_path, capsys):
        target = tmp_path / "swarm_atlas.csv"
        assert main(
            ["atlas", "--scale", "smoke", "--substrate", "swarm",
             "--protocol-axes", "ranking=I1,I5",
             "--scenarios", "baseline,colluding-whitewash", "--reps", "1",
             "--csv", str(target)]
        ) == 0
        lines = target.read_text().splitlines()
        assert lines[0] == "scenario,protocol,censored_mean_time,relative_score"
        assert len(lines) == 5

    def test_cross_substrate_experiment_runs(self, capsys):
        assert main(
            ["run", "cross-substrate", "--scale", "smoke"]
        ) == 0
        output = capsys.readouterr().out
        assert "Spearman" in output


class TestCliService:
    def test_serve_stop_writes_sentinel(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(["serve", "--root", str(root), "--stop"]) == 0
        assert "stop requested" in capsys.readouterr().out
        assert (root / "stop").exists()

    def test_serve_with_max_idle_drains_and_exits(self, tmp_path, capsys):
        root = tmp_path / "svc"
        assert main(
            ["serve", "--root", str(root), "--workers", "1",
             "--max-idle", "0.2", "--stats-interval", "0.05"]
        ) == 0
        output = capsys.readouterr().out
        assert "serving 1 workers" in output
        assert "serve: queue=" in output
        assert "shutting down" in output

    def test_submit_micro_grid_through_ephemeral_workers(self, tmp_path, capsys):
        root = tmp_path / "svc"
        argv = [
            "submit", "--root", str(root),
            "--protocol-axes", "ranking=I1,I5",
            "--scenarios", "baseline,colluders",
            "--scale", "smoke", "--workers", "2", "--timeout", "180",
        ]
        assert main(argv) == 0
        output = capsys.readouterr().out
        assert "submitting 4 cells x 2 reps" in output
        assert "cell 4/4 complete" in output
        assert "robustness atlas" in output
        assert "8 simulated" in output

        # Warm re-submit: every cell streams straight from the store.
        target = tmp_path / "atlas.csv"
        assert main(argv + ["--csv", str(target)]) == 0
        output = capsys.readouterr().out
        assert "cell 4/4 complete" in output
        assert "0 simulated" in output
        assert "8 cached" in output
        lines = target.read_text().splitlines()
        assert lines[0].startswith("protocol,scenario")

    def test_service_commands_reject_bad_input(self, tmp_path):
        root = str(tmp_path / "svc")
        with pytest.raises(SystemExit):
            main(["serve", "--root", root, "--workers", "0"])
        with pytest.raises(SystemExit):
            main(["submit", "--root", root, "--reps", "0"])
        with pytest.raises(SystemExit):
            main(["submit", "--root", root, "--scenarios", " ,"])
        with pytest.raises(SystemExit):
            main(["submit", "--root", root, "--protocol-axes", "nonsense"])
        with pytest.raises(SystemExit):
            main(["submit", "--root", root, "--scenarios", "no-such-scenario"])
