"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestCliList:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_registry_covers_all_paper_artifacts(self):
        expected = {
            "figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
            "figure7", "figure8", "figure9", "figure10", "table2", "table3",
            "section2", "split-check", "churn-check",
        }
        assert expected == set(EXPERIMENTS)


class TestCliRun:
    def test_run_unscaled_experiment(self, capsys):
        assert main(["run", "figure1"]) == 0
        assert "BitTorrent Dilemma" in capsys.readouterr().out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        assert "BarterCast" in capsys.readouterr().out

    def test_run_scaled_experiment_smoke(self, capsys):
        assert main(["run", "figure8", "--scale", "smoke"]) == 0
        assert "Pearson" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "figure2", "--scale", "enormous"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_verbose_flag(self, capsys):
        assert main(["-v", "run", "table2"]) == 0
