"""Shared fixtures for experiment-driver tests.

All experiment tests run at ``smoke`` scale and share one PRA sweep through
the study memo, so the whole directory costs seconds rather than minutes.
"""

from __future__ import annotations

import pytest

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study


@pytest.fixture(scope="session")
def smoke_study() -> PRAStudyResult:
    """The shared smoke-scale PRA sweep used by Figures 2-8 and Table 3."""
    return shared_pra_study(scale="smoke", seed=0)
