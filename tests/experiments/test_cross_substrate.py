"""Tests for the cross-substrate rank-correlation experiment."""

from __future__ import annotations

import csv
import io
import math

import pytest

from repro.experiments import cross_substrate
from repro.runner import ExperimentRunner, using_runner

NAMES = ["baseline", "colluders"]


@pytest.fixture(scope="module")
def result():
    return cross_substrate.run(
        scale="smoke", seed=0, scenarios=NAMES, repetitions=1
    )


class TestCrossSubstrateRun:
    def test_scores_cover_the_grid_on_both_substrates(self, result):
        cells = {
            (scenario, protocol)
            for scenario in NAMES
            for protocol in cross_substrate.PROTOCOL_RANKINGS
        }
        assert set(result.rounds_scores) == cells
        assert set(result.swarm_scores) == cells
        # One rounds job and one swarm job per cell at one repetition.
        assert result.jobs_run == 2 * len(cells)

    def test_correlations_are_valid_spearman_values(self, result):
        assert set(result.correlations) == set(NAMES)
        for value in result.correlations.values():
            assert math.isnan(value) or -1.0 <= value <= 1.0
        if not any(math.isnan(v) for v in result.correlations.values()):
            assert -1.0 <= result.mean_correlation <= 1.0

    def test_orderings_rank_all_protocols_best_first(self, result):
        for scenario in NAMES:
            for substrate in ("rounds", "swarm"):
                ordering = result.ordering(scenario, substrate)
                assert sorted(ordering) == sorted(
                    cross_substrate.PROTOCOL_RANKINGS
                )
                scores = (
                    result.rounds_scores
                    if substrate == "rounds"
                    else result.swarm_scores
                )
                values = [scores[(scenario, p)] for p in ordering]
                assert values == sorted(values, reverse=True)

    def test_run_is_deterministic(self, result):
        again = cross_substrate.run(
            scale="smoke", seed=0, scenarios=NAMES, repetitions=1
        )
        assert again.rounds_scores == result.rounds_scores
        assert again.swarm_scores == result.swarm_scores

    def test_csv_is_long_form_and_parseable(self, result):
        rows = list(csv.DictReader(io.StringIO(result.csv())))
        assert len(rows) == len(NAMES) * len(cross_substrate.PROTOCOL_RANKINGS)
        for row in rows:
            assert row["scenario"] in NAMES
            float(row["rounds_score"])
            float(row["swarm_score"])

    def test_render_tabulates_correlations(self, result):
        text = cross_substrate.render(result)
        for scenario in NAMES:
            assert scenario in text
        assert "Spearman" in text

    def test_both_substrates_share_one_cache(self, tmp_path):
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            cold = cross_substrate.run(
                scale="smoke", seed=0, scenarios=["baseline"], repetitions=1
            )
            assert runner.jobs_executed == cold.jobs_run
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            warm = cross_substrate.run(
                scale="smoke", seed=0, scenarios=["baseline"], repetitions=1
            )
            assert runner.cache_hits == warm.jobs_run
            assert runner.jobs_executed == 0
        assert warm.rounds_scores == cold.rounds_scores
        assert warm.swarm_scores == cold.swarm_scores

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ValueError):
            cross_substrate.run(scale="smoke", scenarios=NAMES, repetitions=0)
