"""Tests for the split/churn checks and the swarm figures (9 and 10)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import base, churn_check, figure9, figure10, robustness_split_check
from repro.bittorrent.variants import loyal_when_needed_client, reference_bittorrent


class TestBaseScaling:
    def test_scales_validated(self):
        with pytest.raises(ValueError):
            base.check_scale("huge")

    def test_pra_config_scales_ordered(self):
        assert base.pra_config("smoke").sim.n_peers <= base.pra_config("bench").sim.n_peers
        assert base.pra_config("bench").sim.n_peers <= base.pra_config("paper").sim.n_peers

    def test_paper_scale_covers_full_space(self):
        assert base.pra_sample_size("paper") == 3270

    def test_named_protocols_count(self):
        assert len(base.named_protocols()) == 5

    def test_mix_fractions_include_extremes(self):
        for scale in ("smoke", "bench", "paper"):
            fractions = base.mix_fractions(scale)
            assert fractions[0] == 0.0 and fractions[-1] == 1.0

    def test_swarm_runs_ordered(self):
        assert base.swarm_runs("smoke") <= base.swarm_runs("bench") <= base.swarm_runs("paper")


class TestSplitCheck:
    def test_structure_and_correlation(self):
        result = robustness_split_check.run(scale="smoke", seed=0, sample_size=6)
        assert result.n_protocols == 6
        assert set(result.robustness_50) == set(result.robustness_90)
        assert (-1.0 <= result.pearson_r <= 1.0) or math.isnan(result.pearson_r)

    def test_render(self):
        result = robustness_split_check.run(scale="smoke", seed=0, sample_size=6)
        assert "90/10" in robustness_split_check.render(result)


class TestChurnCheck:
    def test_structure(self):
        result = churn_check.run(scale="smoke", seed=0, sample_size=6, top_count=3)
        assert set(result.performance) == {0.0, 0.01, 0.1}
        for rate, scores in result.performance.items():
            assert len(scores) == 6
            assert max(scores.values()) == pytest.approx(1.0)
        assert set(result.correlation_with_baseline) == {0.01, 0.1}

    def test_top_partner_means_in_range(self):
        result = churn_check.run(scale="smoke", seed=0, sample_size=6, top_count=3)
        for value in result.top_partner_means.values():
            assert 0.0 <= value <= 9.0

    def test_render(self):
        result = churn_check.run(scale="smoke", seed=0, sample_size=6, top_count=3)
        assert "churn" in churn_check.render(result)


class TestFigure9:
    def test_single_panel_structure(self):
        panel = figure9.run_panel(
            loyal_when_needed_client(), reference_bittorrent(), "a", scale="smoke", seed=0
        )
        fractions = [p.fraction for p in panel.points]
        assert fractions == base.mix_fractions("smoke")
        # At fraction 0 the sweep variant is absent; at 1 the opponent is absent.
        assert panel.points[0].mean_time["Loyal-When-needed"] is None
        assert panel.points[-1].mean_time["BitTorrent"] is None
        # At an interior mix both variants report a positive mean download time.
        interior = panel.points[1]
        assert interior.mean_time["Loyal-When-needed"] > 0
        assert interior.mean_time["BitTorrent"] > 0

    def test_full_run_has_three_panels(self):
        result = figure9.run(scale="smoke", seed=0)
        assert set(result.panels) == {"a", "b", "c"}
        assert result.panels["b"].sweep_variant == "Birds"

    def test_render(self):
        result = figure9.run(scale="smoke", seed=0)
        text = figure9.render(result)
        assert "Figure 9(a)" in text and "Figure 9(c)" in text


class TestFigure10:
    def test_all_variants_summarised(self):
        result = figure10.run(scale="smoke", seed=0)
        assert set(result.summaries) == set(figure10.VARIANT_ORDER)
        for name in figure10.VARIANT_ORDER:
            assert result.completion[name] == pytest.approx(1.0)
            assert result.mean_download_time(name) > 0

    def test_ordering_sorted_by_time(self):
        result = figure10.run(scale="smoke", seed=0)
        ordering = result.ordering()
        times = [result.mean_download_time(v) for v in ordering]
        assert times == sorted(times)

    def test_render(self):
        text = figure10.render(figure10.run(scale="smoke", seed=0))
        assert "Figure 10" in text and "Sort-S" in text
