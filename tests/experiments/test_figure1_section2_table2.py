"""Tests for the Figure 1, Section 2 analytic, and Table 2 drivers."""

from __future__ import annotations

import pytest

from repro.experiments import figure1, section2_analytic, table2


class TestFigure1Driver:
    def test_dominance_structure_matches_paper(self):
        result = figure1.run()
        assert result.dominance["bittorrent_dilemma"] == {"fast": "D", "slow": "C"}
        assert result.dominance["birds"] == {"fast": "D", "slow": "D"}

    def test_equilibria_reported(self):
        result = figure1.run()
        assert ("D", "C") in result.equilibria["bittorrent_dilemma"]
        assert ("D", "D") in result.equilibria["birds"]

    def test_custom_speeds(self):
        result = figure1.run(fast_speed=200.0, slow_speed=10.0)
        assert result.bittorrent_dilemma.payoffs("C", "C")[0] == pytest.approx(-190.0)

    def test_render_mentions_both_games(self):
        text = figure1.render(figure1.run())
        assert "BitTorrent Dilemma" in text
        assert "Birds" in text
        assert "dominant strategies" in text


class TestSection2Driver:
    def test_nash_verdicts(self):
        result = section2_analytic.run()
        assert result.bittorrent_is_nash is False
        assert result.birds_is_nash is True

    def test_homogeneous_rows_cover_all_classes(self):
        result = section2_analytic.run()
        assert {row["class"] for row in result.homogeneous_rows} == {"slow", "medium", "fast"}

    def test_deviation_rows_signs(self):
        result = section2_analytic.run()
        by_resident = {row["resident"]: row for row in result.deviation_rows}
        assert by_resident["BitTorrent"]["advantage"] > 0
        assert by_resident["Birds"]["advantage"] < 0

    def test_render_contains_tables(self):
        text = section2_analytic.render(section2_analytic.run())
        assert "Expected game wins" in text
        assert "Nash equilibrium" in text


class TestTable2Driver:
    def test_six_rows(self):
        result = table2.run()
        assert len(result.rows) == 6
        assert result.headers[0] == "Protocol"

    def test_render(self):
        text = table2.render(table2.run())
        assert "BarterCast" in text
        assert "Maze" in text
