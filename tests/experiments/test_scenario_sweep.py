"""Tests for the scenario sweep experiment driver."""

from __future__ import annotations

import pytest

from repro.experiments import scenario_sweep
from repro.runner import ExperimentRunner, using_runner
from repro.scenarios import scenario_names


class TestScenarioSweep:
    def test_smoke_sweep_covers_registry(self):
        result = scenario_sweep.run(scale="smoke", seed=0)
        assert [s.name for s in result.stats] == scenario_names()
        reps = scenario_sweep.repetitions_for("smoke")
        assert result.jobs_run == len(scenario_names()) * reps
        for stats in result.stats:
            assert stats.repetitions == reps
            assert stats.mean_throughput > 0.0
            # Under churn, utilization is computed against the end-of-run
            # capacity snapshot and can legitimately exceed 1.
            assert stats.mean_utilization > 0.0
            assert stats.group_mean_download

    def test_subset_and_repetitions(self):
        result = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["flash-crowd"], repetitions=3
        )
        assert len(result.stats) == 1
        assert result.stats[0].repetitions == 3
        assert result.jobs_run == 3

    def test_sweep_is_deterministic(self):
        first = scenario_sweep.run(scale="smoke", seed=1, scenarios=["colluders"])
        second = scenario_sweep.run(scale="smoke", seed=1, scenarios=["colluders"])
        assert first.stats[0].mean_throughput == second.stats[0].mean_throughput
        assert (
            first.stats[0].group_mean_download == second.stats[0].group_mean_download
        )

    def test_adversarial_groups_visible_in_results(self):
        result = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["free-rider-wave", "capacity-skew"]
        )
        by_name = result.by_name()
        assert "freerider" in by_name["free-rider-wave"].group_mean_download
        assert {"seed", "mid", "leecher"} <= set(
            by_name["capacity-skew"].group_mean_download
        )

    def test_second_sweep_served_from_cache(self, tmp_path):
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            cold = scenario_sweep.run(scale="smoke", seed=0)
            assert runner.jobs_executed == cold.jobs_run
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            warm = scenario_sweep.run(scale="smoke", seed=0)
            # The acceptance bar is >= 95% served from cache; a fully warm
            # cache answers everything.
            assert runner.cache_hits == warm.jobs_run
            assert runner.jobs_executed == 0
        for cold_stats, warm_stats in zip(cold.stats, warm.stats):
            assert cold_stats.mean_throughput == warm_stats.mean_throughput

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            scenario_sweep.run(scale="smoke", scenarios=["nope"])

    def test_render_mentions_every_scenario(self):
        result = scenario_sweep.run(scale="smoke", seed=0)
        text = scenario_sweep.render(result)
        for name in scenario_names():
            assert name in text


class TestVariablePopulationSweep:
    """The variable-population scenarios flowing through the sweep driver."""

    VARIABLE = ["growing-swarm", "whitewash-churn"]

    def test_variable_scenarios_sweep_and_report_population(self):
        result = scenario_sweep.run(scale="smoke", seed=0, scenarios=self.VARIABLE)
        by_name = result.by_name()
        for name in self.VARIABLE:
            stats = by_name[name]
            assert stats.is_variable_population
            assert stats.mean_final_population > 0.0
            assert stats.cohort_download_per_round
            assert "initial" in stats.cohort_download_per_round
        # The growing swarm must actually have grown on average.
        grown = by_name["growing-swarm"]
        assert grown.mean_final_population > grown.n_peers
        assert "arrival" in grown.cohort_download_per_round
        assert "whitewash" in by_name["whitewash-churn"].cohort_download_per_round

    def test_fixed_scenarios_report_trivial_population(self):
        result = scenario_sweep.run(scale="smoke", seed=0, scenarios=["baseline"])
        stats = result.stats[0]
        assert not stats.is_variable_population
        assert stats.mean_final_population == float(stats.n_peers)
        assert set(stats.cohort_download_per_round) == {"initial"}

    def test_variable_sweep_is_deterministic(self):
        first = scenario_sweep.run(scale="smoke", seed=2, scenarios=self.VARIABLE)
        second = scenario_sweep.run(scale="smoke", seed=2, scenarios=self.VARIABLE)
        for a, b in zip(first.stats, second.stats):
            assert a.mean_throughput == b.mean_throughput
            assert a.mean_final_population == b.mean_final_population
            assert a.cohort_download_per_round == b.cohort_download_per_round

    def test_variable_sweep_served_from_cache(self, tmp_path):
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            cold = scenario_sweep.run(scale="smoke", seed=0, scenarios=self.VARIABLE)
            assert runner.jobs_executed == cold.jobs_run
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            warm = scenario_sweep.run(scale="smoke", seed=0, scenarios=self.VARIABLE)
            assert runner.cache_hits == warm.jobs_run
            assert runner.jobs_executed == 0
        for cold_stats, warm_stats in zip(cold.stats, warm.stats):
            assert cold_stats.mean_throughput == warm_stats.mean_throughput
            assert (
                cold_stats.cohort_download_per_round
                == warm_stats.cohort_download_per_round
            )
            assert (
                cold_stats.mean_final_population == warm_stats.mean_final_population
            )

    def test_render_shows_population_change(self):
        result = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["growing-swarm"]
        )
        text = scenario_sweep.render(result)
        stats = result.stats[0]
        assert f"{stats.n_peers}->" in text
        assert "cohort" in text


class TestEngineScopedSweep:
    @pytest.fixture(autouse=True)
    def pristine_engine(self):
        import os

        from repro.sim.engine import ENV_ENGINE, set_default_engine

        os.environ.pop(ENV_ENGINE, None)
        set_default_engine(None)
        yield
        set_default_engine(None)
        os.environ.pop(ENV_ENGINE, None)

    def test_engine_parameter_scopes_the_run(self):
        from repro.sim.engine import default_engine

        result = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["baseline"], engine="reference"
        )
        assert result.stats[0].mean_throughput > 0.0
        # The override must not leak past the sweep.
        assert default_engine() == "fast"

    def test_replica_engines_agree_through_the_sweep(self):
        fast = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["colluders"], engine="fast"
        )
        reference = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["colluders"], engine="reference"
        )
        assert (
            fast.stats[0].mean_throughput == reference.stats[0].mean_throughput
        )

    def test_vec_engine_runs_the_sweep(self):
        result = scenario_sweep.run(
            scale="smoke", seed=0, scenarios=["growing-swarm"], engine="vec"
        )
        assert result.stats[0].mean_throughput > 0.0


class TestSwarmSweep:
    def test_swarm_sweep_covers_registry(self):
        result = scenario_sweep.run_swarm(scale="smoke", seed=0)
        assert [s.name for s in result.stats] == scenario_names()
        reps = scenario_sweep.repetitions_for("smoke")
        assert result.jobs_run == len(scenario_names()) * reps
        for stats in result.stats:
            assert stats.repetitions == reps
            assert 0.0 <= stats.mean_completion <= 1.0
            assert 0.0 < stats.censored_mean_time <= stats.ticks
            assert stats.group_completion

    def test_swarm_sweep_is_deterministic(self):
        first = scenario_sweep.run_swarm(
            scale="smoke", seed=1, scenarios=["burst-churn"]
        )
        second = scenario_sweep.run_swarm(
            scale="smoke", seed=1, scenarios=["burst-churn"]
        )
        assert (
            first.stats[0].censored_mean_time == second.stats[0].censored_mean_time
        )
        assert first.stats[0].group_completion == second.stats[0].group_completion

    def test_churn_scenarios_report_dynamics(self):
        result = scenario_sweep.run_swarm(
            scale="smoke", seed=0, scenarios=["burst-churn", "growing-swarm"]
        )
        by_name = result.by_name()
        assert by_name["burst-churn"].mean_departures > 0.0
        assert by_name["growing-swarm"].mean_arrivals > 0.0

    def test_capacity_classes_surface_in_breakdown(self):
        result = scenario_sweep.run_swarm(
            scale="smoke", seed=0, scenarios=["capacity-skew"]
        )
        assert {"seed", "mid", "leecher"} <= set(
            result.stats[0].class_completion
        )

    def test_swarm_sweep_served_from_cache(self, tmp_path):
        names = ["baseline", "whitewash-churn"]
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            cold = scenario_sweep.run_swarm(scale="smoke", seed=0, scenarios=names)
            assert runner.jobs_executed == cold.jobs_run
        with using_runner(ExperimentRunner(cache_dir=tmp_path)) as runner:
            warm = scenario_sweep.run_swarm(scale="smoke", seed=0, scenarios=names)
            assert runner.cache_hits == warm.jobs_run
            assert runner.jobs_executed == 0
        for cold_stats, warm_stats in zip(cold.stats, warm.stats):
            assert cold_stats.censored_mean_time == warm_stats.censored_mean_time
            assert cold_stats.group_completion == warm_stats.group_completion

    def test_render_swarm_tabulates_every_scenario(self):
        result = scenario_sweep.run_swarm(
            scale="smoke", seed=0, scenarios=["colluding-whitewash"]
        )
        text = scenario_sweep.render_swarm(result)
        assert "colluding-whitewash" in text
        assert "colluder" in text
