"""Tests for scenario specifications: round-trips, compilation, determinism."""

from __future__ import annotations

import pytest

from repro.scenarios.spec import (
    ArrivalSpec,
    BandwidthClass,
    PopulationSpec,
    ScenarioSpec,
    ShiftSpec,
)
from repro.sim.bandwidth import MultiClassBandwidth
from repro.sim.behavior import PeerBehavior


def full_spec() -> ScenarioSpec:
    """A scenario exercising every spec feature at once."""
    return ScenarioSpec(
        name="everything",
        description="all features on",
        population=PopulationSpec(
            size=40,
            default_behavior=PeerBehavior(),
            classes=(
                BandwidthClass(
                    name="seed", fraction=0.25, capacity=500.0,
                    behavior=PeerBehavior.generous_seed(), group="seeders",
                ),
                BandwidthClass(name="leecher", fraction=0.75, capacity=25.0),
            ),
        ),
        arrival=ArrivalSpec(
            kind="flash_crowd", churn_rate=0.02, at=0.25, size=0.5, duration=2
        ),
        shift=ShiftSpec(kind="colluders", at=0.5, fraction=0.25),
        rounds=100,
    )


class TestSerialization:
    def test_full_spec_round_trips(self):
        spec = full_spec()
        clone = ScenarioSpec.from_dict(spec.as_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_round_trip_survives_json(self):
        import json

        spec = full_spec()
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert clone == spec

    def test_fingerprint_sensitive_to_every_axis(self):
        spec = full_spec()
        variants = [
            ScenarioSpec.from_dict({**spec.as_dict(), "rounds": 120}),
            ScenarioSpec.from_dict({**spec.as_dict(), "name": "other"}),
            ScenarioSpec.from_dict(
                {**spec.as_dict(), "shift": ShiftSpec(kind="none").as_dict()}
            ),
            ScenarioSpec.from_dict(
                {**spec.as_dict(), "arrival": ArrivalSpec(kind="steady").as_dict()}
            ),
        ]
        fingerprints = {spec.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(fingerprints) == 5


class TestValidation:
    def test_population_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            PopulationSpec(
                size=10,
                classes=(
                    BandwidthClass(name="a", fraction=0.5, capacity=10.0),
                    BandwidthClass(name="b", fraction=0.3, capacity=20.0),
                ),
            )

    def test_population_class_names_distinct(self):
        with pytest.raises(ValueError):
            PopulationSpec(
                size=10,
                classes=(
                    BandwidthClass(name="a", fraction=0.5, capacity=10.0),
                    BandwidthClass(name="a", fraction=0.5, capacity=20.0),
                ),
            )

    def test_arrival_kind_checked(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="tsunami")
        with pytest.raises(ValueError):
            ArrivalSpec(kind="flash_crowd", size=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(kind="burst_churn", size=0.2, period=0.0)

    def test_shift_kind_checked(self):
        with pytest.raises(ValueError):
            ShiftSpec(kind="mutiny")
        with pytest.raises(ValueError):
            ShiftSpec(kind="free_rider_wave", fraction=0.0)
        with pytest.raises(ValueError):
            ShiftSpec(kind="custom", fraction=0.5)  # custom needs a behavior
        with pytest.raises(ValueError):
            ShiftSpec(kind="none", fraction=0.5)

    def test_scenario_needs_name_and_rounds(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", rounds=4)


class TestPopulationCompilation:
    def test_exact_largest_remainder_shares(self):
        population = full_spec().population
        behaviors, groups, capacities, distribution = population.compile(40)
        assert len(behaviors) == len(groups) == len(capacities) == 40
        assert groups.count("seeders") == 10
        assert groups.count("leecher") == 30
        assert capacities.count(500.0) == 10
        assert capacities.count(25.0) == 30
        assert isinstance(distribution, MultiClassBandwidth)

    def test_class_behavior_and_default(self):
        behaviors, _groups, _caps, _dist = full_spec().population.compile(40)
        assert behaviors[0] == PeerBehavior.generous_seed()
        assert behaviors[-1] == PeerBehavior()

    def test_homogeneous_population(self):
        behaviors, groups, capacities, distribution = PopulationSpec(size=6).compile(6)
        assert behaviors == (PeerBehavior(),) * 6
        assert groups == ("default",) * 6
        assert capacities is None and distribution is None


class TestArrivalCompilation:
    def test_steady(self):
        rate, waves = ArrivalSpec(kind="steady", churn_rate=0.03).compile(100)
        assert rate == 0.03 and waves == ()

    def test_flash_crowd_single_correlated_wave(self):
        rate, waves = ArrivalSpec(
            kind="flash_crowd", churn_rate=0.01, at=0.3, size=0.4, duration=2
        ).compile(100)
        assert rate == 0.01
        assert len(waves) == 1
        wave = waves[0]
        assert wave.start == 30 and wave.rounds == 2
        assert wave.correlated and wave.intensity == 0.4

    def test_burst_churn_repeats_until_end(self):
        _rate, waves = ArrivalSpec(
            kind="burst_churn", at=0.2, size=0.15, duration=3, period=0.2
        ).compile(100)
        assert [w.start for w in waves] == [20, 40, 60, 80]
        assert all(not w.correlated for w in waves)
        assert all(w.intensity == 0.15 for w in waves)

    def test_waves_clamped_to_run(self):
        _rate, waves = ArrivalSpec(
            kind="flash_crowd", at=0.99, size=0.5, duration=10
        ).compile(20)
        wave = waves[0]
        assert wave.start + wave.rounds <= 20


class TestShiftCompilation:
    def test_spread_ids_are_distinct_and_sorted(self):
        (shift,) = ShiftSpec(kind="free_rider_wave", at=0.5, fraction=0.3).compile(20, 100)
        assert len(set(shift.peer_ids)) == len(shift.peer_ids) == 6
        assert list(shift.peer_ids) == sorted(shift.peer_ids)
        assert max(shift.peer_ids) < 20
        assert shift.round == 50
        assert shift.behavior == PeerBehavior.free_rider()
        assert shift.group == "freerider"

    def test_colluders_default_behavior(self):
        (shift,) = ShiftSpec(kind="colluders", fraction=0.2).compile(10, 100)
        assert shift.behavior == PeerBehavior.colluder()
        assert shift.group == "colluder"

    def test_custom_behavior_and_group(self):
        custom = PeerBehavior(ranking="slowest")
        (shift,) = ShiftSpec(
            kind="custom", fraction=0.5, behavior=custom, group="rebels"
        ).compile(10, 100)
        assert shift.behavior == custom and shift.group == "rebels"

    def test_none_compiles_to_nothing(self):
        assert ShiftSpec(kind="none").compile(10, 100) == ()


class TestScenarioCompilation:
    def test_compile_is_deterministic(self):
        spec = full_spec()
        first = spec.compile("smoke", seed=42)
        second = spec.compile("smoke", seed=42)
        assert first.fingerprint() == second.fingerprint()

    def test_scales_change_size_not_structure(self):
        spec = full_spec()
        smoke = spec.compile("smoke", seed=0)
        paper = spec.compile("paper", seed=0)
        assert smoke.config.n_peers < paper.config.n_peers
        assert smoke.config.rounds < paper.config.rounds
        # Both carry the same kind of dynamics.
        assert smoke.config.dynamics is not None
        assert len(smoke.config.dynamics.churn_waves) == len(
            paper.config.dynamics.churn_waves
        )
        assert len(smoke.config.dynamics.behavior_shifts) == 1

    def test_at_scale_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            full_spec().at_scale("enormous")

    def test_job_seed_is_deterministic_and_spec_bound(self):
        spec = full_spec()
        assert spec.job_seed(0, 0) == spec.job_seed(0, 0)
        assert spec.job_seed(0, 0) != spec.job_seed(0, 1)
        assert spec.job_seed(0, 0) != spec.job_seed(1, 0)
        other = ScenarioSpec.from_dict({**spec.as_dict(), "name": "other"})
        assert spec.job_seed(0, 0) != other.job_seed(0, 0)

    def test_jobs_batch_unique_seeds(self):
        jobs = full_spec().jobs("smoke", master_seed=0, repetitions=4)
        seeds = {job.seed for job in jobs}
        assert len(seeds) == 4

    def test_compiled_job_executes(self):
        result = full_spec().compile("smoke", seed=1).execute()
        assert result.rounds_executed == result.config.rounds
        assert "colluder" in result.groups()


def variable_spec(kind: str = "poisson") -> ScenarioSpec:
    """A variable-population scenario of the given arrival kind."""
    if kind == "poisson":
        arrival = ArrivalSpec(
            kind="poisson", churn_rate=0.01, at=0.1, size=0.05, cap=2.0
        )
    else:
        arrival = ArrivalSpec(kind="whitewash", churn_rate=0.05, size=0.8)
    return ScenarioSpec(
        name=f"variable-{kind}",
        population=PopulationSpec(size=12),
        arrival=arrival,
        rounds=24,
    )


class TestVariableArrivalSpecs:
    @pytest.mark.parametrize("kind", ["poisson", "whitewash"])
    def test_round_trips(self, kind):
        spec = variable_spec(kind)
        clone = ScenarioSpec.from_dict(spec.as_dict())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()
        assert clone.arrival.is_variable

    def test_legacy_kinds_are_not_variable(self):
        assert not ArrivalSpec(kind="steady").is_variable
        assert not ArrivalSpec(kind="flash_crowd", size=0.4).is_variable

    def test_legacy_serialization_omits_cap(self):
        assert "cap" not in ArrivalSpec(kind="steady").as_dict()
        assert variable_spec("poisson").arrival.as_dict()["cap"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="poisson", size=0.0)  # needs a rate
        with pytest.raises(ValueError):
            ArrivalSpec(kind="whitewash", size=0.5)  # needs departures
        with pytest.raises(ValueError):
            ArrivalSpec(kind="steady", cap=2.0)  # cap is variable-only
        with pytest.raises(ValueError):
            ArrivalSpec(kind="poisson", size=0.05, cap=0.5)  # cap < 1x
        with pytest.raises(ValueError):  # shifts address fixed slots
            ScenarioSpec(
                name="bad",
                arrival=ArrivalSpec(kind="poisson", size=0.05),
                shift=ShiftSpec(kind="colluders", fraction=0.2),
                rounds=24,
            )
        with pytest.raises(ValueError):  # classes pin fixed capacities
            ScenarioSpec(
                name="bad",
                population=PopulationSpec(
                    size=10,
                    classes=(
                        BandwidthClass(name="a", fraction=0.5, capacity=10.0),
                        BandwidthClass(name="b", fraction=0.5, capacity=90.0),
                    ),
                ),
                arrival=ArrivalSpec(kind="poisson", size=0.05),
                rounds=24,
            )

    def test_compile_population_is_scale_free(self):
        spec = variable_spec("poisson")
        population = spec.arrival.compile_population(n_peers=12, rounds=24)
        assert population.arrival.kind == "poisson"
        assert population.arrival.rate == pytest.approx(0.05 * 12)
        assert population.arrival.start == round(0.1 * 24)
        assert population.departure.mode == "shrink"
        assert population.departure.rate == 0.01
        assert population.max_active == 24  # 2x the initial 12
        bigger = spec.arrival.compile_population(n_peers=24, rounds=48)
        assert bigger.arrival.rate == pytest.approx(0.05 * 24)
        assert bigger.max_active == 48

    def test_legacy_and_variable_compiles_are_exclusive(self):
        with pytest.raises(ValueError):
            variable_spec("poisson").arrival.compile(24)
        with pytest.raises(ValueError):
            ArrivalSpec(kind="steady").compile_population(10, 20)

    @pytest.mark.parametrize("kind", ["poisson", "whitewash"])
    def test_compiled_job_runs_on_the_variable_engine(self, kind):
        spec = variable_spec(kind)
        job = spec.compile("smoke", seed=spec.job_seed(0, 0))
        assert job.config.is_variable_population
        assert job.config.churn_rate == 0.0
        result = job.execute()
        assert result.active_counts is not None
        assert len(result.active_counts) == job.config.rounds


class TestBehaviorGroups:
    def _spec(self, fraction=0.2, size=20):
        from repro.scenarios.spec import BehaviorGroup

        return PopulationSpec(
            size=size,
            groups=(
                BehaviorGroup(
                    name="colluder",
                    fraction=fraction,
                    behavior=PeerBehavior.colluder(),
                ),
            ),
        )

    def test_compile_spreads_the_group_over_the_id_space(self):
        behaviors, labels, capacities, distribution = self._spec().compile(20)
        assert capacities is None and distribution is None
        clique = [i for i, label in enumerate(labels) if label == "colluder"]
        assert len(clique) == 4
        # Spread, not contiguous: members span the id range.
        assert clique[0] < 10 <= clique[-1]
        for pid in clique:
            assert behaviors[pid] == PeerBehavior.colluder()
        assert labels.count("default") == 16

    def test_every_declared_group_gets_at_least_one_member(self):
        from repro.scenarios.spec import BehaviorGroup

        spec = PopulationSpec(
            size=50,
            groups=(
                BehaviorGroup(
                    name="big", fraction=0.85, behavior=PeerBehavior.free_rider()
                ),
                BehaviorGroup(
                    name="clique", fraction=0.1, behavior=PeerBehavior.colluder()
                ),
            ),
        )
        # Scaled down to a smoke-size swarm the big group would previously
        # swallow every assignable id, compiling 'clique' to zero members
        # and silently disabling anything targeting it.
        _behaviors, labels, _caps, _dist = spec.compile(8)
        assert labels.count("clique") >= 1
        assert labels.count("big") >= 1
        assert labels.count("default") >= 1
        # An impossible fit fails loudly instead of dropping groups.
        with pytest.raises(ValueError):
            spec.compile(2)

    def test_groups_and_classes_are_mutually_exclusive(self):
        from repro.scenarios.spec import BehaviorGroup

        with pytest.raises(ValueError):
            PopulationSpec(
                size=20,
                classes=(BandwidthClass(name="c", fraction=1.0, capacity=10.0),),
                groups=(
                    BehaviorGroup(
                        name="g", fraction=0.2, behavior=PeerBehavior()
                    ),
                ),
            )

    def test_group_validation(self):
        from repro.scenarios.spec import BehaviorGroup

        with pytest.raises(ValueError):
            BehaviorGroup(name="", fraction=0.2, behavior=PeerBehavior())
        with pytest.raises(ValueError):
            BehaviorGroup(name="g", fraction=1.5, behavior=PeerBehavior())
        with pytest.raises(ValueError):
            PopulationSpec(
                size=20,
                groups=(
                    BehaviorGroup(
                        name="default", fraction=0.2, behavior=PeerBehavior()
                    ),
                ),
            )

    def test_round_trip_and_fingerprint_compat(self):
        import json

        spec = ScenarioSpec(
            name="grouped",
            population=self._spec(),
            arrival=ArrivalSpec(kind="whitewash", churn_rate=0.02, size=0.9),
        )
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
        assert clone == spec
        # A group-less population serialises exactly as before the groups
        # field existed, so historical fingerprints are unchanged.
        assert "groups" not in PopulationSpec(size=20).as_dict()


class TestTargetedWhitewashSpecs:
    def test_compile_population_maps_targeting_onto_dynamics(self):
        from repro.scenarios.spec import BehaviorGroup

        spec = ScenarioSpec(
            name="targeted",
            population=PopulationSpec(
                size=20,
                groups=(
                    BehaviorGroup(
                        name="clique", fraction=0.2, behavior=PeerBehavior.colluder()
                    ),
                ),
            ),
            arrival=ArrivalSpec(
                kind="whitewash", churn_rate=0.02, size=0.9,
                target_groups=("clique",), target_churn=0.06,
            ),
        )
        dynamics = spec.arrival.compile_population(20, 100)
        assert dynamics.arrival.whitewash_groups == ("clique",)
        assert dynamics.departure.group_rates == (("clique", 0.06),)

    def test_target_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(kind="poisson", size=0.05, target_groups=("g",))
        with pytest.raises(ValueError):
            ArrivalSpec(
                kind="whitewash", churn_rate=0.02, size=0.9, target_churn=0.1
            )
        with pytest.raises(ValueError):
            ArrivalSpec(
                kind="whitewash", churn_rate=0.5, size=0.9,
                target_groups=("g",), target_churn=0.5,
            )
        # Targets must name declared groups (or the implicit default).
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad-target",
                arrival=ArrivalSpec(
                    kind="whitewash", churn_rate=0.02, size=0.9,
                    target_groups=("ghost",),
                ),
            )

    def test_untargeted_arrival_serialises_as_before(self):
        data = ArrivalSpec(kind="whitewash", churn_rate=0.04, size=0.9).as_dict()
        assert "target_groups" not in data and "target_churn" not in data

    def test_with_default_behavior_keeps_the_workload(self):
        from repro.scenarios import get_scenario

        original = get_scenario("colluding-whitewash")
        injected = original.with_default_behavior(PeerBehavior.free_rider())
        assert injected.population.default_behavior == PeerBehavior.free_rider()
        assert injected.population.groups == original.population.groups
        assert injected.arrival == original.arrival
        assert injected.rounds == original.rounds
        assert injected.fingerprint() != original.fingerprint()
