"""Tests for the two-substrate scenario system.

Covers the substrate dispatch surface, the spec → swarm compilation
(:func:`compile_swarm`), the :class:`SwarmJob` identity/cache contract, and
the golden swarm-substrate pins: every registered scenario must either carry
a pinned smoke run on the swarm substrate or be explicitly marked
unsupported — mirroring the registry-coverage discipline of the round
engines' golden pins and the vec statistical envelope.
"""

from __future__ import annotations

import hashlib
import json
import pickle

import pytest

from repro.bittorrent.events import NetworkEvent
from repro.bittorrent.swarm import SwarmResult
from repro.runner.jobs import SimulationJob, result_from_payload, result_to_payload
from repro.runner.cache import ResultCache
from repro.scenarios import (
    SUBSTRATE_CHOICES,
    RoundsSubstrate,
    SwarmJob,
    SwarmSubstrate,
    compile_swarm,
    get_scenario,
    get_substrate,
    scenario_names,
)
from repro.scenarios.substrate import SWARM_KB_PER_ROUND

#: scenario -> (swarm job fingerprint prefix, result payload sha256 prefix)
#: at smoke scale, master seed 0, repetition 0.  These pin the whole swarm
#: chain: spec declaration, scaling, compilation to peer plans / arrival
#: models / tick-level events, the derived seed and the packet-level
#: execution of the dynamics.  An intentional change to any of those must
#: update these values (and invalidates cached swarm results).
GOLDEN_SWARM_SMOKE = {
    "baseline": ("a5abe916e2e93d19", "d8d585f4fac52825"),
    "burst-churn": ("af698ca48e633837", "7fd7aea522b2790f"),
    "capacity-skew": ("3be9154e66245c48", "a448429a12fe1f26"),
    "colluders": ("18dd990c0fa5033d", "7b54a3a520fc36f6"),
    "colluding-whitewash": ("f39b57e504c9a500", "287e1c6b034b1722"),
    "flash-crowd": ("053bdd24284302a3", "fe8dfecaf026d068"),
    "free-rider-wave": ("2bb2a4e45c733f87", "da725064727272ed"),
    "growing-swarm": ("b983946af8cd0ab7", "04e7a0189d577f4f"),
    "network-faults": ("42357e3300c4d989", "85a2994fdb5e22d7"),
    "whitewash-churn": ("8f19f89baec9a9f2", "39fa29c5df68d22f"),
}

#: Registered scenarios that deliberately do NOT compile to the swarm
#: substrate.  Empty today; a scenario added here must explain why in a
#: comment, and the coverage test below keeps the union exhaustive.
SWARM_UNSUPPORTED: set = set()


class TestSubstrateDispatch:
    def test_choices_and_lookup(self):
        assert SUBSTRATE_CHOICES == ("rounds", "swarm")
        assert isinstance(get_substrate("rounds"), RoundsSubstrate)
        assert isinstance(get_substrate("swarm"), SwarmSubstrate)

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError, match="unknown substrate"):
            get_substrate("packets")

    def test_rounds_substrate_compiles_simulation_jobs(self):
        spec = get_scenario("baseline")
        job = get_substrate("rounds").compile_job(spec, "smoke", seed=7)
        assert isinstance(job, SimulationJob)
        assert job.seed == 7

    def test_swarm_substrate_compiles_swarm_jobs(self):
        spec = get_scenario("baseline")
        job = get_substrate("swarm").compile_job(spec, "smoke", seed=7)
        assert isinstance(job, SwarmJob)
        assert job.seed == 7 and job.scale == "smoke"

    def test_jobs_share_seed_streams_across_substrates(self):
        # Paired comparisons rely on per-(scenario, repetition) seeds being
        # identical on both substrates.
        spec = get_scenario("baseline")
        rounds = get_substrate("rounds").jobs(spec, "smoke", master_seed=3, repetitions=4)
        swarm = get_substrate("swarm").jobs(spec, "smoke", master_seed=3, repetitions=4)
        assert [j.seed for j in rounds] == [j.seed for j in swarm]
        assert len({j.seed for j in rounds}) == 4

    def test_jobs_rejects_bad_repetitions(self):
        spec = get_scenario("baseline")
        with pytest.raises(ValueError):
            get_substrate("swarm").jobs(spec, "smoke", repetitions=0)


class TestCompileSwarm:
    def test_round_tick_alignment_and_volume(self):
        spec = get_scenario("baseline")
        scenario = compile_swarm(spec, "smoke")
        smoke = spec.at_scale("smoke")
        assert scenario.rounds == smoke.rounds
        assert scenario.base.max_ticks == smoke.rounds * scenario.base.rechoke_interval
        assert scenario.base.file_size_mb == pytest.approx(
            smoke.rounds * SWARM_KB_PER_ROUND / 1024.0
        )
        assert len(scenario.plans) == smoke.population.size

    def test_capacity_classes_pin_capacities(self):
        scenario = compile_swarm(get_scenario("capacity-skew"), "smoke")
        by_class = {}
        for plan in scenario.plans:
            by_class.setdefault(plan.capacity_class, set()).add(plan.capacity)
        assert set(by_class) == {"seed", "mid", "leecher"}
        assert by_class["seed"] == {800.0}
        assert by_class["leecher"] == {20.0}

    def test_free_rider_shift_compiles_with_slot_targets(self):
        spec = get_scenario("free-rider-wave")
        scenario = compile_swarm(spec, "smoke")
        assert len(scenario.shifts) == 1
        shift = scenario.shifts[0]
        assert shift.free_rider
        assert 0 < len(shift.slot_ids) <= len(scenario.plans)
        assert all(0 <= s < len(scenario.plans) for s in shift.slot_ids)

    def test_flash_crowd_compiles_to_correlated_wave(self):
        scenario = compile_swarm(get_scenario("flash-crowd"), "smoke")
        assert scenario.arrivals.kind == "replacement"
        assert any(w.correlated for w in scenario.waves)

    def test_poisson_arrival_model(self):
        scenario = compile_swarm(get_scenario("growing-swarm"), "smoke")
        model = scenario.arrivals
        assert model.kind == "poisson"
        assert model.arrival_rate > 0.0
        assert model.arrival_plan is not None
        assert model.max_active == 3 * len(scenario.plans)

    def test_whitewash_arrival_model_keeps_targets(self):
        scenario = compile_swarm(get_scenario("colluding-whitewash"), "smoke")
        model = scenario.arrivals
        assert model.kind == "whitewash"
        assert model.target_groups == ("colluder",)
        assert model.target_churn > 0.0
        assert 0.0 < model.rejoin_prob <= 1.0

    def test_network_events_convert_to_tick_windows(self):
        spec = get_scenario("network-faults")
        scenario = compile_swarm(spec, "smoke")
        smoke = spec.at_scale("smoke")
        assert len(scenario.events) == 2
        round_ticks = scenario.base.rechoke_interval
        for event, declared in zip(scenario.events, smoke.network):
            assert isinstance(event, NetworkEvent)
            assert event.kind == declared.kind
            assert event.start == declared.start_round(smoke.rounds) * round_ticks
            assert event.duration == declared.span_rounds(smoke.rounds) * round_ticks
            assert event.start + event.duration <= scenario.base.max_ticks


class TestSwarmJobIdentity:
    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            SwarmJob(spec=get_scenario("baseline"), scale="huge")

    def test_payload_carries_substrate_discriminator(self):
        job = SwarmJob(spec=get_scenario("baseline"), scale="smoke", seed=1)
        payload = job.payload()
        assert payload["substrate"] == "swarm"
        json.dumps(payload, sort_keys=True)  # JSON-stable

    def test_fingerprint_disjoint_from_rounds_substrate(self):
        spec = get_scenario("baseline")
        seed = spec.job_seed(0, 0)
        swarm = get_substrate("swarm").compile_job(spec, "smoke", seed=seed)
        rounds = get_substrate("rounds").compile_job(spec, "smoke", seed=seed)
        assert swarm.fingerprint() != rounds.fingerprint()

    def test_fingerprint_sensitive_to_spec_scale_and_seed(self):
        job = SwarmJob(spec=get_scenario("baseline"), scale="smoke", seed=1)
        assert job.fingerprint() != SwarmJob(
            spec=get_scenario("colluders"), scale="smoke", seed=1
        ).fingerprint()
        assert job.fingerprint() != SwarmJob(
            spec=get_scenario("baseline"), scale="bench", seed=1
        ).fingerprint()
        assert job.fingerprint() != SwarmJob(
            spec=get_scenario("baseline"), scale="smoke", seed=2
        ).fingerprint()

    def test_job_is_picklable(self):
        # Process executors ship jobs to workers by pickling them.
        job = SwarmJob(spec=get_scenario("colluding-whitewash"), scale="smoke", seed=5)
        clone = pickle.loads(pickle.dumps(job))
        assert clone == job
        assert clone.fingerprint() == job.fingerprint()

    def test_result_payload_round_trip(self):
        job = SwarmJob(spec=get_scenario("whitewash-churn"), scale="smoke", seed=3)
        result = job.execute()
        payload = json.loads(json.dumps(result_to_payload(result), sort_keys=True))
        assert payload["kind"] == "swarm"
        rebuilt = result_from_payload(payload, job.config)
        assert isinstance(rebuilt, SwarmResult)
        assert rebuilt.records == result.records
        assert rebuilt.ticks_executed == result.ticks_executed
        assert rebuilt.arrivals == result.arrivals
        assert rebuilt.departures == result.departures

    def test_cache_round_trip(self, tmp_path):
        job = SwarmJob(spec=get_scenario("baseline"), scale="smoke", seed=9)
        cache = ResultCache(tmp_path)
        fingerprint = job.fingerprint()
        assert cache.get(job, fingerprint) is None
        result = job.execute()
        cache.put(job, result, fingerprint)
        cached = cache.get(job, fingerprint)
        assert isinstance(cached, SwarmResult)
        assert cached.records == result.records


class TestGoldenSwarmRuns:
    def test_every_scenario_pinned_or_marked_unsupported(self):
        """New registry entries must ship a swarm pin or an explicit marker."""
        assert set(GOLDEN_SWARM_SMOKE) | SWARM_UNSUPPORTED == set(scenario_names())
        assert not set(GOLDEN_SWARM_SMOKE) & SWARM_UNSUPPORTED

    @pytest.mark.parametrize("name", sorted(GOLDEN_SWARM_SMOKE))
    def test_smoke_run_pinned_by_fingerprint(self, name):
        spec = get_scenario(name)
        job = get_substrate("swarm").compile_job(spec, "smoke", seed=spec.job_seed(0, 0))
        job_prefix, result_prefix = GOLDEN_SWARM_SMOKE[name]
        assert job.fingerprint().startswith(job_prefix)
        payload = result_to_payload(job.execute())
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert digest.startswith(result_prefix)
