"""Tests for the named-scenario registry and its golden pinned runs."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.runner.jobs import result_to_payload
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)

EXPECTED_NAMES = {
    "baseline",
    "flash-crowd",
    "burst-churn",
    "capacity-skew",
    "free-rider-wave",
    "colluders",
}

#: scenario -> (job fingerprint prefix, result payload sha256 prefix) at
#: smoke scale, master seed 0, repetition 0.  These pin the *entire* chain:
#: spec declaration, scaling, compilation to engine primitives, the derived
#: seed and the engine's execution of the dynamics path.  An intentional
#: change to any of those must update these values (and invalidates cached
#: scenario results).
GOLDEN_SMOKE = {
    "baseline": ("5c4dde63b17caace", "820f7d9d696a2af5"),
    "burst-churn": ("a6d457df4239a035", "2f2f15ae610f6987"),
    "capacity-skew": ("ba36751ec83c422b", "b00bb8df1a1bf4ec"),
    "colluders": ("7c77e2109375dc92", "d355207727430def"),
    "flash-crowd": ("4332a0a5c27cf0d9", "4cb51f4f81ce72b6"),
    "free-rider-wave": ("026aa6a25679db6d", "fabe48d039d3669c"),
}


class TestRegistry:
    def test_builtins_present(self):
        assert EXPECTED_NAMES <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_get_scenario_known_and_unknown(self):
        assert get_scenario("baseline").name == "baseline"
        with pytest.raises(KeyError):
            get_scenario("does-not-exist")

    def test_all_scenarios_sorted(self):
        names = [spec.name for spec in all_scenarios()]
        assert names == sorted(names)

    def test_register_rejects_duplicates_and_unregister_cleans_up(self):
        spec = ScenarioSpec(name="tmp-test-scenario")
        register(spec)
        try:
            with pytest.raises(ValueError):
                register(ScenarioSpec(name="tmp-test-scenario"))
            assert get_scenario("tmp-test-scenario") is spec
        finally:
            unregister("tmp-test-scenario")
        assert "tmp-test-scenario" not in scenario_names()

    def test_every_builtin_round_trips(self):
        for spec in all_scenarios():
            clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
            assert clone == spec
            assert clone.fingerprint() == spec.fingerprint()


class TestGoldenRuns:
    def test_golden_covers_all_builtins(self):
        assert set(GOLDEN_SMOKE) == EXPECTED_NAMES

    @pytest.mark.parametrize("name", sorted(GOLDEN_SMOKE))
    def test_smoke_run_pinned_by_fingerprint(self, name):
        spec = get_scenario(name)
        job = spec.compile("smoke", seed=spec.job_seed(0, 0))
        job_prefix, result_prefix = GOLDEN_SMOKE[name]
        assert job.fingerprint().startswith(job_prefix)
        payload = result_to_payload(job.execute())
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert digest.startswith(result_prefix)
