"""Tests for the named-scenario registry and its golden pinned runs."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.runner.jobs import result_to_payload
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)

EXPECTED_NAMES = {
    "baseline",
    "flash-crowd",
    "burst-churn",
    "capacity-skew",
    "free-rider-wave",
    "colluders",
    "growing-swarm",
    "whitewash-churn",
    "colluding-whitewash",
    "network-faults",
}

#: scenario -> (job fingerprint prefix, result payload sha256 prefix) at
#: smoke scale, master seed 0, repetition 0.  These pin the *entire* chain:
#: spec declaration, scaling, compilation to engine primitives, the derived
#: seed and the engine's execution of the dynamics path.  An intentional
#: change to any of those must update these values (and invalidates cached
#: scenario results).
GOLDEN_SMOKE = {
    "baseline": ("5c4dde63b17caace", "820f7d9d696a2af5"),
    "burst-churn": ("a6d457df4239a035", "2f2f15ae610f6987"),
    "capacity-skew": ("ba36751ec83c422b", "b00bb8df1a1bf4ec"),
    "colluders": ("7c77e2109375dc92", "d355207727430def"),
    "flash-crowd": ("4332a0a5c27cf0d9", "4cb51f4f81ce72b6"),
    "free-rider-wave": ("026aa6a25679db6d", "fabe48d039d3669c"),
    # Variable-population scenarios (PR 3); the result payloads here carry
    # the identity-lifecycle fields and the population summary block.
    "growing-swarm": ("6bbf3d7764bc460e", "818df863392d78ae"),
    "whitewash-churn": ("97b1093907756c42", "c6893992ffc2a396"),
    # Targeted identity churn (PR 5): behaviour groups + group-targeted
    # departures/whitewash in the job config and payload.
    "colluding-whitewash": ("0ef1b722446e55d1", "61d91d80ad6c7460"),
    # Network events (PR 7): the round engine approximates the injected
    # degradation/partition windows as churn waves compiled from the
    # scenario's NetworkEventSpec entries.
    "network-faults": ("d41b3d118291f77d", "d30de920af31c922"),
}


class TestRegistry:
    def test_builtins_present(self):
        assert EXPECTED_NAMES <= set(scenario_names())
        assert len(scenario_names()) >= 6

    def test_get_scenario_known_and_unknown(self):
        assert get_scenario("baseline").name == "baseline"
        with pytest.raises(KeyError):
            get_scenario("does-not-exist")

    def test_all_scenarios_sorted(self):
        names = [spec.name for spec in all_scenarios()]
        assert names == sorted(names)

    def test_register_rejects_duplicates_and_unregister_cleans_up(self):
        spec = ScenarioSpec(name="tmp-test-scenario")
        register(spec)
        try:
            with pytest.raises(ValueError):
                register(ScenarioSpec(name="tmp-test-scenario"))
            assert get_scenario("tmp-test-scenario") is spec
        finally:
            unregister("tmp-test-scenario")
        assert "tmp-test-scenario" not in scenario_names()

    def test_every_builtin_round_trips(self):
        for spec in all_scenarios():
            clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.as_dict())))
            assert clone == spec
            assert clone.fingerprint() == spec.fingerprint()


class TestGoldenRuns:
    def test_golden_covers_all_builtins(self):
        assert set(GOLDEN_SMOKE) == EXPECTED_NAMES

    @pytest.mark.parametrize("name", sorted(GOLDEN_SMOKE))
    def test_smoke_run_pinned_by_fingerprint(self, name):
        spec = get_scenario(name)
        job = spec.compile("smoke", seed=spec.job_seed(0, 0))
        job_prefix, result_prefix = GOLDEN_SMOKE[name]
        assert job.fingerprint().startswith(job_prefix)
        payload = result_to_payload(job.execute())
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        ).hexdigest()
        assert digest.startswith(result_prefix)


class TestVariableScenarios:
    """Behavioural guarantees of the variable-population built-ins."""

    def test_growing_swarm_grows_the_active_population(self):
        spec = get_scenario("growing-swarm")
        result = spec.compile("smoke", seed=spec.job_seed(0, 0)).execute()
        counts = result.active_counts
        assert counts is not None
        # The acceptance bar: the active peer count demonstrably changes
        # over the run — a true arrival process, not identity replacement.
        assert len(set(counts)) > 1
        assert counts[-1] > counts[0]
        assert result.total_arrivals > 0
        # PRA measures are reported per cohort, normalised by peer-rounds.
        cohorts = result.cohort_metrics()
        assert "initial" in cohorts and "arrival" in cohorts
        assert cohorts["arrival"].peer_count == result.total_arrivals
        assert cohorts["initial"].downloaded_per_peer_round > 0.0
        assert cohorts["arrival"].downloaded_per_peer_round > 0.0

    def test_growing_swarm_respects_its_cap(self):
        spec = get_scenario("growing-swarm")
        job = spec.compile("smoke", seed=spec.job_seed(0, 0))
        cap = job.config.population.max_active
        assert cap == 3 * job.config.n_peers
        assert all(count <= cap for count in job.execute().active_counts)

    def test_colluding_whitewash_targets_the_clique(self):
        # Bench scale: large enough for the targeted-vs-honest churn gap to
        # dominate the sampling noise of a smoke-size swarm.
        spec = get_scenario("colluding-whitewash")
        result = spec.compile("bench", seed=spec.job_seed(0, 0)).execute()
        records = result.records
        # The clique exists and only colluders ever whitewash back in.
        assert any(r.group == "colluder" for r in records)
        whitewashers = [r for r in records if r.cohort == "whitewash"]
        assert whitewashers
        assert all(r.group == "colluder" for r in whitewashers)
        # Honest departures leave for good: no whitewash cohort outside the
        # clique, so the active set only shrinks through the default group.
        assert ("default", "whitewash") not in result.group_cohort_metrics()

        # Targeted churn: colluder identities (all cohorts pooled) are
        # evicted at a higher rate than the honest default group.
        def eviction_rate(group):
            members = [r for r in records if r.group == group]
            departed = sum(1 for r in members if r.departed_round is not None)
            return departed / len(members)

        assert eviction_rate("colluder") > eviction_rate("default")

    def test_colluding_whitewash_is_deterministic_per_seed(self):
        from repro.runner.jobs import result_to_payload

        spec = get_scenario("colluding-whitewash")
        job = spec.compile("smoke", seed=spec.job_seed(0, 0))
        assert result_to_payload(job.execute()) == result_to_payload(
            job.execute()
        )

    def test_whitewash_churn_creates_fresh_identities(self):
        spec = get_scenario("whitewash-churn")
        result = spec.compile("smoke", seed=spec.job_seed(0, 0)).execute()
        assert result.total_departures > 0
        cohorts = result.cohort_metrics()
        assert "whitewash" in cohorts
        whitewashers = [r for r in result.records if r.cohort == "whitewash"]
        assert whitewashers
        # A whitewashed identity is genuinely new: a fresh id outside the
        # initial range, joined mid-run.
        n_initial = result.config.n_peers
        assert all(r.peer_id >= n_initial for r in whitewashers)
        assert all(r.joined_round > 0 for r in whitewashers)
