"""Tests for the scheduler: dedupe, streaming, retry and fault recovery."""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.service import (
    Scheduler,
    ServiceConfig,
    ServiceError,
    ServiceRunner,
    WorkerPool,
    worker_main,
)
from repro.service.testing import EchoJob, FailJob, WorkerKillJob

#: Fast-converging knobs for inline (single-process) scheduler tests.
FAST = ServiceConfig(
    job_timeout=30.0,
    max_attempts=2,
    backoff_base=0.01,
    backoff_max=0.05,
    liveness_timeout=5.0,
    poll_interval=0.01,
)


@pytest.fixture
def dirs(tmp_path):
    return str(tmp_path / "spool"), str(tmp_path / "cache")


def drain(dirs, worker_id: str = "inline") -> int:
    """Run one in-process worker until the queue stays empty."""
    spool_root, cache_dir = dirs
    return worker_main(
        spool_root, cache_dir, worker_id=worker_id, poll_interval=0.01, max_idle=0.05
    )


class TestSubmissionDedupe:
    def test_batch_store_and_results_in_job_order(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        jobs = [EchoJob("a"), EchoJob("a"), EchoJob("b")]
        submission = scheduler.submit(jobs)
        assert submission.deduplicated == 1
        assert submission.enqueued == 2
        assert drain(dirs) == 2
        assert submission.results(timeout=5) == ["echo:a", "echo:a", "echo:b"]
        stats = submission.stats()
        assert stats.completed == 2
        assert stats.executed == 2
        assert stats.failed == 0

    def test_warm_store_answers_without_queueing(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        jobs = [EchoJob("a"), EchoJob("b")]
        scheduler.submit(jobs)
        drain(dirs)

        scheduler.store.query_count = 0
        warm = scheduler.submit(jobs)
        assert warm.initial_hits == 2
        assert warm.enqueued == 0
        # The store-level dedupe was one indexed query, not per-job stats.
        assert scheduler.store.query_count == 1
        assert warm.results(timeout=5) == ["echo:a", "echo:b"]
        assert warm.stats().executed == 0
        assert warm.stats().cache_hits == 2

    def test_concurrent_submitters_share_one_queue_and_index(self, dirs):
        """Two schedulers on the same directories: the second submission
        queues nothing (spool-level dedupe), and both converge on the same
        results through the shared sqlite index."""
        first = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        second = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        jobs = [EchoJob("a"), EchoJob("b")]
        sub_a = first.submit(jobs)
        sub_b = second.submit(jobs)
        assert sub_a.enqueued == 2
        assert sub_b.enqueued == 0  # awaits the first submitter's jobs
        assert first.spool.queue_depth() == 2
        drain(dirs)
        assert sub_a.results(timeout=5) == sub_b.results(timeout=5)

    def test_enqueue_race_cannot_double_queue(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        job = EchoJob("a")
        assert scheduler.spool.enqueue(job.fingerprint(), job) is True
        # A submission arriving after the raw enqueue just awaits it.
        submission = scheduler.submit([job])
        assert submission.enqueued == 0
        assert scheduler.spool.queue_depth() == 1


class TestRetryAndFailure:
    def test_failing_job_retries_then_exhausts(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        submission = scheduler.submit([FailJob("x"), EchoJob("ok")])
        deadline = time.time() + 10
        while not submission.failures and time.time() < deadline:
            drain(dirs)
            submission._pump()
            time.sleep(0.02)
        (message,) = submission.failures.values()
        assert "retries exhausted" in message
        assert "injected failure" in message
        assert submission.retries == FAST.max_attempts - 1
        # strict results surface the failure; non-strict fill None.
        with pytest.raises(ServiceError) as excinfo:
            submission.results(timeout=5)
        assert FailJob("x").fingerprint() in excinfo.value.failures
        assert submission.results(timeout=5, strict=False) == [None, "echo:ok"]

    def test_stream_timeout_raises_service_error(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        submission = scheduler.submit([EchoJob("never")])  # no workers running
        with pytest.raises(ServiceError, match="timed out"):
            list(submission.stream(timeout=0.2))

    def test_backoff_delay_is_exponential_and_capped(self):
        config = ServiceConfig(backoff_base=0.25, backoff_max=1.0)
        assert config.backoff_delay(1) == 0.25
        assert config.backoff_delay(2) == 0.5
        assert config.backoff_delay(3) == 1.0
        assert config.backoff_delay(10) == 1.0


class TestFaultRecovery:
    def test_dead_worker_claim_is_requeued(self, dirs):
        # registration_grace=0 restores the pre-grace reading: a claimer
        # that never registered is dead immediately.  (With the default
        # grace it would be presumed a still-starting worker for a few
        # seconds first — pinned by the telemetry/compaction suite.)
        config = replace(FAST, registration_grace=0.0)
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=config)
        submission = scheduler.submit([EchoJob("a")])
        assert scheduler.spool.claim("ghost") is not None
        assert scheduler.spool.queue_depth() == 0
        submission._pump()
        assert scheduler.spool.queue_depth() == 1
        assert submission.retries == 1
        drain(dirs)
        assert submission.results(timeout=5) == ["echo:a"]

    def test_job_timeout_requeues_and_exhausts(self, dirs):
        """A claim held past job_timeout goes back to pending; repeated
        timeouts burn the attempt budget and fail terminally."""
        config = ServiceConfig(
            job_timeout=0.05,
            max_attempts=2,
            backoff_base=0.01,
            backoff_max=0.02,
            liveness_timeout=60.0,  # the worker *is* alive, just stuck
            poll_interval=0.01,
        )
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=config)
        spool = scheduler.spool
        submission = scheduler.submit([EchoJob("stuck")])
        spool.register_worker("w1")

        timeouts = 0
        deadline = time.time() + 10
        while not submission.failures and time.time() < deadline:
            spool.heartbeat("w1")
            if spool.queue_depth():
                spool.claim("w1")  # "execute" forever: never finish
                timeouts += 1
            submission._pump()
            time.sleep(0.02)
        (message,) = submission.failures.values()
        assert "timed out" in message
        assert timeouts == config.max_attempts
        with pytest.raises(ServiceError):
            submission.results(timeout=1)

    def test_torn_store_entry_is_recomputed(self, dirs):
        # Index row present but payload file gone: the pump forgets the
        # stale row and re-queues the job instead of failing the batch.
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        job = EchoJob("torn")
        scheduler.submit([job])
        drain(dirs)
        scheduler.store.path_for(job.fingerprint()).unlink()
        submission = scheduler.submit([job])
        assert submission.initial_hits == 1  # the index over-reported...
        drain(dirs)

        def pump_and_drain():
            submission._pump()
            drain(dirs)

        deadline = time.time() + 5
        while not submission.completed and time.time() < deadline:
            pump_and_drain()
        assert submission.results(timeout=5) == ["echo:torn"]


class TestWorkerPoolIntegration:
    def test_killed_worker_jobs_survive(self, tmp_path):
        """The satellite scenario: a worker SIGKILLed mid-job; its claim is
        re-queued onto the survivor and the submission still completes."""
        spool_root = str(tmp_path / "spool")
        cache_dir = str(tmp_path / "cache")
        config = ServiceConfig(
            job_timeout=30.0,
            max_attempts=3,
            backoff_base=0.01,
            backoff_max=0.05,
            liveness_timeout=0.5,
            poll_interval=0.02,
        )
        scheduler = Scheduler(spool_root, cache_dir=cache_dir, config=config)
        jobs = [
            WorkerKillJob("bomb", marker_dir=str(tmp_path / "kills"), max_kills=1)
        ] + [EchoJob(f"job-{i}") for i in range(4)]
        with WorkerPool(spool_root, cache_dir, workers=2, poll_interval=0.02) as pool:
            submission = scheduler.submit(jobs)
            results = submission.results(timeout=60)
            assert pool.alive_count() >= 1
        assert results[0] == "kill:bomb:survived"
        assert sorted(results[1:]) == sorted(f"echo:job-{i}" for i in range(4))
        # Exactly one worker died on the bomb, and the scheduler saw it.
        assert len(list((tmp_path / "kills").iterdir())) == 1
        assert submission.retries >= 1

    def test_pool_stop_reaps_workers(self, tmp_path):
        pool = WorkerPool(
            str(tmp_path / "spool"), str(tmp_path / "cache"), workers=2,
            poll_interval=0.02,
        )
        pool.start()
        assert pool.alive_count() == 2
        pool.stop(timeout=10)
        assert pool.alive_count() == 0
        assert not pool.spool.stop_requested()  # cleared for the next serve


class TestServiceRunner:
    def test_runner_facade_matches_direct_results(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        seen = []
        runner = ServiceRunner(
            scheduler,
            timeout=30,
            progress=lambda fp, result, done, total: seen.append((done, total)),
        )
        jobs = [EchoJob("a"), EchoJob("b"), EchoJob("a")]
        with WorkerPool(dirs[0], dirs[1], workers=1, poll_interval=0.02):
            results = runner.run(jobs)
        assert results == ["echo:a", "echo:b", "echo:a"]
        assert seen == [(1, 2), (2, 2)]
        stats = runner.stats()
        assert stats.executed == 2
        assert stats.deduplicated == 1
        assert stats.cache_hits == 0

        # Warm re-run: everything is a cache hit, nothing executes, and no
        # workers are even needed.
        assert runner.run(jobs) == results
        assert runner.stats().executed == 2
        assert runner.stats().cache_hits == 2

    def test_empty_batch_short_circuits(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        assert ServiceRunner(scheduler).run([]) == []


class TestSchedulerConstruction:
    def test_requires_store_or_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            Scheduler(tmp_path / "spool")

    def test_service_stats_render_format(self, dirs):
        scheduler = Scheduler(dirs[0], cache_dir=dirs[1], config=FAST)
        line = scheduler.service_stats().render()
        assert line == (
            "queue=0 in-flight=0 done=0 failed=0 retries=0 workers=0+0dead"
        )
