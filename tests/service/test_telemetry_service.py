"""End-to-end telemetry: a traced micro-grid and a traced worker kill.

The accounting-closure test is the service-layer analogue of the profiling
suite's wall-clock closure (``tests/sim/test_profiling.py``): every job's
traced probe/execute/store durations must fit inside the monotonic
claim→store interval the worker actually spent on it, and the lifecycle
counts must balance exactly — nothing double-counted, nothing lost.
"""

from __future__ import annotations

import pytest

from repro.experiments import atlas as atlas_experiment
from repro.service import Scheduler, ServiceConfig, WorkerPool
from repro.service.atlas import run_atlas_service
from repro.service.testing import EchoJob, WorkerKillJob
from repro.sim.profiling import CANONICAL_PHASES
from repro.telemetry import CANONICAL_EVENTS, read_events, read_metrics

AXES = {"ranking": ("fastest", "loyal")}
SCENARIOS = ("baseline", "colluders")

FAST = ServiceConfig(
    job_timeout=60.0,
    max_attempts=3,
    backoff_base=0.02,
    backoff_max=0.1,
    liveness_timeout=0.5,
    poll_interval=0.02,
)


def _traced_micro_grid(tmp_path):
    """Run the 2x2 micro-atlas on two traced workers; merged events + metrics."""
    from repro.telemetry import Telemetry

    spec = atlas_experiment.make_spec(
        scale="smoke", seed=0, scenarios=SCENARIOS, axes=AXES
    )
    spool_root = str(tmp_path / "spool")
    cache_dir = tmp_path / "cache"
    telemetry_dir = tmp_path / "telemetry"
    telemetry = Telemetry(telemetry_dir, writer="sched")
    scheduler = Scheduler(
        spool_root, cache_dir=cache_dir, config=FAST, telemetry=telemetry
    )
    with WorkerPool(
        spool_root,
        cache_dir,
        workers=2,
        poll_interval=0.02,
        telemetry_dir=telemetry_dir,
    ):
        outcome = run_atlas_service(spec, scheduler, timeout=120, emit=None)
    telemetry.close()
    return {
        "spec": spec,
        "outcome": outcome,
        "events": read_events(telemetry_dir),
        "metrics": read_metrics(telemetry_dir),
        "cache_dir": cache_dir,
        "base": tmp_path,
    }


@pytest.fixture(scope="module")
def traced_grid(tmp_path_factory):
    return _traced_micro_grid(tmp_path_factory.mktemp("traced-grid"))


class TestAccountingClosure:
    def test_event_vocabulary_is_closed(self, traced_grid):
        """Every event a real service run emits is canonical — the service
        twin of the profiling suite's phase-vocabulary check."""
        events = traced_grid["events"]
        assert events, "the traced run produced no events"
        assert {r["event"] for r in events} <= set(CANONICAL_EVENTS)

    def test_lifecycle_counts_balance(self, traced_grid):
        spec, events = traced_grid["spec"], traced_grid["events"]
        jobs = spec.repetitions * len(spec.cells())
        counts = {}
        for record in events:
            counts[record["event"]] = counts.get(record["event"], 0) + 1
        assert counts["submit"] == jobs
        assert counts["complete"] == jobs
        # The scheduler may idempotently re-enqueue a job it raced with a
        # finishing worker (by design — results are content-addressed), so
        # enqueue/claim may exceed the job count but never undershoot it.
        assert counts["enqueue"] >= jobs
        assert counts["claim"] >= jobs
        # Every claim is probed; every miss is executed and stored exactly
        # once; every hit is a dedupe skip.  That's the closure.
        assert counts["probe"] == counts["claim"]
        assert counts["store"] == counts["execute"]
        probe_hits = sum(
            1 for r in events if r["event"] == "probe" and r.get("hit")
        )
        assert counts["execute"] + probe_hits == counts["probe"]
        assert counts["execute"] >= jobs  # a cold store: every job computed
        assert "error" not in counts

    def test_durations_fit_inside_the_claim_to_store_interval(self, traced_grid):
        """Per attempt: probe + execute + store wall time is bounded by the
        monotonic claim→store interval, and accounts for most of it."""
        events = traced_grid["events"]
        by_fp = {}
        for record in events:
            if "fp" in record:
                by_fp.setdefault(record["fp"], []).append(record)
        checked = 0
        for timeline in by_fp.values():
            # Split the timeline into attempts at each claim, so a job the
            # scheduler idempotently re-enqueued is checked per attempt.
            attempts = []
            for record in timeline:
                if record["event"] == "claim":
                    attempts.append([record])
                elif attempts:
                    attempts[-1].append(record)
            stored = [
                a for a in attempts
                if any(r["event"] == "store" for r in a)
            ]
            assert stored, "job completed without a traced store"
            for attempt in stored:
                claim = attempt[0]
                store = next(r for r in attempt if r["event"] == "store")
                parts = sum(
                    float(r.get("duration", 0.0))
                    for r in attempt
                    if r["event"] in ("probe", "execute", "store")
                )
                interval = store["m"] - claim["m"]
                assert interval >= 0
                # Durations cannot exceed the interval they are nested in
                # (small epsilon: the emits themselves take time)...
                assert parts <= interval + 0.01
                # ...and the un-attributed gap stays small (spool I/O, emits).
                assert interval - parts < 0.25
                checked += 1
        assert checked >= len(by_fp)

    def test_execute_spans_carry_engine_phase_profiles(self, traced_grid):
        events = traced_grid["events"]
        executes = [r for r in events if r["event"] == "execute"]
        assert executes
        for record in executes:
            profile = record.get("profile")
            assert profile is not None, "execute span lost its engine profile"
            phases = profile["phases"]
            assert phases
            assert set(phases) <= set(CANONICAL_PHASES)

    def test_metrics_agree_with_the_trace(self, traced_grid):
        spec, events = traced_grid["spec"], traced_grid["events"]
        outcome, metrics = traced_grid["outcome"], traced_grid["metrics"]
        jobs = spec.repetitions * len(spec.cells())
        counters = metrics["counters"]
        executes = sum(1 for r in events if r["event"] == "execute")
        enqueues = sum(1 for r in events if r["event"] == "enqueue")
        claims = sum(1 for r in events if r["event"] == "claim")
        assert counters["scheduler.submitted"] == jobs
        assert counters["scheduler.completed"] == jobs
        assert counters["spool.enqueued"] == enqueues
        assert counters["spool.claimed"] == claims
        assert counters["worker.executed"] == executes
        assert counters["cache.misses"] >= executes  # every execute was a miss
        histograms = metrics["histograms"]
        assert histograms["execute_seconds"].count == executes
        assert histograms["claim_latency_seconds"].count == claims
        # The grid really ran: the outcome carries every cell.
        assert len(outcome.report.cells) == len(spec.cells())

    def test_rerun_is_all_store_hits(self, traced_grid, tmp_path):
        """Submitting the same grid against the warm store re-executes
        nothing, and the second trace says so: submits tagged cached,
        nothing enqueued, no worker events at all."""
        from repro.telemetry import Telemetry

        spec = traced_grid["spec"]
        telemetry_dir = tmp_path / "telemetry2"
        telemetry = Telemetry(telemetry_dir, writer="resched")
        scheduler = Scheduler(
            str(tmp_path / "spool2"),
            cache_dir=traced_grid["cache_dir"],  # the warm store
            config=FAST,
            telemetry=telemetry,
        )
        outcome = run_atlas_service(spec, scheduler, timeout=60, emit=None)
        telemetry.close()
        assert len(outcome.report.cells) == len(spec.cells())

        jobs = spec.repetitions * len(spec.cells())
        events = read_events(telemetry_dir)
        submits = [r for r in events if r["event"] == "submit"]
        assert len(submits) == jobs
        assert all(r["cached"] for r in submits)
        assert not any(r["event"] == "enqueue" for r in events)
        assert not any(r["event"] == "execute" for r in events)
        counters = read_metrics(telemetry_dir)["counters"]
        assert counters["dedupe.store_hits"] == jobs
        assert "spool.enqueued" not in counters


class TestKilledWorkerTrace:
    def test_kill_requeue_reexecute_sequence_is_traced(self, tmp_path):
        """A worker SIGKILLed mid-execute leaves exactly the trace the
        telemetry exists to produce: claim by the victim, dead-worker
        re-queue, second claim by the survivor, execute, complete."""
        from repro.telemetry import Telemetry
        from repro.telemetry.report import render_trace

        spool_root = str(tmp_path / "spool")
        cache_dir = tmp_path / "cache"
        telemetry_dir = tmp_path / "telemetry"
        marker_dir = str(tmp_path / "kills")
        telemetry = Telemetry(telemetry_dir, writer="sched")
        scheduler = Scheduler(
            spool_root, cache_dir=cache_dir, config=FAST, telemetry=telemetry
        )
        jobs = [EchoJob(f"e{i}") for i in range(3)] + [
            WorkerKillJob("victim", marker_dir)
        ]
        kill_fp = jobs[-1].fingerprint()
        with WorkerPool(
            spool_root,
            cache_dir,
            workers=2,
            poll_interval=0.02,
            telemetry_dir=telemetry_dir,
        ):
            results = scheduler.submit(jobs).results(timeout=60)
        telemetry.close()
        assert results[-1] == "kill:victim:survived"

        events = read_events(telemetry_dir)
        kill_events = [r for r in events if r.get("fp") == kill_fp]
        sequence = [r["event"] for r in kill_events]
        # Two claims bracketing a dead-worker re-queue, then completion.
        assert sequence.count("claim") == 2
        requeues = [r for r in kill_events if r["event"] == "requeue"]
        assert [r["reason"] for r in requeues] == ["dead-worker"]
        assert sequence.index("requeue") > sequence.index("claim")
        assert sequence[-1] == "complete"
        # The two claims came from two different workers.
        claimants = [r["worker"] for r in kill_events if r["event"] == "claim"]
        assert len(set(claimants)) == 2
        # The victim's worker.stop never made it to the log (SIGKILL), but
        # the survivor's lifecycle is fully recorded.
        starts = [r for r in events if r["event"] == "worker.start"]
        stops = [r for r in events if r["event"] == "worker.stop"]
        assert len(starts) == 2
        assert len(stops) == 1
        # The rendered trace names the recovery in human-readable form.
        text = render_trace(events, jobs_limit=None)
        assert "requeue[dead-worker] x1" in text
        assert "2 attempts" in text
