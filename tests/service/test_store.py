"""Tests for the sqlite-indexed result store."""

from __future__ import annotations

import hashlib
import pickle
from types import SimpleNamespace

import pytest

from repro.core.protocol import bittorrent_reference
from repro.runner import SimulationJob
from repro.runner.cache import ResultCache
from repro.service.store import INDEX_FILENAME, IndexedResultStore
from repro.service.testing import EchoJob
from repro.sim.config import SimulationConfig


def make_sim_job(seed: int = 0, rounds: int = 6) -> SimulationJob:
    config = SimulationConfig(n_peers=6, rounds=rounds)
    return SimulationJob(
        config=config, behaviors=(bittorrent_reference().behavior,), seed=seed
    )


def fake_fingerprints(count: int):
    return [hashlib.sha256(f"fp-{i}".encode()).hexdigest() for i in range(count)]


class TestIndexRoundTrip:
    def test_put_indexes_and_get(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        job = EchoJob("a")
        fingerprint = job.fingerprint()
        store.put(job, job.execute(), fingerprint)
        assert store.probe(fingerprint)
        assert store.indexed_count() == 1
        assert store.get(job, fingerprint) == "echo:a"
        assert (tmp_path / "cache" / INDEX_FILENAME).exists()
        # A fresh handle on the same directory sees the persisted index.
        again = IndexedResultStore(tmp_path / "cache")
        assert again.probe(fingerprint)
        assert again.get(job, fingerprint) == "echo:a"

    def test_simulation_result_round_trips(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        job = make_sim_job(seed=3)
        result = job.execute()
        store.put(job, result)
        assert store.get(job).records == result.records

    def test_files_bit_identical_to_plain_cache(self, tmp_path):
        """The index is additive: the payload files are byte-for-byte the
        ones a plain ResultCache writes, so every pinned fingerprint and
        golden file stays valid."""
        job = make_sim_job(seed=1)
        result = job.execute()
        plain_path = ResultCache(tmp_path / "plain").put(job, result)
        store_path = IndexedResultStore(tmp_path / "indexed").put(job, result)
        assert plain_path.read_bytes() == store_path.read_bytes()
        assert plain_path.relative_to(tmp_path / "plain") == store_path.relative_to(
            tmp_path / "indexed"
        )

    def test_probe_misses_are_absent(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        assert not store.probe("0" * 64)
        assert store.probe_many(fake_fingerprints(10)) == set()


class TestProbeQueryComplexity:
    def test_thousand_job_probe_is_two_queries_not_thousand_stats(self, tmp_path):
        """The acceptance criterion: a 1000-fingerprint dedupe probe issues
        O(1) indexed queries (ceil(1000/500) == 2), not one stat per job."""
        store = IndexedResultStore(tmp_path / "cache")
        fingerprints = fake_fingerprints(1000)
        stored = fingerprints[::2]
        for fingerprint in stored:
            store.index_entry(fingerprint)
        store.query_count = 0
        present = store.probe_many(fingerprints)
        assert store.query_count == 2
        assert present == set(stored)

    def test_probe_many_dedupes_input(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        fingerprint = fake_fingerprints(1)[0]
        store.index_entry(fingerprint)
        store.query_count = 0
        assert store.probe_many([fingerprint] * 600) == {fingerprint}
        assert store.query_count == 1  # 600 duplicates collapse to one chunk


class TestRebuild:
    def test_index_rebuilt_from_preexisting_file_cache(self, tmp_path):
        """A cache directory built by a plain (index-less) ResultCache run
        gets its index reconciled on first IndexedResultStore open."""
        plain = ResultCache(tmp_path / "cache")
        jobs = [make_sim_job(seed=seed) for seed in range(3)]
        fingerprints = [job.fingerprint() for job in jobs]
        for job, fingerprint in zip(jobs, fingerprints):
            plain.put(job, job.execute(), fingerprint)
        assert not (tmp_path / "cache" / INDEX_FILENAME).exists()

        store = IndexedResultStore(tmp_path / "cache")
        assert (tmp_path / "cache" / INDEX_FILENAME).exists()
        assert store.indexed_count() == 3
        assert store.probe_many(fingerprints) == set(fingerprints)
        for job, fingerprint in zip(jobs, fingerprints):
            assert store.get(job, fingerprint) is not None

    def test_rebuild_reconciles_out_of_band_changes(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        job = make_sim_job(seed=9)
        fingerprint = job.fingerprint()
        path = store.put(job, job.execute(), fingerprint)
        path.unlink()  # out-of-band deletion: index now over-reports
        assert store.probe(fingerprint)
        assert store.rebuild() == 0
        assert not store.probe(fingerprint)


class TestIndexMetadata:
    def test_scenario_and_seed_recorded(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        swarm_like = SimpleNamespace(
            seed=7,
            spec=SimpleNamespace(name="baseline"),
            payload=lambda: {"substrate": "swarm"},
        )
        store.index_entry("a" * 64, job=swarm_like)
        store.index_entry("b" * 64, job=SimpleNamespace(seed=2**80, spec=None))
        counts = store.scenario_counts()
        assert counts == {"baseline": 1, None: 1}

    def test_huge_derived_seeds_fit_the_index(self, tmp_path):
        # Scenario-derived per-repetition seeds are sha256-based and exceed
        # sqlite's 64-bit INTEGER range; the seed column must hold them.
        store = IndexedResultStore(tmp_path / "cache")
        store.index_entry("c" * 64, job=SimpleNamespace(seed=2**200, spec=None))
        assert store.probe("c" * 64)


class TestMaintenance:
    def test_clear_clears_files_and_index(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        job = EchoJob("x")
        store.put(job, job.execute(), job.fingerprint())
        assert store.clear() == 1
        assert len(store) == 0
        assert store.indexed_count() == 0
        assert not store.probe(job.fingerprint())

    def test_forget_drops_rows_but_keeps_files(self, tmp_path):
        store = IndexedResultStore(tmp_path / "cache")
        job = EchoJob("y")
        fingerprint = job.fingerprint()
        path = store.put(job, job.execute(), fingerprint)
        store.forget([fingerprint])
        assert not store.probe(fingerprint)
        assert path.exists()

    def test_store_survives_pickling(self, tmp_path):
        # Stores travel into worker processes by value; the connection must
        # not come along (and must lazily re-open on the other side).
        store = IndexedResultStore(tmp_path / "cache")
        job = EchoJob("z")
        store.put(job, job.execute(), job.fingerprint())
        clone = pickle.loads(pickle.dumps(store))
        assert clone.probe(job.fingerprint())
