"""End-to-end: the robustness atlas through the service, faults included.

The acceptance criterion for the service layer: a micro-atlas submitted
through the scheduler onto a two-worker pool — with one worker SIGKILLed
mid-grid — completes with every cell present and **bit-identical** stored
results to the plain serial ``atlas`` run.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments import atlas as atlas_experiment
from repro.runner import ExperimentRunner
from repro.service import IndexedResultStore, Scheduler, ServiceConfig, WorkerPool
from repro.service.atlas import cell_progress, run_atlas_service

AXES = {"ranking": ("fastest", "loyal")}
SCENARIOS = ("baseline", "colluders")


def micro_spec():
    return atlas_experiment.make_spec(
        scale="smoke", seed=0, scenarios=SCENARIOS, axes=AXES
    )


@pytest.fixture(scope="module")
def serial_outcome(tmp_path_factory):
    """The reference run: plain serial runner, plain cache directory."""
    cache_dir = tmp_path_factory.mktemp("serial-cache")
    runner = ExperimentRunner(cache_dir=cache_dir)
    outcome = atlas_experiment.run(spec=micro_spec(), runner=runner)
    return outcome, cache_dir


class TestAtlasThroughService:
    def test_bit_identical_with_worker_killed_mid_grid(
        self, tmp_path, serial_outcome
    ):
        outcome_serial, serial_cache = serial_outcome
        spec = micro_spec()
        spool_root = str(tmp_path / "spool")
        cache_dir = tmp_path / "cache"
        config = ServiceConfig(
            job_timeout=60.0,
            max_attempts=3,
            backoff_base=0.02,
            backoff_max=0.1,
            liveness_timeout=0.5,
            poll_interval=0.02,
        )
        scheduler = Scheduler(spool_root, cache_dir=cache_dir, config=config)
        lines = []
        killed = []

        with WorkerPool(spool_root, cache_dir, workers=2, poll_interval=0.02) as pool:
            # Fault injection: SIGKILL one worker as soon as the first
            # result lands — i.e. while the rest of the grid is in flight.
            def killer():
                # Own store handle: sqlite connections are per-thread.
                probe = IndexedResultStore(cache_dir)
                deadline = time.time() + 30
                while time.time() < deadline:
                    if probe.indexed_count() >= 1:
                        killed.append(pool.kill_one())
                        return
                    time.sleep(0.01)

            watcher = threading.Thread(target=killer, daemon=True)
            watcher.start()
            outcome = run_atlas_service(
                spec, scheduler, timeout=120, emit=lines.append
            )
            watcher.join(timeout=30)

        assert killed and killed[0] is not None  # a worker really died

        # Every cell is present and streamed exactly once.
        cells = len(spec.cells())
        assert len(lines) == cells
        assert lines[-1].startswith(f"  cell {cells}/{cells} complete:")

        # The report — ranking, heat maps, execution accounting — is
        # exactly the serial run's.
        assert atlas_experiment.render(outcome) == atlas_experiment.render(
            outcome_serial
        )
        assert outcome.csv() == outcome_serial.csv()

        # And the stored results themselves are bit-identical, file by file.
        serial_files = sorted(serial_cache.glob("*/*.json"))
        assert len(serial_files) == spec.repetitions * cells
        for serial_file in serial_files:
            twin = cache_dir / serial_file.parent.name / serial_file.name
            assert twin.read_bytes() == serial_file.read_bytes()

    def test_cell_progress_emits_one_line_per_completed_cell(self):
        spec = micro_spec()
        lines = []
        callback = cell_progress(spec, emit=lines.append)
        fingerprints = list(
            dict.fromkeys(
                job.fingerprint() for _, batch in spec.jobs() for job in batch
            )
        )
        for done, fingerprint in enumerate(fingerprints, start=1):
            callback(fingerprint, None, done, len(fingerprints))
        cells = len(spec.cells())
        assert len(lines) == cells
        assert lines[-1].startswith(f"  cell {cells}/{cells} complete:")
        for scenario in SCENARIOS:
            assert any(f"x {scenario}" in line for line in lines)
