"""Tests for the directory/queue spool protocol."""

from __future__ import annotations

import os
import time

from repro.service.spool import Spool
from repro.service.testing import EchoJob


def fp(token: str) -> str:
    return EchoJob(token).fingerprint()


class TestEnqueueClaim:
    def test_enqueue_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path)
        job = EchoJob("a")
        assert spool.enqueue(fp("a"), job) is True
        assert spool.enqueue(fp("a"), job) is False
        assert spool.queue_depth() == 1

    def test_claim_moves_job_to_worker_dir(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue(fp("a"), EchoJob("a"))
        claimed = spool.claim("w1")
        assert claimed is not None
        fingerprint, job = claimed
        assert fingerprint == fp("a")
        assert job == EchoJob("a")
        assert spool.queue_depth() == 0
        assert spool.in_flight() == 1
        assert spool.claimed_jobs() == {"w1": [fp("a")]}
        # Nothing left for a second worker.
        assert spool.claim("w2") is None

    def test_claim_is_fifo_by_enqueue_time(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue(fp("old"), EchoJob("old"))
        spool.enqueue(fp("new"), EchoJob("new"))
        # Force distinct mtimes (filesystems may round to the same tick).
        now = time.time()
        os.utime(spool.pending_dir / f"{fp('old')}.job", (now - 60, now - 60))
        os.utime(spool.pending_dir / f"{fp('new')}.job", (now, now))
        assert spool.claim("w1")[0] == fp("old")
        assert spool.claim("w1")[0] == fp("new")

    def test_claim_drops_undecodable_job_file(self, tmp_path):
        spool = Spool(tmp_path)
        spool.ensure_layout()
        (spool.pending_dir / f"{fp('bad')}.job").write_bytes(b"not a pickle")
        assert spool.claim("w1") is None
        assert spool.queue_depth() == 0
        assert spool.in_flight() == 0

    def test_finish_releases_claim(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue(fp("a"), EchoJob("a"))
        spool.claim("w1")
        spool.finish("w1", fp("a"))
        assert spool.in_flight() == 0
        assert spool.queue_depth() == 0

    def test_release_claim_requeues(self, tmp_path):
        spool = Spool(tmp_path)
        spool.enqueue(fp("a"), EchoJob("a"))
        spool.claim("w1")
        assert spool.release_claim("w1", fp("a")) is True
        assert spool.queue_depth() == 1
        assert spool.in_flight() == 0
        # Releasing a claim that is not held fails without side effects.
        assert spool.release_claim("w1", fp("a")) is False

    def test_is_queued_or_claimed_tracks_both_states(self, tmp_path):
        spool = Spool(tmp_path)
        assert not spool.is_queued_or_claimed(fp("a"))
        spool.enqueue(fp("a"), EchoJob("a"))
        assert spool.is_queued_or_claimed(fp("a"))
        spool.claim("w1")
        assert spool.is_queued_or_claimed(fp("a"))
        spool.finish("w1", fp("a"))
        assert not spool.is_queued_or_claimed(fp("a"))


class TestErrors:
    def test_error_report_take_roundtrip(self, tmp_path):
        spool = Spool(tmp_path)
        spool.report_error(fp("a"), "w1", RuntimeError("boom"))
        assert spool.error_fingerprints() == [fp("a")]
        payload = spool.take_error(fp("a"))
        assert payload["worker"] == "w1"
        assert "RuntimeError: boom" in payload["error"]
        # Consumed: gone on the second take.
        assert spool.take_error(fp("a")) is None
        assert spool.error_fingerprints() == []


class TestWorkerLiveness:
    def test_registered_heartbeating_worker_is_alive(self, tmp_path):
        spool = Spool(tmp_path)
        spool.register_worker("w1")
        (info,) = spool.workers(liveness_timeout=5.0)
        assert info.worker_id == "w1"
        assert info.alive
        assert info.pid == os.getpid()

    def test_stale_heartbeat_marks_worker_dead(self, tmp_path):
        spool = Spool(tmp_path)
        spool.register_worker("w1")
        old = time.time() - 60
        os.utime(spool.workers_dir / "w1.alive", (old, old))
        (info,) = spool.workers(liveness_timeout=5.0)
        assert not info.alive
        assert info.heartbeat_age > 5.0

    def test_unregistered_claimer_is_reported_dead(self, tmp_path):
        # A worker that left claims behind but never registered (or whose
        # registration was cleaned up) must still show up, dead, so the
        # scheduler can re-queue its jobs.
        spool = Spool(tmp_path)
        spool.enqueue(fp("a"), EchoJob("a"))
        spool.claim("ghost")
        (info,) = spool.workers(liveness_timeout=5.0)
        assert info.worker_id == "ghost"
        assert not info.alive
        assert info.claimed == 1

    def test_unregister_removes_worker(self, tmp_path):
        spool = Spool(tmp_path)
        spool.register_worker("w1")
        spool.unregister_worker("w1")
        assert spool.workers() == []


class TestStopSentinel:
    def test_stop_roundtrip(self, tmp_path):
        spool = Spool(tmp_path)
        assert not spool.stop_requested()
        spool.request_stop()
        assert spool.stop_requested()
        spool.clear_stop()
        assert not spool.stop_requested()
