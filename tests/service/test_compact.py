"""Spool compaction: GC of stale worker files, claim dirs, errors, sentinels.

Compaction must only ever remove debris that is provably stale — a live
worker's registration, a held claim, or a fresh error report must survive
any compact() call, no matter how aggressive the TTLs.
"""

from __future__ import annotations

import time

from repro.service import Spool
from repro.service.testing import EchoJob
from repro.telemetry import Telemetry

FAR_FUTURE = 10_000.0  # seconds past any TTL used below


def _spool(tmp_path, **kwargs):
    spool = Spool(tmp_path / "spool", **kwargs)
    spool.ensure_layout()
    return spool


class TestWorkerFileGC:
    def test_stale_dead_worker_files_are_removed(self, tmp_path):
        spool = _spool(tmp_path)
        spool.register_worker("old", pid=1)
        spool.heartbeat("old")
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        assert removed["workers"] == 1
        assert removed["heartbeats"] == 1
        assert not list(spool.workers_dir.iterdir())

    def test_fresh_worker_files_survive(self, tmp_path):
        spool = _spool(tmp_path)
        spool.register_worker("young", pid=1)
        spool.heartbeat("young")
        removed = spool.compact()
        assert removed["workers"] == 0
        assert (spool.workers_dir / "young.json").exists()
        assert (spool.workers_dir / "young.alive").exists()

    def test_worker_holding_a_claim_is_never_removed(self, tmp_path):
        """Claims are the scheduler's to re-queue; compaction must not
        erase the claimant's identity out from under that sweep."""
        spool = _spool(tmp_path)
        job = EchoJob("held")
        spool.enqueue(job.fingerprint(), job)
        spool.register_worker("holder", pid=1)
        spool.heartbeat("holder")
        assert spool.claim("holder") is not None
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        assert removed["workers"] == 0
        assert (spool.workers_dir / "holder.json").exists()

    def test_stray_heartbeat_without_registration_is_removed(self, tmp_path):
        spool = _spool(tmp_path)
        (spool.workers_dir / "ghost.alive").touch()
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        assert removed["heartbeats"] == 1
        assert not (spool.workers_dir / "ghost.alive").exists()

    def test_never_heartbeated_registration_ages_by_its_file(self, tmp_path):
        """A registration with no .alive file is judged by the json's
        mtime (the same grace signal the liveness check uses), so a
        just-registered worker survives and an ancient one does not."""
        spool = _spool(tmp_path)
        spool.register_worker("starting", pid=1)
        assert spool.compact()["workers"] == 0
        assert (spool.workers_dir / "starting.json").exists()
        assert spool.compact(now=time.time() + FAR_FUTURE)["workers"] == 1


class TestClaimDirAndErrorGC:
    def test_empty_claim_dir_of_a_dead_worker_is_removed(self, tmp_path):
        spool = _spool(tmp_path)
        (spool.claimed_dir / "departed").mkdir(parents=True)
        removed = spool.compact()
        assert removed["claim_dirs"] == 1
        assert not (spool.claimed_dir / "departed").exists()

    def test_nonempty_claim_dir_is_left_alone(self, tmp_path):
        spool = _spool(tmp_path)
        job = EchoJob("in-flight")
        spool.enqueue(job.fingerprint(), job)
        assert spool.claim("departed") is not None  # claim, then vanish
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        assert removed["claim_dirs"] == 0
        assert (spool.claimed_dir / "departed").is_dir()

    def test_live_workers_claim_dir_is_kept_even_when_empty(self, tmp_path):
        spool = _spool(tmp_path)
        spool.register_worker("busy", pid=1)
        spool.heartbeat("busy")
        (spool.claimed_dir / "busy").mkdir(parents=True)
        assert spool.compact()["claim_dirs"] == 0
        assert (spool.claimed_dir / "busy").is_dir()

    def test_old_error_files_are_dropped_and_fresh_ones_kept(self, tmp_path):
        spool = _spool(tmp_path)
        spool.report_error("aa" * 32, "w", RuntimeError("ancient"))
        spool.report_error("bb" * 32, "w", RuntimeError("fresh"))
        old = spool.errors_dir / f"{'aa' * 32}.json"
        back_then = time.time() - 7200
        import os

        os.utime(old, (back_then, back_then))
        removed = spool.compact(error_ttl=3600.0)
        assert removed["errors"] == 1
        assert not old.exists()
        assert (spool.errors_dir / f"{'bb' * 32}.json").exists()


class TestStopSentinelGC:
    def test_stale_sentinel_with_no_live_workers_is_cleared(self, tmp_path):
        spool = _spool(tmp_path)
        spool.request_stop()
        assert spool.compact(now=time.time() + FAR_FUTURE)["stop"] == 1
        assert not spool.stop_requested()

    def test_sentinel_is_kept_while_a_worker_lives_to_consume_it(self, tmp_path):
        import os

        spool = _spool(tmp_path)
        spool.register_worker("draining", pid=1)
        spool.heartbeat("draining")
        spool.request_stop()
        back_then = time.time() - FAR_FUTURE  # sentinel is ancient...
        os.utime(spool.stop_path, (back_then, back_then))
        assert spool.compact()["stop"] == 0  # ...but a live worker wants it
        assert spool.stop_requested()

    def test_fresh_sentinel_is_kept(self, tmp_path):
        spool = _spool(tmp_path)
        spool.request_stop()
        assert spool.compact()["stop"] == 0
        assert spool.stop_requested()


class TestCompactTelemetryAndIdempotence:
    def test_removals_count_into_the_compacted_metric(self, tmp_path):
        telemetry = Telemetry(tmp_path / "telemetry", writer="gc")
        spool = _spool(tmp_path, telemetry=telemetry)
        spool.register_worker("old", pid=1)
        spool.heartbeat("old")
        (spool.claimed_dir / "old").mkdir(parents=True)
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        total = sum(removed.values())
        assert total == 3  # json + alive + claim dir
        assert telemetry.metrics.counters["spool.compacted"] == total
        telemetry.close()

    def test_compact_on_a_clean_spool_is_a_noop(self, tmp_path):
        spool = _spool(tmp_path)
        removed = spool.compact(now=time.time() + FAR_FUTURE)
        assert removed == {
            "workers": 0,
            "heartbeats": 0,
            "claim_dirs": 0,
            "errors": 0,
            "stop": 0,
        }
        # And twice more, for idempotence.
        assert sum(spool.compact().values()) == 0


class TestRegistrationGrace:
    def test_fresh_registration_counts_alive_under_grace(self, tmp_path):
        """Satellite bugfix: a worker that registered but has not yet
        heartbeated (heartbeat_age == inf) must not read as instantly
        dead — the registration file's age covers the gap."""
        spool = _spool(tmp_path)
        spool.register_worker("booting", pid=1)
        # Simulate the pre-first-heartbeat window (register_worker touches
        # the heartbeat itself, so drop it to reproduce the gap).
        (spool.workers_dir / "booting.alive").unlink()
        (strict,) = spool.workers(liveness_timeout=0.0, registration_grace=0.0)
        assert not strict.alive
        (graced,) = spool.workers(liveness_timeout=0.0, registration_grace=10.0)
        assert graced.alive

    def test_grace_expires_with_the_registration_age(self, tmp_path):
        spool = _spool(tmp_path)
        spool.register_worker("stalled", pid=1)
        (spool.workers_dir / "stalled.alive").unlink()
        old = time.time() - 60
        import os

        path = spool.workers_dir / "stalled.json"
        os.utime(path, (old, old))
        (info,) = spool.workers(liveness_timeout=0.0, registration_grace=10.0)
        assert not info.alive

    def test_grace_does_not_resurrect_a_worker_that_heartbeated(self, tmp_path):
        """Once a worker has heartbeated, liveness is the heartbeat's
        business alone — grace must not mask a real death."""
        spool = _spool(tmp_path)
        spool.register_worker("died", pid=1)
        spool.heartbeat("died")
        old = time.time() - 60
        import os

        alive = spool.workers_dir / "died.alive"
        os.utime(alive, (old, old))
        (info,) = spool.workers(liveness_timeout=5.0, registration_grace=300.0)
        assert not info.alive
