"""Tests for the atlas grid compiler, runner integration and report."""

from __future__ import annotations

import pytest

from repro.atlas import AtlasSpec, build_report, run_atlas
from repro.atlas.grid import DEFAULT_SCENARIOS, coherent_behavior
from repro.atlas.report import (
    heatmap_csv,
    render_group_heatmap,
    render_heatmap,
    render_ranking,
    render_report,
)
from repro.runner import ExperimentRunner
from repro.sim.behavior import PeerBehavior

MICRO_AXES = {"ranking": ("fastest", "loyal")}
MICRO_SCENARIOS = ("baseline", "colluding-whitewash")


def micro_spec(**overrides):
    kwargs = dict(
        axes=MICRO_AXES,
        scenarios=MICRO_SCENARIOS,
        scale="smoke",
        repetitions=1,
    )
    kwargs.update(overrides)
    return AtlasSpec(**kwargs)


class TestAtlasSpec:
    def test_defaults_are_registered_and_micro(self):
        spec = AtlasSpec()
        assert set(DEFAULT_SCENARIOS) <= {c.scenario for c in spec.cells()}
        assert 1 < len(spec.protocols()) <= 12

    def test_axes_validation(self):
        with pytest.raises(ValueError):
            AtlasSpec(axes={"warp_drive": ("on",)})
        with pytest.raises(ValueError):
            AtlasSpec(axes={"ranking": ()})
        with pytest.raises(ValueError):
            AtlasSpec(axes={"ranking": ("sideways",)})
        with pytest.raises(ValueError):
            AtlasSpec(axes=MICRO_AXES, scenarios=("baseline", "baseline"))
        with pytest.raises(ValueError):
            AtlasSpec(axes=MICRO_AXES, repetitions=0)

    def test_incoherent_axis_corners_collapse(self):
        # 'none' forces h=0, so ('none', h=1..3) all collapse to one point:
        # 4 x 3 combinations -> 10 distinct protocols (as in the paper's
        # 10 stranger policies).
        spec = AtlasSpec(
            axes={
                "stranger_policy": ("none", "periodic", "when_needed", "defect"),
                "stranger_count": (1, 2, 3),
            },
            scenarios=("baseline",),
        )
        labels = [p.label for p in spec.protocols()]
        assert len(labels) == 10
        assert len(set(labels)) == 10

    def test_coherent_behavior_projections(self):
        base = PeerBehavior()
        none_point = coherent_behavior(base, {"stranger_policy": "none"})
        assert none_point.stranger_count == 0
        periodic = coherent_behavior(
            base, {"stranger_policy": "periodic", "stranger_count": 0}
        )
        assert periodic.stranger_count == 1

    def test_protocol_injection_preserves_subpopulations(self):
        spec = micro_spec(scenarios=("capacity-skew", "colluding-whitewash"))
        for cell in spec.cells():
            derived = spec.cell_spec(cell)
            assert derived.population.default_behavior == cell.protocol.behavior
            original = derived.name
            if original == "capacity-skew":
                seed_class = derived.population.classes[0]
                assert seed_class.behavior == PeerBehavior.generous_seed()
            else:
                clique = derived.population.groups[0]
                assert clique.behavior == PeerBehavior.colluder()

    def test_fingerprint_tracks_the_declaration(self):
        assert micro_spec().fingerprint() == micro_spec().fingerprint()
        assert micro_spec().fingerprint() != micro_spec(master_seed=1).fingerprint()

    def test_grid_growth_keeps_existing_jobs(self):
        small = micro_spec()
        grown = micro_spec(
            axes={"ranking": ("fastest", "loyal", "random")},
            scenarios=MICRO_SCENARIOS + ("whitewash-churn",),
            repetitions=2,
        )
        small_fps = {
            job.fingerprint() for _c, batch in small.jobs() for job in batch
        }
        grown_fps = {
            job.fingerprint() for _c, batch in grown.jobs() for job in batch
        }
        assert small_fps <= grown_fps


class TestRunAndCacheReuse:
    def test_superset_grid_simulates_only_new_cells(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        small = micro_spec()
        first = run_atlas(small, runner=runner)
        assert first.stats.executed == first.jobs_total
        assert first.stats.cache_hits == 0

        # Same grid, warm cache: nothing simulates.
        rerun = run_atlas(small, runner=runner)
        assert rerun.stats.executed == 0
        assert rerun.stats.cache_hits == rerun.jobs_total

        # Grown grid: only the genuinely new cells simulate.
        grown = micro_spec(axes={"ranking": ("fastest", "loyal", "random")})
        result = run_atlas(grown, runner=runner)
        new_jobs = result.jobs_total - first.jobs_total
        assert new_jobs > 0
        assert result.stats.executed == new_jobs
        assert result.stats.cache_hits == first.jobs_total

    def test_results_are_deterministic_per_seed(self):
        spec = micro_spec()
        first = render_report(build_report(run_atlas(spec, runner=ExperimentRunner())))
        second = render_report(build_report(run_atlas(spec, runner=ExperimentRunner())))
        assert first == second

    def test_unknown_scenario_fails_at_compile_time(self):
        spec = micro_spec(scenarios=("baseline", "not-a-scenario"))
        with pytest.raises(KeyError):
            spec.jobs()


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return build_report(run_atlas(micro_spec(), runner=ExperimentRunner()))

    def test_scores_are_normalised_within_scenarios(self, report):
        for scenario in report.scenarios:
            scores = [
                report.cell(protocol, scenario).score
                for protocol in report.protocols
            ]
            assert all(0.0 <= score <= 1.0 for score in scores)
            assert max(scores) == pytest.approx(1.0)

    def test_ranking_is_worst_case_ordered(self, report):
        ranks = [r.rank for r in report.rankings]
        assert ranks == list(range(1, len(report.protocols) + 1))
        worsts = [r.worst_score for r in report.rankings]
        assert worsts == sorted(worsts, reverse=True)
        for ranking in report.rankings:
            cell = report.cell(ranking.protocol, ranking.worst_scenario)
            assert cell.score == pytest.approx(ranking.worst_score)

    def test_group_heatmap_shows_the_clique(self, report):
        text = render_group_heatmap(report)
        assert "colluding-whitewash:colluder" in text
        assert "colluding-whitewash:default" in text

    def test_renderings_cover_every_protocol(self, report):
        for text in (render_ranking(report), render_heatmap(report)):
            for protocol in report.protocols:
                assert protocol in text

    def test_group_download_pools_cohorts_by_exposure(self):
        from repro.atlas.report import CellSummary, GroupCell

        founder = GroupCell(
            group="g", cohort="initial", peer_count=1, peer_rounds=100,
            downloaded_per_peer_round=10.0, download_share=0.5,
            departure_rate=0.0,
        )
        rejoiners = GroupCell(
            group="g", cohort="whitewash", peer_count=10, peer_rounds=10,
            downloaded_per_peer_round=2.0, download_share=0.5,
            departure_rate=1.0,
        )
        summary = CellSummary(
            protocol="p", scenario="s", repetitions=1,
            download_per_peer_round=0.0, score=0.0,
            groups=(founder, rejoiners),
        )
        # sum(download) / sum(peer-rounds): ten short-lived rejoiners must
        # not outweigh a founder present for the whole run (head-count
        # weighting would give (10*1 + 2*10) / 11 ≈ 2.7).
        assert summary.group_download("g") == pytest.approx(1020.0 / 110.0)
        with pytest.raises(KeyError):
            summary.group_download("absent")

    def test_csv_is_long_form_and_parseable(self, report):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(heatmap_csv(report))))
        assert rows
        assert {row["protocol"] for row in rows} == set(report.protocols)
        assert {row["scenario"] for row in rows} == set(report.scenarios)
        for row in rows:
            assert 0.0 <= float(row["cell_score"]) <= 1.0


class TestSwarmAtlas:
    @pytest.fixture(scope="class")
    def outcome(self):
        from repro.experiments import atlas as atlas_experiment

        return atlas_experiment.run_swarm(spec=micro_spec())

    def test_grid_scored_by_censored_time(self, outcome):
        spec = micro_spec()
        labels = outcome.protocol_labels()
        assert len(labels) == 2
        assert set(outcome.scores) == {
            (label, name) for label in labels for name in spec.scenarios
        }
        for score in outcome.scores.values():
            assert score > 0.0
        assert outcome.jobs_total == len(labels) * len(spec.scenarios)

    def test_relative_scores_normalised_per_scenario(self, outcome):
        for name in MICRO_SCENARIOS:
            column = [
                outcome.relative[(label, name)]
                for label in outcome.protocol_labels()
            ]
            assert max(column) == pytest.approx(1.0)
            assert all(0.0 < value <= 1.0 for value in column)

    def test_swarm_atlas_is_deterministic(self, outcome):
        from repro.experiments import atlas as atlas_experiment

        again = atlas_experiment.run_swarm(spec=micro_spec())
        assert again.scores == outcome.scores

    def test_render_orders_by_mean_relative(self, outcome):
        from repro.experiments.atlas import render_swarm

        text = render_swarm(outcome)
        assert "swarm robustness atlas" in text
        for label in outcome.protocol_labels():
            assert label in text
        for name in MICRO_SCENARIOS:
            assert name in text

    def test_csv_is_long_form_and_parseable(self, outcome):
        import csv
        import io

        rows = list(csv.DictReader(io.StringIO(outcome.csv())))
        assert len(rows) == len(outcome.scores)
        assert {row["scenario"] for row in rows} == set(MICRO_SCENARIOS)
        for row in rows:
            assert 0.0 < float(row["relative_score"]) <= 1.0
