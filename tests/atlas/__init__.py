"""Tests for the robustness atlas."""
