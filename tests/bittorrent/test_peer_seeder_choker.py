"""Tests for leecher state, the seeder, and the choking algorithm."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.choker import run_rechoke
from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.peer import Leecher
from repro.bittorrent.pieces import PieceSet
from repro.bittorrent.seeder import Seeder
from repro.bittorrent.variants import (
    loyal_when_needed_client,
    reference_bittorrent,
    sort_s_client,
)


def make_leecher(variant=None, piece_count=10, peer_id=0) -> Leecher:
    return Leecher(
        peer_id=peer_id,
        upload_capacity=100.0,
        variant=variant or reference_bittorrent(),
        pieces=PieceSet(piece_count),
    )


class TestLeecher:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Leecher(0, 0.0, reference_bittorrent(), PieceSet(5))

    def test_completion_lifecycle(self):
        leecher = make_leecher(piece_count=2)
        assert leecher.is_active and not leecher.is_complete
        leecher.pieces.add(0)
        leecher.pieces.add(1)
        assert leecher.is_complete
        leecher.completion_tick = 120
        assert leecher.download_time == 120.0
        assert not leecher.is_active

    def test_record_received_feeds_rates_and_period(self):
        leecher = make_leecher()
        leecher.record_received(3, tick=5, amount_kb=40.0)
        assert leecher.rates.rate(3, current_tick=6) > 0.0
        assert leecher.received_this_period[3] == 40.0

    def test_loyalty_period_update(self):
        leecher = make_leecher()
        leecher.record_received(3, 0, 10.0)
        leecher.update_loyalty_period()
        assert leecher.loyalty[3] == 1
        leecher.update_loyalty_period()  # no new data: reset
        assert leecher.loyalty[3] == 0
        assert leecher.received_this_period == {}

    def test_forget_neighbour_clears_all_state(self):
        leecher = make_leecher()
        leecher.neighbours = {3, 4}
        leecher.unchoked = {3}
        leecher.optimistic_target = 3
        leecher.in_flight[3] = 1
        leecher.loyalty[3] = 2
        leecher.record_received(3, 0, 5.0)
        leecher.forget_neighbour(3)
        assert 3 not in leecher.neighbours
        assert leecher.unchoked == set()
        assert leecher.optimistic_target is None
        assert leecher.in_flight == {}
        assert leecher.rates.rate(3, 1) == 0.0

    def test_currently_unchoked_includes_optimistic(self):
        leecher = make_leecher()
        leecher.unchoked = {1, 2}
        leecher.optimistic_target = 5
        assert leecher.currently_unchoked() == {1, 2, 5}

    def test_per_slot_rate(self):
        leecher = make_leecher(variant=reference_bittorrent())
        assert leecher.per_slot_rate(default_slots=3) == pytest.approx(100.0 / 4)


class TestSeeder:
    def test_requires_complete_pieces(self):
        with pytest.raises(ValueError):
            Seeder(peer_id=9, upload_capacity=128.0, pieces=PieceSet(4))

    def test_rechoke_bounded_by_slots(self, rng):
        seeder = Seeder(9, 128.0, PieceSet(4, complete=True), slots=2)
        unchoked = seeder.rechoke([1, 2, 3, 4, 5], rng)
        assert len(unchoked) == 2

    def test_rechoke_with_few_interested(self, rng):
        seeder = Seeder(9, 128.0, PieceSet(4, complete=True), slots=4)
        assert seeder.rechoke([1], rng) == {1}

    def test_forget_neighbour(self, rng):
        seeder = Seeder(9, 128.0, PieceSet(4, complete=True), slots=4)
        seeder.rechoke([1, 2], rng)
        seeder.forget_neighbour(1)
        assert 1 not in seeder.unchoked

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Seeder(9, 0.0, PieceSet(4, complete=True))
        with pytest.raises(ValueError):
            Seeder(9, 128.0, PieceSet(4, complete=True), slots=0)

    def test_rechoke_with_no_interested_clears_unchokes(self, rng):
        # An all-seeder swarm: nobody is interested in anyone, so the
        # seeder's unchoke set must drain rather than go stale.
        seeder = Seeder(9, 128.0, PieceSet(4, complete=True), slots=4)
        seeder.rechoke([1, 2], rng)
        assert seeder.unchoked
        assert seeder.rechoke([], rng) == set()
        assert seeder.unchoked == set()


class TestChoker:
    def test_regular_slots_take_top_ranked(self, rng):
        leecher = make_leecher(variant=reference_bittorrent())
        for neighbour, amount in ((1, 50.0), (2, 10.0), (3, 30.0), (4, 5.0)):
            leecher.record_received(neighbour, tick=5, amount_kb=amount)
        run_rechoke(leecher, [1, 2, 3, 4], tick=10, default_slots=2,
                    optimistic_rotation_due=False, rng=rng)
        assert leecher.unchoked == {1, 3}

    def test_optimistic_target_not_a_regular_unchoke(self, rng):
        leecher = make_leecher(variant=reference_bittorrent())
        for neighbour in (1, 2, 3, 4, 5):
            leecher.record_received(neighbour, tick=5, amount_kb=float(neighbour))
        run_rechoke(leecher, [1, 2, 3, 4, 5], tick=10, default_slots=2,
                    optimistic_rotation_due=True, rng=rng)
        assert leecher.optimistic_target is not None
        assert leecher.optimistic_target not in leecher.unchoked

    def test_never_policy_has_no_optimistic(self, rng):
        leecher = make_leecher(variant=sort_s_client())
        run_rechoke(leecher, [1, 2, 3], tick=0, default_slots=3,
                    optimistic_rotation_due=True, rng=rng)
        assert leecher.optimistic_target is None
        assert len(leecher.unchoked) == 1  # Sort-S overrides slots to 1

    def test_when_needed_only_when_short_of_candidates(self, rng):
        leecher = make_leecher(variant=loyal_when_needed_client())
        # Plenty of candidates: no optimistic unchoke.
        run_rechoke(leecher, [1, 2, 3, 4, 5], tick=0, default_slots=3,
                    optimistic_rotation_due=True, rng=rng)
        assert leecher.optimistic_target is None
        # Fewer candidates than slots: one extra optimistic unchoke.
        run_rechoke(leecher, [1, 2], tick=0, default_slots=3,
                    optimistic_rotation_due=False, rng=rng)
        assert leecher.optimistic_target is None or leecher.optimistic_target in {1, 2}

    def test_periodic_target_kept_between_rotations(self, rng):
        leecher = make_leecher(variant=reference_bittorrent())
        run_rechoke(leecher, [1, 2, 3, 4, 5], tick=0, default_slots=1,
                    optimistic_rotation_due=True, rng=rng)
        target = leecher.optimistic_target
        run_rechoke(leecher, [1, 2, 3, 4, 5], tick=10, default_slots=1,
                    optimistic_rotation_due=False, rng=rng)
        # Ranking may reshuffle the regular slot, but if the old target is
        # still a candidate it must be kept until the next rotation.
        if target not in leecher.unchoked:
            assert leecher.optimistic_target == target

    def test_departed_optimistic_target_replaced_mid_rechoke(self, rng):
        # A peer can leave the swarm between rotations; the next rechoke
        # must not keep pointing the optimistic slot at the ghost even
        # though the rotation is not yet due.
        leecher = make_leecher(variant=reference_bittorrent())
        for neighbour in (1, 2, 3, 4):
            leecher.record_received(neighbour, tick=5, amount_kb=float(neighbour))
        run_rechoke(leecher, [1, 2, 3, 4], tick=10, default_slots=2,
                    optimistic_rotation_due=True, rng=rng)
        departed = leecher.optimistic_target
        assert departed is not None
        remaining = [n for n in (1, 2, 3, 4) if n != departed]
        run_rechoke(leecher, remaining, tick=20, default_slots=2,
                    optimistic_rotation_due=False, rng=rng)
        assert leecher.optimistic_target != departed
        assert leecher.optimistic_target in remaining or (
            leecher.optimistic_target is None
        )

    def test_departed_peer_dropped_from_regular_slots(self, rng):
        # Regular slots are rebuilt from the candidate list every rechoke,
        # so a departed top-ranked neighbour silently falls out.
        leecher = make_leecher(variant=reference_bittorrent())
        for neighbour, amount in ((1, 50.0), (2, 10.0), (3, 30.0)):
            leecher.record_received(neighbour, tick=5, amount_kb=amount)
        run_rechoke(leecher, [1, 2, 3], tick=10, default_slots=2,
                    optimistic_rotation_due=False, rng=rng)
        assert 1 in leecher.unchoked
        run_rechoke(leecher, [2, 3], tick=20, default_slots=2,
                    optimistic_rotation_due=False, rng=rng)
        assert leecher.unchoked == {2, 3}

    def test_single_candidate_fills_one_slot(self, rng):
        leecher = make_leecher(variant=reference_bittorrent())
        run_rechoke(leecher, [4], tick=0, default_slots=3,
                    optimistic_rotation_due=False, rng=rng)
        assert leecher.unchoked == {4}
        assert leecher.optimistic_target is None

    def test_no_candidates_clears_unchokes(self, rng):
        leecher = make_leecher()
        leecher.unchoked = {1}
        leecher.optimistic_target = 2
        run_rechoke(leecher, [], tick=0, default_slots=3,
                    optimistic_rotation_due=True, rng=rng)
        assert leecher.unchoked == set()
        assert leecher.optimistic_target is None
