"""Tests for the tracker and the sliding-window rate estimator."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.rate import RateEstimator
from repro.bittorrent.tracker import Tracker


class TestTracker:
    def test_register_and_members(self):
        tracker = Tracker()
        tracker.register(1)
        tracker.register(2)
        assert tracker.members() == {1, 2}
        assert tracker.swarm_size == 2

    def test_unregister(self):
        tracker = Tracker()
        tracker.register(1)
        tracker.unregister(1)
        tracker.unregister(99)  # idempotent
        assert tracker.swarm_size == 0

    def test_announce_registers_and_excludes_self(self, rng):
        tracker = Tracker()
        tracker.register(1)
        peers = tracker.announce(2, rng)
        assert 2 not in peers
        assert set(peers) == {1}
        assert 2 in tracker.members()

    def test_announce_bounded(self, rng):
        tracker = Tracker(max_peers_per_announce=5)
        for peer_id in range(20):
            tracker.register(peer_id)
        assert len(tracker.announce(100, rng)) == 5

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            Tracker(max_peers_per_announce=0)


class TestRateEstimator:
    def test_rate_over_window(self):
        estimator = RateEstimator(window_ticks=10)
        estimator.record(1, tick=0, amount_kb=50.0)
        estimator.record(1, tick=5, amount_kb=50.0)
        assert estimator.rate(1, current_tick=9) == pytest.approx(10.0)

    def test_old_samples_pruned(self):
        estimator = RateEstimator(window_ticks=5)
        estimator.record(1, tick=0, amount_kb=100.0)
        assert estimator.rate(1, current_tick=10) == 0.0

    def test_unknown_neighbour_zero(self):
        assert RateEstimator().rate(42, 10) == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            RateEstimator().record(1, 0, -1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateEstimator(window_ticks=0)

    def test_total_received_and_known_neighbours(self):
        estimator = RateEstimator(window_ticks=20)
        estimator.record(1, 0, 5.0)
        estimator.record(2, 0, 7.0)
        assert estimator.total_received(1) == 5.0
        assert estimator.known_neighbours() == {1: 5.0, 2: 7.0}

    def test_forget(self):
        estimator = RateEstimator()
        estimator.record(1, 0, 5.0)
        estimator.forget(1)
        assert estimator.total_received(1) == 0.0
