"""Tests for the tracker and the sliding-window rate estimator."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.rate import RateEstimator, RateLimiter
from repro.bittorrent.tracker import Tracker


class TestTracker:
    def test_register_and_members(self):
        tracker = Tracker()
        tracker.register(1)
        tracker.register(2)
        assert tracker.members() == {1, 2}
        assert tracker.swarm_size == 2

    def test_unregister(self):
        tracker = Tracker()
        tracker.register(1)
        tracker.unregister(1)
        tracker.unregister(99)  # idempotent
        assert tracker.swarm_size == 0

    def test_announce_registers_and_excludes_self(self, rng):
        tracker = Tracker()
        tracker.register(1)
        peers = tracker.announce(2, rng)
        assert 2 not in peers
        assert set(peers) == {1}
        assert 2 in tracker.members()

    def test_announce_bounded(self, rng):
        tracker = Tracker(max_peers_per_announce=5)
        for peer_id in range(20):
            tracker.register(peer_id)
        assert len(tracker.announce(100, rng)) == 5

    def test_announce_into_empty_swarm(self, rng):
        # The very first arrival gets an empty peer list but is registered:
        # a scenario's seed joins an empty tracker this way.
        tracker = Tracker()
        assert tracker.announce(7, rng) == []
        assert tracker.members() == {7}

    def test_announce_after_everyone_left(self, rng):
        tracker = Tracker()
        tracker.register(1)
        tracker.register(2)
        tracker.unregister(1)
        tracker.unregister(2)
        assert tracker.announce(3, rng) == []

    def test_departed_peer_never_announced(self, rng):
        # Mid-run departures must stop being handed to new arrivals.
        tracker = Tracker()
        for peer_id in range(5):
            tracker.register(peer_id)
        tracker.unregister(3)
        for _ in range(10):
            assert 3 not in tracker.announce(100, rng)

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            Tracker(max_peers_per_announce=0)


class TestRateEstimator:
    def test_rate_over_window(self):
        estimator = RateEstimator(window_ticks=10)
        estimator.record(1, tick=0, amount_kb=50.0)
        estimator.record(1, tick=5, amount_kb=50.0)
        assert estimator.rate(1, current_tick=9) == pytest.approx(10.0)

    def test_old_samples_pruned(self):
        estimator = RateEstimator(window_ticks=5)
        estimator.record(1, tick=0, amount_kb=100.0)
        assert estimator.rate(1, current_tick=10) == 0.0

    def test_unknown_neighbour_zero(self):
        assert RateEstimator().rate(42, 10) == 0.0

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            RateEstimator().record(1, 0, -1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateEstimator(window_ticks=0)

    def test_total_received_and_known_neighbours(self):
        estimator = RateEstimator(window_ticks=20)
        estimator.record(1, 0, 5.0)
        estimator.record(2, 0, 7.0)
        assert estimator.total_received(1) == 5.0
        assert estimator.known_neighbours() == {1: 5.0, 2: 7.0}

    def test_forget(self):
        estimator = RateEstimator()
        estimator.record(1, 0, 5.0)
        estimator.forget(1)
        assert estimator.total_received(1) == 0.0


class TestRateLimiter:
    def test_full_budget_on_first_tick(self):
        limiter = RateLimiter(rate_kb_per_tick=60.0)
        assert limiter.available(0) == pytest.approx(60.0)

    def test_consume_reduces_budget_within_tick(self):
        limiter = RateLimiter(rate_kb_per_tick=60.0)
        limiter.available(0)
        limiter.consume(45.0)
        assert limiter.available(0) == pytest.approx(15.0)

    def test_refill_capped_at_burst(self):
        # With the default depth of one tick, idle ticks never accumulate
        # credit: the limiter reproduces "capacity per tick" exactly.
        limiter = RateLimiter(rate_kb_per_tick=60.0)
        limiter.available(0)
        limiter.consume(60.0)
        assert limiter.available(5) == pytest.approx(60.0)

    def test_burst_depth_accumulates_unused_credit(self):
        limiter = RateLimiter(rate_kb_per_tick=10.0, burst_ticks=3.0)
        limiter.available(0)
        limiter.consume(30.0)
        assert limiter.available(1) == pytest.approx(10.0)
        assert limiter.available(2) == pytest.approx(20.0)
        assert limiter.available(10) == pytest.approx(30.0)

    def test_zero_rate_forbids_upload(self):
        # The free-rider limiter.
        limiter = RateLimiter(rate_kb_per_tick=0.0)
        assert limiter.available(0) == 0.0
        assert limiter.available(100) == 0.0

    def test_overdraw_clamps_to_zero(self):
        limiter = RateLimiter(rate_kb_per_tick=10.0)
        limiter.available(0)
        limiter.consume(25.0)
        assert limiter.available(0) == 0.0
        assert limiter.available(1) == pytest.approx(10.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(rate_kb_per_tick=-1.0)
        with pytest.raises(ValueError):
            RateLimiter(rate_kb_per_tick=10.0, burst_ticks=0.5)
        limiter = RateLimiter(rate_kb_per_tick=10.0)
        with pytest.raises(ValueError):
            limiter.consume(-1.0)
