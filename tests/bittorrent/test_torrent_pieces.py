"""Tests for torrent metadata, piece sets and rarest-first selection."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.pieces import PieceSet, select_piece_rarest_first
from repro.bittorrent.torrent import TorrentMetadata


class TestTorrentMetadata:
    def test_piece_count_rounds_up(self):
        torrent = TorrentMetadata(total_size_kb=1000.0, piece_size_kb=256.0)
        assert torrent.piece_count == 4

    def test_exact_division(self):
        torrent = TorrentMetadata(total_size_kb=1024.0, piece_size_kb=256.0)
        assert torrent.piece_count == 4

    def test_for_file_helper(self):
        torrent = TorrentMetadata.for_file(5.0, piece_size_kb=256.0)
        assert torrent.piece_count == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_size_kb": 0.0},
            {"total_size_kb": 100.0, "piece_size_kb": 0.0},
            {"total_size_kb": 100.0, "piece_size_kb": 200.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            TorrentMetadata(**kwargs)

    def test_for_file_invalid_size(self):
        with pytest.raises(ValueError):
            TorrentMetadata.for_file(0.0)


class TestPieceSet:
    def test_empty_and_complete_construction(self):
        empty = PieceSet(5)
        full = PieceSet(5, complete=True)
        assert empty.owned_count() == 0 and not empty.is_complete
        assert full.owned_count() == 5 and full.is_complete

    def test_add_and_has(self):
        pieces = PieceSet(4)
        pieces.add(2)
        assert pieces.has(2)
        assert not pieces.has(1)
        assert pieces.missing() == {0, 1, 3}

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            PieceSet(3).add(3)
        with pytest.raises(IndexError):
            PieceSet(3).has(-1)

    def test_interest(self):
        a, b = PieceSet(4), PieceSet(4)
        b.add(1)
        assert a.is_interested_in(b)
        assert not b.is_interested_in(a)
        assert a.interesting_pieces(b) == {1}

    def test_no_interest_when_equal(self):
        a, b = PieceSet(3), PieceSet(3)
        a.add(0)
        b.add(0)
        assert not a.is_interested_in(b)

    def test_invalid_piece_count(self):
        with pytest.raises(ValueError):
            PieceSet(0)


class TestRarestFirst:
    def test_none_when_uploader_has_nothing_interesting(self, rng):
        downloader, uploader = PieceSet(4), PieceSet(4)
        assert select_piece_rarest_first(downloader, uploader, [], rng) is None

    def test_selects_rarest_among_neighbours(self, rng):
        downloader = PieceSet(3)
        uploader = PieceSet(3, complete=True)
        # Piece 0 is held by two neighbours, piece 1 by one, piece 2 by none.
        n1, n2 = PieceSet(3), PieceSet(3)
        n1.add(0)
        n2.add(0)
        n2.add(1)
        choice = select_piece_rarest_first(downloader, uploader, [n1, n2], rng)
        assert choice == 2

    def test_exclusion_respected_when_alternatives_exist(self, rng):
        downloader = PieceSet(3)
        uploader = PieceSet(3, complete=True)
        choice = select_piece_rarest_first(downloader, uploader, [], rng, exclude={0, 1})
        assert choice == 2

    def test_endgame_ignores_exclusion_when_nothing_left(self, rng):
        downloader = PieceSet(2)
        downloader.add(0)
        uploader = PieceSet(2, complete=True)
        choice = select_piece_rarest_first(downloader, uploader, [], rng, exclude={1})
        assert choice == 1

    def test_only_uploader_pieces_selected(self, rng):
        downloader = PieceSet(4)
        uploader = PieceSet(4)
        uploader.add(3)
        for _ in range(10):
            assert select_piece_rarest_first(downloader, uploader, [], rng) == 3

    def test_random_tie_break_varies(self):
        downloader = PieceSet(6)
        uploader = PieceSet(6, complete=True)
        choices = {
            select_piece_rarest_first(downloader, uploader, [], random.Random(seed))
            for seed in range(20)
        }
        assert len(choices) > 1
