"""Scenario-mode swarm tests: arrivals, departures, shifts and invariants.

The behaviour tests drive :class:`SwarmSimulation`'s scenario hooks directly
(join/depart/shift) where determinism matters; the property tests run whole
compiled scenarios under hypothesis-chosen seeds and check the invariants
that must hold on *every* arrival/departure path: per-tick byte
conservation, the active-set cap, and bit-identical per-seed replay.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.events import NetworkEvent
from repro.bittorrent.scenario import SwarmPeerPlan, SwarmScenarioConfig
from repro.bittorrent.swarm import SwarmSimulation
from repro.bittorrent.variants import reference_bittorrent
from repro.runner.jobs import result_to_payload
from repro.scenarios import SwarmJob, compile_swarm, get_scenario


def small_scenario(**overrides) -> SwarmScenarioConfig:
    """A 4-leecher scenario small enough for direct-hook tests."""
    base = SwarmConfig(n_leechers=4, file_size_mb=0.5, max_ticks=400)
    plan = SwarmPeerPlan(variant=reference_bittorrent())
    defaults = dict(base=base, plans=(plan,) * 4, rounds=40)
    defaults.update(overrides)
    return SwarmScenarioConfig(**defaults)


class TestScenarioHooks:
    def test_join_announces_with_bidirectional_links(self):
        sim = SwarmSimulation(scenario=small_scenario(), seed=1)
        plan = SwarmPeerPlan(variant=reference_bittorrent(), group="late")
        peer_id = sim._join(plan, tick=50, cohort="arrival")
        assert peer_id > sim.seeder_id
        assert peer_id in sim.tracker.members()
        assert peer_id in sim._active
        newcomer = sim.leechers[peer_id]
        assert sim.seeder_id in newcomer.neighbours
        assert newcomer.joined_tick == 50
        assert newcomer.group == "late" and newcomer.cohort == "arrival"
        # Connections are bidirectional: everyone announced to the newcomer
        # also learns of it.
        for other_id in newcomer.neighbours - {sim.seeder_id}:
            assert peer_id in sim.leechers[other_id].neighbours
        assert sim.arrivals == 1

    def test_depart_unregisters_and_purges_neighbour_state(self):
        sim = SwarmSimulation(scenario=small_scenario(), seed=2)
        sim._depart(0, tick=70)
        assert sim.leechers[0].departed_tick == 70
        assert 0 not in sim._active
        assert 0 not in sim.tracker.members()
        assert 0 not in sim.seeder.unchoked
        for other_id in sim._active:
            assert 0 not in sim.leechers[other_id].neighbours
        assert sim.departures == 1

    def test_departed_plan_reused_by_replacement(self):
        sim = SwarmSimulation(scenario=small_scenario(), seed=3)
        plan = sim._depart(1, tick=30)
        replacement = sim._join(plan, tick=30, cohort="churn", slot=1)
        assert replacement != 1
        assert sim._slot_peer[1] == replacement
        assert sim.leechers[replacement].variant is plan.variant

    def test_shift_turns_slot_occupants_into_free_riders(self):
        scenario = compile_swarm(get_scenario("free-rider-wave"), "smoke")
        sim = SwarmSimulation(scenario=scenario, seed=4)
        shift = scenario.shifts[0]
        sim._apply_shift(shift)
        for slot in shift.slot_ids:
            leecher = sim.leechers[sim._slot_peer[slot]]
            assert leecher.variant is shift.variant
            assert leecher.limiter is not None
            assert leecher.limiter.rate_kb_per_tick == 0.0
            if shift.group is not None:
                assert leecher.group == shift.group

    def test_free_rider_downloads_without_uploading(self):
        free = SwarmPeerPlan(variant=reference_bittorrent(), free_rider=True,
                             group="freeride")
        fair = SwarmPeerPlan(variant=reference_bittorrent())
        sim = SwarmSimulation(
            scenario=small_scenario(plans=(free, fair, fair, fair)), seed=5
        )
        sim.run()
        assert sim.leechers[0].uploaded_kb == 0.0
        assert sim.leechers[0].downloaded_kb > 0.0
        assert any(sim.leechers[p].uploaded_kb > 0.0 for p in (1, 2, 3))

    def test_total_degrade_silences_leecher_uploads(self):
        # severity-1.0 degradation on every leecher: only the (never
        # sampled) seeder can deliver data for the whole run.
        event = NetworkEvent(
            kind="degrade", start=0, duration=400, fraction=1.0, severity=1.0
        )
        sim = SwarmSimulation(scenario=small_scenario(events=(event,)), seed=6)
        result = sim.run()
        assert all(l.uploaded_kb == 0.0 for l in sim.leechers.values())
        assert result.total_transferred_kb > 0.0  # seeder still uploads

    def test_whitewash_rejoins_get_fresh_identities(self):
        scenario = compile_swarm(get_scenario("colluding-whitewash"), "smoke")
        sim = SwarmSimulation(scenario=scenario, seed=14)
        result = sim.run()
        rejoined = [r for r in result.records if r.cohort == "whitewash"]
        assert rejoined, "expected at least one whitewash rejoin at this seed"
        targets = set(scenario.arrivals.target_groups)
        for record in rejoined:
            assert record.peer_id > sim.seeder_id
            assert record.joined_tick > 0
            assert record.group in targets


SCENARIO_NAMES = st.sampled_from(
    ["baseline", "burst-churn", "colluding-whitewash", "growing-swarm"]
)
SEEDS = st.integers(min_value=0, max_value=2**31 - 1)


class TestScenarioInvariants:
    @settings(max_examples=10, deadline=None)
    @given(name=SCENARIO_NAMES, seed=SEEDS)
    def test_bytes_conserved_per_tick(self, name, seed):
        # Everything delivered in a tick lands in some leecher's piece set,
        # including peers that later depart mid-download.
        sim = SwarmSimulation(scenario=compile_swarm(get_scenario(name), "smoke"),
                              seed=seed)
        result = sim.run()
        assert len(sim.tick_transferred) == result.ticks_executed
        assert sum(sim.tick_transferred) == pytest.approx(
            result.total_transferred_kb
        )
        assert result.total_transferred_kb == pytest.approx(
            sum(r.downloaded_kb for r in result.records)
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=SEEDS)
    def test_poisson_growth_respects_active_cap(self, seed):
        scenario = compile_swarm(get_scenario("growing-swarm"), "smoke")
        cap = scenario.arrivals.max_active
        assert cap > 0
        sim = SwarmSimulation(scenario=scenario, seed=seed)
        result = sim.run()
        assert result.peak_active <= cap
        assert result.arrivals == len(
            [r for r in result.records if r.cohort != "initial"]
        )

    @settings(max_examples=6, deadline=None)
    @given(name=SCENARIO_NAMES, seed=SEEDS)
    def test_same_seed_replays_bit_identically(self, name, seed):
        job = SwarmJob(spec=get_scenario(name), scale="smoke", seed=seed)
        assert result_to_payload(job.execute()) == result_to_payload(job.execute())

    @settings(max_examples=10, deadline=None)
    @given(name=SCENARIO_NAMES, seed=SEEDS)
    def test_departure_bookkeeping_consistent(self, name, seed):
        result = SwarmSimulation(
            scenario=compile_swarm(get_scenario(name), "smoke"), seed=seed
        ).run()
        departed = [r for r in result.records if r.departed_tick is not None]
        assert result.departures == len(departed)
        for record in departed:
            assert record.joined_tick <= record.departed_tick
            assert record.download_time is None
