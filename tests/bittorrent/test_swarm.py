"""Tests for the swarm simulation driver and its config/metrics."""

from __future__ import annotations

import math

import pytest

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.metrics import pooled_download_times, summarize_by_variant
from repro.bittorrent.swarm import SwarmSimulation
from repro.bittorrent.variants import (
    birds_client,
    loyal_when_needed_client,
    reference_bittorrent,
    sort_s_client,
)
from repro.sim.bandwidth import ConstantBandwidth


@pytest.fixture
def config() -> SwarmConfig:
    return SwarmConfig(
        n_leechers=6,
        file_size_mb=0.5,
        piece_size_kb=128.0,
        max_ticks=1200,
        bandwidth=ConstantBandwidth(80.0),
    )


class TestSwarmConfig:
    def test_paper_defaults(self):
        config = SwarmConfig.paper()
        assert config.n_leechers == 50
        assert config.seeder_upload_kbps == 128.0
        assert config.file_size_mb == 5.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_leechers": 1},
            {"seeder_upload_kbps": 0},
            {"file_size_mb": 0},
            {"piece_size_kb": 0},
            {"rechoke_interval": 0},
            {"optimistic_interval": 5, "rechoke_interval": 10},
            {"regular_slots": 0},
            {"seeder_slots": 0},
            {"max_ticks": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SwarmConfig(**kwargs)

    def test_with_override(self):
        assert SwarmConfig().with_(n_leechers=10).n_leechers == 10


class TestSwarmSimulation:
    def test_variant_broadcast_and_count_check(self, config):
        sim = SwarmSimulation(config, [reference_bittorrent()], seed=0)
        assert len(sim.leechers) == config.n_leechers
        with pytest.raises(ValueError):
            SwarmSimulation(config, [reference_bittorrent()] * 3, seed=0)

    def test_all_leechers_complete_with_reference_client(self, config):
        result = SwarmSimulation(config, [reference_bittorrent()], seed=1).run()
        assert result.completion_fraction() == 1.0
        assert all(t > 0 for t in result.download_times())

    def test_download_times_bounded_by_horizon(self, config):
        result = SwarmSimulation(config, [reference_bittorrent()], seed=1).run()
        assert max(result.download_times()) <= config.max_ticks

    def test_deterministic_given_seed(self, config):
        a = SwarmSimulation(config, [reference_bittorrent()], seed=3).run()
        b = SwarmSimulation(config, [reference_bittorrent()], seed=3).run()
        assert a.download_times() == b.download_times()

    def test_seed_changes_outcome(self, config):
        a = SwarmSimulation(config, [reference_bittorrent()], seed=3).run()
        b = SwarmSimulation(config, [reference_bittorrent()], seed=4).run()
        assert a.download_times() != b.download_times()

    def test_all_variants_complete_homogeneous_swarms(self, config):
        for variant in (birds_client(), loyal_when_needed_client(), sort_s_client()):
            result = SwarmSimulation(config, [variant], seed=5).run()
            assert result.completion_fraction() == 1.0, variant.name

    def test_mixed_swarm_reports_both_variants(self, config):
        n = config.n_leechers
        variants = [reference_bittorrent()] * (n // 2) + [birds_client()] * (n - n // 2)
        result = SwarmSimulation(config, variants, seed=6).run()
        assert set(result.variants()) == {"BitTorrent", "Birds"}
        assert result.mean_download_time("Birds") > 0

    def test_faster_seeder_speeds_up_swarm(self, config):
        slow = SwarmSimulation(config, [reference_bittorrent()], seed=7).run()
        fast = SwarmSimulation(
            config.with_(seeder_upload_kbps=1024.0), [reference_bittorrent()], seed=7
        ).run()
        assert fast.mean_download_time() < slow.mean_download_time()

    def test_mean_download_time_nan_when_none_completed(self, config):
        # A one-tick horizon: nobody can complete.
        result = SwarmSimulation(
            config.with_(max_ticks=config.rechoke_interval), [reference_bittorrent()], seed=8
        ).run()
        assert math.isnan(result.mean_download_time())
        assert result.completion_fraction() == 0.0


class TestSwarmMetrics:
    def test_summaries_per_variant(self, config):
        n = config.n_leechers
        variants = [reference_bittorrent()] * (n // 2) + [birds_client()] * (n - n // 2)
        results = [SwarmSimulation(config, variants, seed=s).run() for s in (0, 1)]
        summaries = summarize_by_variant(results)
        assert set(summaries) == {"BitTorrent", "Birds"}
        assert summaries["Birds"].count == 2 * (n - n // 2)

    def test_pooled_download_times_counts(self, config):
        results = [SwarmSimulation(config, [reference_bittorrent()], seed=s).run() for s in (0, 1)]
        assert len(pooled_download_times(results)) == 2 * config.n_leechers
        assert len(pooled_download_times(results, "BitTorrent")) == 2 * config.n_leechers
        assert pooled_download_times(results, "Birds") == []
