"""Tests for network-event scenarios (link degradation, partition/heal)."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.events import NetworkEvent, NetworkState

SEEDER = 99


def make_state(*events):
    return NetworkState(events, seeder_id=SEEDER)


class TestNetworkEvent:
    def test_end_property(self):
        event = NetworkEvent(kind="degrade", start=10, duration=5, fraction=0.5)
        assert event.end == 15

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "meteor", "start": 0, "duration": 1, "fraction": 0.5},
            {"kind": "degrade", "start": -1, "duration": 1, "fraction": 0.5},
            {"kind": "degrade", "start": 0, "duration": 0, "fraction": 0.5},
            {"kind": "degrade", "start": 0, "duration": 1, "fraction": 0.0},
            {"kind": "degrade", "start": 0, "duration": 1, "fraction": 1.5},
            {
                "kind": "degrade",
                "start": 0,
                "duration": 1,
                "fraction": 0.5,
                "severity": 2.0,
            },
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetworkEvent(**kwargs)


class TestNetworkState:
    def test_no_events_no_effect(self):
        state = make_state()
        state.advance(0, {1, 2, 3}, random.Random(0))
        assert state.capacity_factor(1) == 1.0
        assert not state.blocked(1, 2)
        assert not state.partitioned

    def test_degrade_scales_capacity_inside_window_only(self):
        event = NetworkEvent(
            kind="degrade", start=5, duration=10, fraction=1.0, severity=0.5
        )
        state = make_state(event)
        rng = random.Random(1)
        active = {1, 2, 3}
        state.advance(0, active, rng)
        assert all(state.capacity_factor(p) == 1.0 for p in active)
        state.advance(5, active, rng)
        assert all(state.capacity_factor(p) == pytest.approx(0.5) for p in active)
        state.advance(15, active, rng)  # window closed
        assert all(state.capacity_factor(p) == 1.0 for p in active)

    def test_degrade_sample_respects_fraction_and_excludes_seeder(self):
        event = NetworkEvent(
            kind="degrade", start=0, duration=10, fraction=0.5, severity=1.0
        )
        state = make_state(event)
        active = set(range(10)) | {SEEDER}
        state.advance(0, active, random.Random(2))
        degraded = {p for p in active if state.capacity_factor(p) < 1.0}
        assert len(degraded) == 5
        assert SEEDER not in degraded

    def test_partition_blocks_cross_side_pairs_only(self):
        event = NetworkEvent(kind="partition", start=0, duration=10, fraction=0.4)
        state = make_state(event)
        active = set(range(10))
        state.advance(0, active, random.Random(3))
        assert state.partitioned
        inside = {p for p in active if state.blocked(p, SEEDER)}
        outside = active - inside
        assert len(inside) == 4
        for a in inside:
            for b in inside:
                assert not state.blocked(a, b)
            for b in outside:
                assert state.blocked(a, b)
        state.advance(10, active, random.Random(3))  # heal
        assert not state.partitioned

    def test_membership_frozen_at_window_open(self):
        # The affected sample is drawn once when the window opens; peers
        # arriving later are unaffected even while the window is hot.
        event = NetworkEvent(
            kind="degrade", start=0, duration=20, fraction=1.0, severity=1.0
        )
        state = make_state(event)
        rng = random.Random(4)
        state.advance(0, {1, 2}, rng)
        state.advance(1, {1, 2, 3}, rng)
        assert state.capacity_factor(1) == 0.0
        assert state.capacity_factor(3) == 1.0

    def test_overlapping_degrades_compound(self):
        a = NetworkEvent(
            kind="degrade", start=0, duration=10, fraction=1.0, severity=0.5
        )
        b = NetworkEvent(
            kind="degrade", start=0, duration=10, fraction=1.0, severity=0.5
        )
        state = make_state(a, b)
        state.advance(0, {1}, random.Random(5))
        assert state.capacity_factor(1) == pytest.approx(0.25)
