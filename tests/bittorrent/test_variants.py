"""Tests for BitTorrent client variants."""

from __future__ import annotations

import random

import pytest

from repro.bittorrent.variants import (
    ClientVariant,
    birds_client,
    loyal_when_needed_client,
    random_client,
    reference_bittorrent,
    sort_s_client,
    variant_by_name,
)


class TestValidation:
    def test_unknown_ranking(self):
        with pytest.raises(ValueError):
            ClientVariant(name="x", ranking="bogus")

    def test_unknown_optimistic_policy(self):
        with pytest.raises(ValueError):
            ClientVariant(name="x", optimistic_policy="bogus")

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            ClientVariant(name="x", regular_slots=0)

    def test_effective_slots(self):
        assert ClientVariant(name="x").effective_slots(3) == 3
        assert ClientVariant(name="x", regular_slots=1).effective_slots(3) == 1


class TestNamedVariants:
    def test_reference_bittorrent(self):
        variant = reference_bittorrent()
        assert variant.ranking == "fastest"
        assert variant.optimistic_policy == "periodic"

    def test_birds(self):
        assert birds_client().ranking == "proximity"

    def test_loyal_when_needed(self):
        variant = loyal_when_needed_client()
        assert variant.ranking == "loyal"
        assert variant.optimistic_policy == "when_needed"

    def test_sort_s(self):
        variant = sort_s_client()
        assert variant.ranking == "slowest"
        assert variant.optimistic_policy == "never"
        assert variant.regular_slots == 1

    def test_random(self):
        assert random_client().ranking == "random"

    def test_lookup_by_name(self):
        assert variant_by_name("birds").name == "Birds"
        assert variant_by_name("BitTorrent").ranking == "fastest"
        with pytest.raises(KeyError):
            variant_by_name("unknown")


class TestRanking:
    def _rank(self, variant, rates, loyalty=None, own_rate=25.0, seed=0):
        candidates = list(rates)
        return variant.rank(
            candidates, rates, loyalty or {}, own_rate, random.Random(seed)
        )

    def test_fastest(self):
        order = self._rank(reference_bittorrent(), {1: 5.0, 2: 50.0, 3: 20.0})
        assert order == [2, 3, 1]

    def test_slowest(self):
        order = self._rank(sort_s_client(), {1: 5.0, 2: 50.0, 3: 20.0})
        assert order == [1, 3, 2]

    def test_proximity_prefers_own_rate(self):
        order = self._rank(birds_client(), {1: 24.0, 2: 100.0}, own_rate=25.0)
        assert order[0] == 1

    def test_loyal_prefers_long_standing(self):
        order = self._rank(
            loyal_when_needed_client(), {1: 100.0, 2: 1.0}, loyalty={1: 0, 2: 5}
        )
        assert order[0] == 2

    def test_random_is_permutation(self):
        order = self._rank(random_client(), {1: 1.0, 2: 2.0, 3: 3.0})
        assert sorted(order) == [1, 2, 3]

    def test_missing_rates_treated_as_zero(self):
        order = reference_bittorrent().rank(
            [1, 2], {1: 10.0}, {}, 25.0, random.Random(0)
        )
        assert order[0] == 1
