"""Tests for the PRA quantification primitives."""

from __future__ import annotations

import pytest

from repro.core.pra import (
    PRAConfig,
    aggressiveness_tournament,
    measure_performance,
    normalize_scores,
    robustness_tournament,
)
from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


def defector() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Defector",
    )


@pytest.fixture
def config() -> PRAConfig:
    return PRAConfig(
        sim=SimulationConfig(n_peers=8, rounds=12, bandwidth=ConstantBandwidth(100.0)),
        performance_runs=1,
        encounter_runs=1,
        seed=0,
    )


class TestPRAConfig:
    def test_presets(self):
        assert PRAConfig.paper().performance_runs == 100
        assert PRAConfig.paper().encounter_runs == 10
        assert PRAConfig.smoke().performance_runs == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"performance_runs": 0},
            {"encounter_runs": 0},
            {"robustness_split": 0.0},
            {"aggressiveness_split": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            PRAConfig(sim=SimulationConfig.smoke(), **kwargs)

    def test_with_override(self, config):
        assert config.with_(encounter_runs=5).encounter_runs == 5


class TestMeasurePerformance:
    def test_cooperator_outperforms_defector(self, config):
        raw = measure_performance([bittorrent_reference(), defector()], config)
        assert raw[bittorrent_reference().key] > raw[defector().key]

    def test_deterministic(self, config):
        protocols = [bittorrent_reference(), defector()]
        assert measure_performance(protocols, config) == measure_performance(protocols, config)

    def test_one_entry_per_protocol(self, config):
        protocols = [bittorrent_reference(), loyal_when_needed(), defector()]
        raw = measure_performance(protocols, config)
        assert set(raw) == {p.key for p in protocols}


class TestNormalizeScores:
    def test_best_maps_to_one(self):
        normalized = normalize_scores({"a": 2.0, "b": 4.0})
        assert normalized == {"a": 0.5, "b": 1.0}

    def test_all_zero_stays_zero(self):
        assert normalize_scores({"a": 0.0, "b": 0.0}) == {"a": 0.0, "b": 0.0}

    def test_empty(self):
        assert normalize_scores({}) == {}


class TestTournaments:
    def test_robustness_defector_low(self, config):
        protocols = [bittorrent_reference(), loyal_when_needed(), defector()]
        outcome = robustness_tournament(protocols, config)
        assert outcome.scores[defector().key] <= min(
            outcome.scores[bittorrent_reference().key],
            outcome.scores[loyal_when_needed().key],
        )

    def test_robustness_split_override(self, config):
        protocols = [bittorrent_reference(), defector()]
        outcome = robustness_tournament(protocols, config, split=0.9)
        assert outcome.mode == "symmetric@0.9"

    def test_aggressiveness_mode(self, config):
        protocols = [bittorrent_reference(), defector()]
        outcome = aggressiveness_tournament(protocols, config)
        assert outcome.mode == "minority@0.1"
        assert set(outcome.scores) == {p.key for p in protocols}
