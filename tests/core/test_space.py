"""Tests for the enumerated Section 4.2 design space."""

from __future__ import annotations

import pytest

from repro.core.protocol import bittorrent_reference, sort_s
from repro.core.space import DesignSpace
from repro.sim.behavior import PeerBehavior


class TestEnumeration:
    def test_full_space_has_3270_protocols(self, design_space):
        assert len(design_space) == 3270

    def test_dimension_sizes_match_paper(self, design_space):
        stranger, selection, allocation = design_space.dimension_sizes()
        assert stranger == 10
        assert selection == 109
        assert allocation == 3

    def test_ids_are_stable_and_consistent(self, design_space):
        for index in (0, 1, 500, 1234, 3269):
            assert design_space.protocol(index).protocol_id == index

    def test_out_of_range_rejected(self, design_space):
        with pytest.raises(IndexError):
            design_space.protocol(3270)
        with pytest.raises(IndexError):
            design_space.protocol(-1)

    def test_all_labels_unique(self, design_space):
        labels = {design_space.protocol(i).label for i in range(len(design_space))}
        assert len(labels) == len(design_space)

    def test_iteration_matches_indexing(self, design_space):
        first_ten = [p.label for _, p in zip(range(10), iter(design_space))]
        assert first_ten == [design_space.protocol(i).label for i in range(10)]

    def test_getitem(self, design_space):
        assert design_space[5].protocol_id == 5


class TestIndexOf:
    def test_roundtrip_for_sampled_ids(self, design_space):
        for index in range(0, len(design_space), 217):
            protocol = design_space.protocol(index)
            assert design_space.index_of(protocol.behavior) == index

    def test_named_protocols_present(self, design_space):
        assert design_space.contains(bittorrent_reference().behavior)
        assert design_space.contains(sort_s().behavior)

    def test_zero_partner_behaviour_maps_to_canonical_entry(self, design_space):
        behaviour = PeerBehavior(partner_count=0, ranking="loyal", candidate_policy="tf2t")
        index = design_space.index_of(behaviour)
        canonical = design_space.protocol(index)
        assert canonical.behavior.partner_count == 0

    def test_unknown_behaviour_rejected(self):
        reduced = DesignSpace.reduced(partner_counts=(1,), stranger_counts=(1,))
        with pytest.raises(KeyError):
            reduced.index_of(PeerBehavior(partner_count=5))

    def test_contains_false_for_missing(self):
        reduced = DesignSpace.reduced(partner_counts=(1,), stranger_counts=(1,))
        assert not reduced.contains(PeerBehavior(partner_count=5))


class TestReducedSpace:
    def test_reduced_size(self):
        space = DesignSpace.reduced(partner_counts=(1, 5), stranger_counts=(1,))
        # stranger: 1 + 3*1 = 4; selection: 1 + 2*6*2 = 25; allocation 3.
        assert len(space) == 4 * 25 * 3

    def test_reduced_space_still_covers_all_rankings(self):
        space = DesignSpace.reduced(partner_counts=(3,), stranger_counts=(1,))
        rankings = {p.behavior.ranking for p in space}
        assert rankings == {"fastest", "slowest", "proximity", "adaptive", "loyal", "random"}


class TestSampling:
    def test_sample_size_and_distinctness(self, design_space):
        sample = design_space.sample(25, seed=0)
        assert len(sample) == 25
        assert len({p.protocol_id for p in sample}) == 25

    def test_sample_reproducible(self, design_space):
        a = [p.protocol_id for p in design_space.sample(10, seed=3)]
        b = [p.protocol_id for p in design_space.sample(10, seed=3)]
        assert a == b

    def test_include_anchored_to_space_ids(self, design_space):
        bt = bittorrent_reference()
        sample = design_space.sample(8, seed=1, include=[bt])
        assert sample[0].name == "BitTorrent"
        assert sample[0].protocol_id == design_space.index_of(bt.behavior)

    def test_stratified_sample_covers_allocations(self, design_space):
        sample = design_space.sample(30, seed=2, method="stratified")
        allocations = {p.behavior.allocation for p in sample}
        assert allocations == {"equal_split", "prop_share", "freeride"}

    def test_random_sampling_method(self, design_space):
        sample = design_space.sample(10, seed=4, method="random")
        assert len(sample) == 10

    def test_invalid_method_rejected(self, design_space):
        with pytest.raises(ValueError):
            design_space.sample(5, method="magic")

    def test_sample_capped_at_space_size(self):
        space = DesignSpace.reduced(partner_counts=(1,), stranger_counts=(1,))
        sample = space.sample(10_000, seed=0)
        assert len(sample) == len(space)
