"""Tests for PRA study results and the study driver (with caching)."""

from __future__ import annotations

import pytest

from repro.core.pra import PRAConfig
from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed, sort_s
from repro.core.results import PRAStudyResult
from repro.core.study import PRAStudy
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


def defector() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Defector",
    )


@pytest.fixture
def config() -> PRAConfig:
    return PRAConfig(
        sim=SimulationConfig(n_peers=8, rounds=12, bandwidth=ConstantBandwidth(100.0)),
        performance_runs=1,
        encounter_runs=1,
        seed=0,
    )


@pytest.fixture
def protocols():
    return [bittorrent_reference(), loyal_when_needed(), sort_s(), defector()]


@pytest.fixture
def study_result(config, protocols) -> PRAStudyResult:
    PRAStudy.clear_memo()
    return PRAStudy(protocols, config).run()


class TestPRAStudy:
    def test_scores_for_every_protocol(self, study_result, protocols):
        keys = {p.key for p in protocols}
        assert set(study_result.performance) == keys
        assert set(study_result.robustness) == keys
        assert set(study_result.aggressiveness) == keys

    def test_scores_in_unit_interval(self, study_result):
        for scores in (study_result.performance, study_result.robustness,
                       study_result.aggressiveness):
            assert all(0.0 <= v <= 1.0 for v in scores.values())

    def test_best_performance_is_one(self, study_result):
        assert max(study_result.performance.values()) == pytest.approx(1.0)

    def test_memo_returns_same_object(self, config, protocols):
        PRAStudy.clear_memo()
        first = PRAStudy(protocols, config).run()
        second = PRAStudy(protocols, config).run()
        assert first is second

    def test_disk_cache_roundtrip(self, config, protocols, tmp_path):
        PRAStudy.clear_memo()
        first = PRAStudy(protocols, config, cache_dir=tmp_path).run()
        PRAStudy.clear_memo()
        second = PRAStudy(protocols, config, cache_dir=tmp_path).run()
        assert second.performance == first.performance
        assert second.robustness == first.robustness

    def test_fingerprint_changes_with_config(self, config, protocols):
        a = PRAStudy(protocols, config)
        b = PRAStudy(protocols, config.with_(seed=99))
        assert a.fingerprint != b.fingerprint

    def test_duplicate_protocols_rejected(self, config):
        with pytest.raises(ValueError):
            PRAStudy([bittorrent_reference(), bittorrent_reference()], config)

    def test_single_protocol_study(self, config):
        PRAStudy.clear_memo()
        result = PRAStudy([bittorrent_reference()], config).run()
        assert result.robustness[bittorrent_reference().key] == 0.0


class TestPRAStudyResult:
    def test_rows_contain_coordinates_and_scores(self, study_result):
        rows = study_result.rows()
        assert len(rows) == 4
        for row in rows:
            assert {"stranger", "ranking", "allocation", "k", "h"} <= set(row)
            assert 0.0 <= row["performance"] <= 1.0

    def test_rank_of(self, study_result):
        best_key = study_result.top_by_performance(1)[0][0]
        assert study_result.rank_of(best_key, "performance") == 1

    def test_rank_of_unknown_key(self, study_result):
        with pytest.raises(KeyError):
            study_result.rank_of("nope")

    def test_top_by_measures_sorted(self, study_result):
        top = study_result.top_by_robustness(4)
        scores = [s for _k, s in top]
        assert scores == sorted(scores, reverse=True)

    def test_protocol_by_key(self, study_result):
        key = bittorrent_reference().key
        assert study_result.protocol_by_key(key).name == "BitTorrent"
        with pytest.raises(KeyError):
            study_result.protocol_by_key("missing")

    def test_correlation_finite(self, study_result):
        r = study_result.robustness_aggressiveness_correlation()
        assert -1.0 <= r <= 1.0 or r != r  # allow nan for degenerate smoke data

    def test_json_roundtrip(self, study_result, tmp_path):
        path = study_result.save(tmp_path / "study.json")
        restored = PRAStudyResult.load(path)
        assert restored.performance == study_result.performance
        assert restored.keys() == study_result.keys()
        assert restored.protocol_by_key(bittorrent_reference().key).behavior == \
            bittorrent_reference().behavior

    def test_scores_of(self, study_result):
        key = study_result.keys()[0]
        p, r, a = study_result.scores_of(key)
        assert p == study_result.performance[key]
        assert r == study_result.robustness[key]
        assert a == study_result.aggressiveness[key]
