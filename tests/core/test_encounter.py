"""Tests for two-protocol encounters."""

from __future__ import annotations

import pytest

from repro.core.encounter import run_encounter
from repro.core.protocol import Protocol, bittorrent_reference
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


@pytest.fixture
def sim_config() -> SimulationConfig:
    return SimulationConfig(n_peers=10, rounds=15, bandwidth=ConstantBandwidth(100.0))


def full_defector() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Defector",
    )


class TestRunEncounter:
    def test_cooperator_beats_full_defector(self, sim_config):
        outcome = run_encounter(
            bittorrent_reference(), full_defector(), sim_config, runs=3, seed=0
        )
        assert outcome.wins_a == 3
        assert outcome.wins_b == 0
        assert outcome.mean_download_a > outcome.mean_download_b
        assert outcome.winner() == bittorrent_reference().key

    def test_population_split_counts(self, sim_config):
        outcome = run_encounter(
            bittorrent_reference(), full_defector(), sim_config, fraction_a=0.1, runs=1, seed=0
        )
        assert outcome.peers_a == 1
        assert outcome.peers_b == sim_config.n_peers - 1

    def test_minority_fraction_never_rounds_to_zero(self, sim_config):
        outcome = run_encounter(
            bittorrent_reference(), full_defector(), sim_config, fraction_a=0.01, runs=1, seed=0
        )
        assert outcome.peers_a == 1

    def test_win_rates_sum_at_most_one(self, sim_config):
        outcome = run_encounter(
            bittorrent_reference(), full_defector(), sim_config, runs=4, seed=1
        )
        assert outcome.win_rate_a + outcome.win_rate_b <= 1.0 + 1e-9
        assert outcome.wins_a + outcome.wins_b + outcome.ties == outcome.runs

    def test_deterministic_given_seed(self, sim_config):
        a = run_encounter(bittorrent_reference(), full_defector(), sim_config, runs=2, seed=5)
        b = run_encounter(bittorrent_reference(), full_defector(), sim_config, runs=2, seed=5)
        assert a == b

    def test_seed_changes_means(self, sim_config):
        a = run_encounter(bittorrent_reference(), full_defector(), sim_config, runs=1, seed=5)
        b = run_encounter(bittorrent_reference(), full_defector(), sim_config, runs=1, seed=6)
        assert a.mean_download_a != b.mean_download_a

    def test_invalid_runs(self, sim_config):
        with pytest.raises(ValueError):
            run_encounter(bittorrent_reference(), full_defector(), sim_config, runs=0)

    def test_invalid_fraction(self, sim_config):
        with pytest.raises(ValueError):
            run_encounter(
                bittorrent_reference(), full_defector(), sim_config, fraction_a=1.0
            )

    def test_self_encounter_statistically_balanced(self, sim_config):
        outcome = run_encounter(
            bittorrent_reference(),
            Protocol(bittorrent_reference().behavior, name="Clone"),
            sim_config,
            runs=6,
            seed=2,
        )
        # Identical protocols should not produce a lopsided result.
        assert abs(outcome.wins_a - outcome.wins_b) <= 4
