"""Tests for heuristic design-space search."""

from __future__ import annotations

import pytest

from repro.core.pra import PRAConfig
from repro.core.protocol import Protocol, bittorrent_reference, sort_s
from repro.core.search import (
    EvolutionarySearch,
    HillClimbingSearch,
    SearchObjective,
    protocol_neighbors,
)
from repro.core.space import DesignSpace
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


@pytest.fixture
def space() -> DesignSpace:
    return DesignSpace.default()


@pytest.fixture
def objective() -> SearchObjective:
    config = PRAConfig(
        sim=SimulationConfig(n_peers=8, rounds=10, bandwidth=ConstantBandwidth(100.0)),
        performance_runs=1,
        encounter_runs=1,
        seed=0,
    )
    freerider = Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )
    return SearchObjective([bittorrent_reference(), freerider], config)


class TestSearchObjective:
    def test_requires_panel_and_positive_weights(self):
        config = PRAConfig.smoke()
        with pytest.raises(ValueError):
            SearchObjective([], config)
        with pytest.raises(ValueError):
            SearchObjective([bittorrent_reference()], config, performance_weight=-1)
        with pytest.raises(ValueError):
            SearchObjective(
                [bittorrent_reference()], config,
                performance_weight=0, robustness_weight=0, aggressiveness_weight=0,
            )

    def test_evaluation_memoised(self, objective):
        protocol = bittorrent_reference()
        first = objective.evaluate(protocol)
        count = objective.evaluations
        second = objective.evaluate(protocol)
        assert first == second
        assert objective.evaluations == count == 1
        assert objective.cached(protocol) == first

    def test_values_in_unit_interval(self, objective):
        value = objective.evaluate(sort_s())
        assert 0.0 <= value.performance <= 1.0
        assert 0.0 <= value.robustness <= 1.0
        assert 0.0 <= value.score <= 1.0

    def test_cooperator_scores_above_freerider(self, objective):
        freerider = Protocol(
            PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        )
        assert objective.evaluate(bittorrent_reference()).score > objective.evaluate(freerider).score


class TestProtocolNeighbors:
    def test_neighbors_differ_in_one_dimension(self, space):
        protocol = space.protocol(space.index_of(bittorrent_reference().behavior))
        for neighbor in protocol_neighbors(protocol, space):
            a, b = protocol.behavior, neighbor.behavior
            differences = sum(
                1
                for fields in (
                    ("stranger_policy", "stranger_count"),
                    ("candidate_policy",),
                    ("ranking",),
                    ("partner_count",),
                    ("allocation",),
                )
                if any(getattr(a, f) != getattr(b, f) for f in fields)
            )
            assert differences == 1

    def test_neighbors_are_space_members_with_ids(self, space):
        protocol = space.protocol(1234)
        neighbors = protocol_neighbors(protocol, space)
        assert neighbors
        for neighbor in neighbors:
            assert neighbor.protocol_id is not None
            assert space.protocol(neighbor.protocol_id).label == neighbor.label

    def test_no_duplicate_neighbors(self, space):
        protocol = space.protocol(42)
        labels = [n.label for n in protocol_neighbors(protocol, space)]
        assert len(labels) == len(set(labels))

    def test_partner_count_bounds_respected(self, space):
        zero_partner = space.protocol(space.index_of(PeerBehavior(partner_count=0)))
        for neighbor in protocol_neighbors(zero_partner, space):
            assert neighbor.behavior.partner_count >= 0


class TestHillClimbingSearch:
    def test_respects_budget_and_returns_best(self, space, objective):
        search = HillClimbingSearch(space, objective, max_evaluations=15, restarts=2, seed=1)
        result = search.run()
        assert result.evaluations <= 15
        assert result.best_score == max(score for _label, score in result.trajectory)

    def test_start_point_honoured(self, space, objective):
        search = HillClimbingSearch(space, objective, max_evaluations=10, restarts=1, seed=1)
        result = search.run(start=bittorrent_reference())
        assert result.trajectory[0][0] == bittorrent_reference().behavior.label()

    def test_best_never_a_full_defector(self, space, objective):
        search = HillClimbingSearch(space, objective, max_evaluations=30, restarts=2, seed=3)
        result = search.run(start=bittorrent_reference())
        assert not result.best_protocol.behavior.uploads_nothing

    def test_validation(self, space, objective):
        with pytest.raises(ValueError):
            HillClimbingSearch(space, objective, max_evaluations=0)
        with pytest.raises(ValueError):
            HillClimbingSearch(space, objective, restarts=0)


class TestEvolutionarySearch:
    def test_runs_within_budget(self, space, objective):
        search = EvolutionarySearch(
            space, objective, population_size=4, generations=2,
            elite=1, max_evaluations=20, seed=2,
        )
        result = search.run()
        assert result.evaluations <= 20
        assert result.best_value.score >= 0.0

    def test_initial_population_used(self, space, objective):
        search = EvolutionarySearch(
            space, objective, population_size=4, generations=1,
            elite=1, max_evaluations=20, seed=2,
        )
        result = search.run(initial_population=[bittorrent_reference(), sort_s()])
        labels = {label for label, _score in result.trajectory}
        assert bittorrent_reference().behavior.label() in labels

    def test_validation(self, space, objective):
        with pytest.raises(ValueError):
            EvolutionarySearch(space, objective, population_size=1)
        with pytest.raises(ValueError):
            EvolutionarySearch(space, objective, population_size=4, elite=4)
        with pytest.raises(ValueError):
            EvolutionarySearch(space, objective, generations=0)
        with pytest.raises(ValueError):
            EvolutionarySearch(space, objective, mutation_probability=1.5)
