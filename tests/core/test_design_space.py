"""Tests for the generic Parameterization / Actualization framework."""

from __future__ import annotations

import pytest

from repro.core.design_space import (
    Actualization,
    Dimension,
    Parameterization,
    generic_p2p_parameterization,
    gossip_parameterization,
)


class TestActualization:
    def test_requires_code_and_name(self):
        with pytest.raises(ValueError):
            Actualization("", "x")
        with pytest.raises(ValueError):
            Actualization("X", "")


class TestDimension:
    def test_cardinality(self):
        dim = Dimension("d", "", (Actualization("A", "a"), Actualization("B", "b")))
        assert dim.cardinality == 2

    def test_lookup_by_code(self):
        dim = Dimension("d", "", (Actualization("A", "a"),))
        assert dim.actualization("A").name == "a"
        with pytest.raises(KeyError):
            dim.actualization("Z")

    def test_duplicate_codes_rejected(self):
        with pytest.raises(ValueError):
            Dimension("d", "", (Actualization("A", "a"), Actualization("A", "b")))

    def test_codes_order_preserved(self):
        dim = Dimension("d", "", (Actualization("B", "b"), Actualization("A", "a")))
        assert dim.codes() == ["B", "A"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Dimension("", "desc")


class TestParameterization:
    def test_size_is_product_of_cardinalities(self):
        param = Parameterization(
            "p",
            [
                Dimension("a", "", (Actualization("A1", "x"), Actualization("A2", "y"))),
                Dimension("b", "", (Actualization("B1", "x"),)),
                Dimension("c", ""),  # no declared actualizations: counts as 1
            ],
        )
        assert param.size() == 2

    def test_dimension_lookup(self):
        param = generic_p2p_parameterization()
        assert param.dimension("Stranger Policy").cardinality == 3
        with pytest.raises(KeyError):
            param.dimension("nope")

    def test_duplicate_dimension_names_rejected(self):
        with pytest.raises(ValueError):
            Parameterization("p", [Dimension("a", ""), Dimension("a", "")])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Parameterization("p", [])

    def test_describe_mentions_every_dimension(self):
        text = generic_p2p_parameterization().describe()
        for name in ("Peer Discovery", "Stranger Policy", "Selection Function", "Resource Allocation"):
            assert name in text


class TestPaperParameterizations:
    def test_generic_p2p_dimension_names(self):
        names = generic_p2p_parameterization().dimension_names()
        assert names == [
            "Peer Discovery",
            "Stranger Policy",
            "Selection Function",
            "Resource Allocation",
        ]

    def test_generic_p2p_contains_section42_codes(self):
        param = generic_p2p_parameterization()
        selection = param.dimension("Selection Function")
        assert {"C1", "C2", "I1", "I2", "I3", "I4", "I5", "I6"} <= set(selection.codes())
        allocation = param.dimension("Resource Allocation")
        assert allocation.codes() == ["R1", "R2", "R3"]

    def test_gossip_example_has_four_dimensions(self):
        assert len(gossip_parameterization().dimensions) == 4


class TestBehaviorAxes:
    def test_axes_cover_every_swept_dimension(self):
        from repro.core.design_space import BEHAVIOR_AXES

        assert set(BEHAVIOR_AXES) == {
            "stranger_policy", "stranger_count", "candidate_policy",
            "ranking", "partner_count", "allocation",
        }

    def test_parse_axis_value_accepts_codes_and_field_values(self):
        from repro.core.design_space import parse_axis_value

        assert parse_axis_value("ranking", "I5") == "loyal"
        assert parse_axis_value("ranking", "loyal") == "loyal"
        assert parse_axis_value("partner_count", "4") == 4
        assert parse_axis_value("allocation", "R2") == "prop_share"
        with pytest.raises(ValueError):
            parse_axis_value("ranking", "I9")
        with pytest.raises(ValueError):
            parse_axis_value("partner_count", "99")
        with pytest.raises(ValueError):
            parse_axis_value("warp", "I1")

    def test_parse_axes_declaration(self):
        from repro.core.design_space import parse_axes

        axes = parse_axes("ranking=I1, loyal; allocation=R1")
        assert axes == {
            "ranking": ("fastest", "loyal"),
            "allocation": ("equal_split",),
        }
        with pytest.raises(ValueError):
            parse_axes("ranking=I1;ranking=I2")
        with pytest.raises(ValueError):
            parse_axes("ranking=I1,I1")
        with pytest.raises(ValueError):
            parse_axes("ranking")
        with pytest.raises(ValueError):
            parse_axes("  ")
