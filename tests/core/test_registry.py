"""Tests for the Table 2 system registry."""

from __future__ import annotations

from repro.core.registry import DIMENSIONS, SYSTEM_REGISTRY, registry_rows, registry_table


class TestRegistry:
    def test_contains_the_six_table2_systems(self):
        names = {system.name for system in SYSTEM_REGISTRY}
        assert names == {
            "P2P Replica Storage",
            "Give-to-Get (GTG)",
            "Maze",
            "Pulse",
            "BarterCast",
            "Private BT Communities",
        }

    def test_dimension_values_cover_all_columns(self):
        for system in SYSTEM_REGISTRY:
            values = system.dimension_values()
            assert list(values) == list(DIMENSIONS)
            assert all(values.values())

    def test_rows_align_with_registry(self):
        rows = registry_rows()
        assert len(rows) == len(SYSTEM_REGISTRY)
        assert rows[0][0] == SYSTEM_REGISTRY[0].name
        assert all(len(row) == 5 for row in rows)

    def test_rendered_table_mentions_every_system(self):
        text = registry_table()
        for system in SYSTEM_REGISTRY:
            assert system.name in text
