"""Tests for imitation dynamics and the evolutionary-stability check."""

from __future__ import annotations

import pytest

from repro.core.evolution import (
    EvolutionConfig,
    ImitationDynamics,
    is_evolutionarily_stable,
)
from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


def freerider() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Freerider",
    )


@pytest.fixture
def config() -> EvolutionConfig:
    return EvolutionConfig(
        sim=SimulationConfig(n_peers=10, rounds=20, bandwidth=ConstantBandwidth(100.0)),
        generations=5,
        imitation_rate=0.5,
        mutation_rate=0.0,
        seed=0,
    )


class TestEvolutionConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"generations": 0},
            {"imitation_rate": 1.5},
            {"mutation_rate": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            EvolutionConfig(sim=SimulationConfig.smoke(), **kwargs)


class TestImitationDynamics:
    def test_requires_two_distinct_protocols(self, config):
        with pytest.raises(ValueError):
            ImitationDynamics([bittorrent_reference()], config)
        with pytest.raises(ValueError):
            ImitationDynamics([bittorrent_reference(), bittorrent_reference()], config)

    def test_unknown_initial_share_rejected(self, config):
        with pytest.raises(ValueError):
            ImitationDynamics(
                [bittorrent_reference(), freerider()], config,
                initial_shares={"nope": 1.0},
            )

    def test_shares_sum_to_one_every_generation(self, config):
        result = ImitationDynamics(
            [bittorrent_reference(), loyal_when_needed(), freerider()], config
        ).run()
        assert len(result.records) == config.generations
        for record in result.records:
            assert sum(record.shares.values()) == pytest.approx(1.0)

    def test_cooperators_displace_freeriders(self, config):
        result = ImitationDynamics(
            [bittorrent_reference(), freerider()], config
        ).run()
        final = result.final_shares()
        assert final[bittorrent_reference().key] > final[freerider().key]
        assert result.dominant_protocol() == bittorrent_reference().key

    def test_share_trajectory_length(self, config):
        result = ImitationDynamics([bittorrent_reference(), freerider()], config).run()
        trajectory = result.share_trajectory(freerider().key)
        assert len(trajectory) == config.generations
        assert trajectory[0] == pytest.approx(0.5)

    def test_mutation_keeps_extinct_protocols_reachable(self, config):
        mutating = EvolutionConfig(
            sim=config.sim, generations=5, imitation_rate=0.5, mutation_rate=0.3, seed=1
        )
        result = ImitationDynamics(
            [bittorrent_reference(), freerider()], mutating,
            initial_shares={bittorrent_reference().key: 1.0, freerider().key: 0.0},
        ).run()
        # With a high mutation rate the freerider reappears at some point.
        assert any(share > 0 for share in result.share_trajectory(freerider().key))

    def test_deterministic_given_seed(self, config):
        a = ImitationDynamics([bittorrent_reference(), freerider()], config).run()
        b = ImitationDynamics([bittorrent_reference(), freerider()], config).run()
        assert a.final_shares() == b.final_shares()


class TestEvolutionaryStability:
    def test_cooperator_resists_freerider_invasion(self, config):
        assert is_evolutionarily_stable(bittorrent_reference(), freerider(), config)

    def test_freerider_does_not_resist_cooperator_invasion(self, config):
        assert not is_evolutionarily_stable(
            freerider(), bittorrent_reference(), config, invader_share=0.3
        )

    def test_parameter_validation(self, config):
        with pytest.raises(ValueError):
            is_evolutionarily_stable(
                bittorrent_reference(), freerider(), config, invader_share=0.6
            )
        with pytest.raises(ValueError):
            is_evolutionarily_stable(
                bittorrent_reference(), freerider(), config, survival_threshold=0.0
            )
