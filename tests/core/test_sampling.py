"""Tests for design-space sampling strategies."""

from __future__ import annotations

import pytest

from repro.core.protocol import bittorrent_reference, birds_protocol
from repro.core.sampling import sample_protocols
from repro.core.space import DesignSpace


@pytest.fixture
def space() -> DesignSpace:
    return DesignSpace.default()


class TestSampleProtocols:
    def test_invalid_count(self, space):
        with pytest.raises(ValueError):
            sample_protocols(space, 0)

    def test_invalid_method(self, space):
        with pytest.raises(ValueError):
            sample_protocols(space, 5, method="nope")

    def test_random_and_stratified_both_distinct(self, space):
        for method in ("random", "stratified"):
            sample = sample_protocols(space, 20, seed=1, method=method)
            ids = [p.protocol_id for p in sample]
            assert len(set(ids)) == 20

    def test_stratified_covers_stranger_policies(self, space):
        sample = sample_protocols(space, 40, seed=0, method="stratified")
        strangers = {p.behavior.stranger_policy for p in sample}
        assert strangers == {"none", "periodic", "when_needed", "defect"}

    def test_stratified_covers_rankings(self, space):
        sample = sample_protocols(space, 40, seed=0, method="stratified")
        rankings = {p.behavior.ranking for p in sample}
        assert len(rankings) == 6

    def test_include_counts_towards_total(self, space):
        included = [bittorrent_reference(), birds_protocol()]
        sample = sample_protocols(space, 10, seed=0, include=included)
        assert len(sample) == 10
        assert sample[0].name == "BitTorrent"
        assert sample[1].name == "Birds"

    def test_included_not_duplicated(self, space):
        included = [bittorrent_reference()]
        sample = sample_protocols(space, 30, seed=0, include=included)
        bt_id = space.index_of(bittorrent_reference().behavior)
        assert [p.protocol_id for p in sample].count(bt_id) == 1

    def test_include_larger_than_count_rejected(self, space):
        with pytest.raises(ValueError):
            sample_protocols(space, 1, include=[bittorrent_reference(), birds_protocol()])

    def test_duplicate_includes_collapsed(self, space):
        sample = sample_protocols(
            space, 5, include=[bittorrent_reference(), bittorrent_reference()]
        )
        names = [p.name for p in sample if p.name == "BitTorrent"]
        assert len(names) == 1

    def test_seed_changes_sample(self, space):
        a = {p.protocol_id for p in sample_protocols(space, 15, seed=1)}
        b = {p.protocol_id for p in sample_protocols(space, 15, seed=2)}
        assert a != b
