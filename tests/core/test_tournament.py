"""Tests for the round-robin protocol tournament."""

from __future__ import annotations

import pytest

from repro.core.protocol import Protocol, bittorrent_reference, loyal_when_needed
from repro.core.tournament import Tournament
from repro.sim.behavior import PeerBehavior
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.config import SimulationConfig


@pytest.fixture
def sim_config() -> SimulationConfig:
    return SimulationConfig(n_peers=8, rounds=12, bandwidth=ConstantBandwidth(100.0))


def defector() -> Protocol:
    return Protocol(
        PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
        name="Defector",
    )


@pytest.fixture
def protocols():
    return [bittorrent_reference(), loyal_when_needed(), defector()]


class TestTournamentValidation:
    def test_needs_two_protocols(self, sim_config):
        with pytest.raises(ValueError):
            Tournament([bittorrent_reference()], sim_config)

    def test_unique_keys_required(self, sim_config):
        with pytest.raises(ValueError):
            Tournament([bittorrent_reference(), bittorrent_reference()], sim_config)


class TestSymmetricTournament:
    def test_scores_in_unit_interval(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_symmetric()
        assert set(outcome.scores) == {p.key for p in protocols}
        assert all(0.0 <= s <= 1.0 for s in outcome.scores.values())

    def test_games_counted_per_protocol(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=2, seed=0).run_symmetric()
        for key in outcome.games:
            assert outcome.games[key] == (len(protocols) - 1) * 2

    def test_encounter_count(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_symmetric()
        assert len(outcome.encounters) == len(protocols) * (len(protocols) - 1) // 2

    def test_defector_ranked_last(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_symmetric()
        assert outcome.ranking()[-1] == defector().key

    def test_progress_callback_invoked(self, protocols, sim_config):
        calls = []
        Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_symmetric(
            progress=lambda done, total: calls.append((done, total))
        )
        assert calls[-1][0] == calls[-1][1] == len(protocols) * (len(protocols) - 1) // 2


class TestMinorityTournament:
    def test_ordered_pairs_counted(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_minority()
        assert len(outcome.encounters) == len(protocols) * (len(protocols) - 1)
        for key in outcome.games:
            assert outcome.games[key] == len(protocols) - 1

    def test_mode_labels(self, protocols, sim_config):
        tournament = Tournament(protocols, sim_config, encounter_runs=1, seed=0)
        assert tournament.run_symmetric(split=0.5).mode == "symmetric@0.5"
        assert tournament.run_minority(0.1).mode == "minority@0.1"

    def test_scores_in_unit_interval(self, protocols, sim_config):
        outcome = Tournament(protocols, sim_config, encounter_runs=1, seed=0).run_minority()
        assert all(0.0 <= s <= 1.0 for s in outcome.scores.values())
