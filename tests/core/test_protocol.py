"""Tests for Protocol and the named protocols of the paper."""

from __future__ import annotations

import pytest

from repro.core.protocol import (
    Protocol,
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    random_ranking_protocol,
    sort_s,
)
from repro.sim.behavior import PeerBehavior


class TestProtocolBasics:
    def test_label_matches_behavior(self):
        protocol = bittorrent_reference()
        assert protocol.label == protocol.behavior.label()

    def test_key_uses_id_when_present(self):
        protocol = Protocol(PeerBehavior(), protocol_id=17)
        assert protocol.key == "17"

    def test_key_falls_back_to_label(self):
        protocol = Protocol(PeerBehavior())
        assert protocol.key == protocol.label

    def test_display_name(self):
        assert bittorrent_reference().display_name == "BitTorrent"
        assert Protocol(PeerBehavior()).display_name == PeerBehavior().label()

    def test_dict_roundtrip(self):
        protocol = Protocol(PeerBehavior(ranking="loyal"), protocol_id=3, name="X")
        restored = Protocol.from_dict(protocol.as_dict())
        assert restored.behavior == protocol.behavior
        assert restored.protocol_id == 3
        assert restored.name == "X"


class TestCoordinates:
    def test_coordinate_codes(self):
        coords = loyal_when_needed().coordinates()
        assert coords["stranger"] == "B2"
        assert coords["candidate"] == "C1"
        assert coords["ranking"] == "I5"
        assert coords["allocation"] == "R1"
        assert coords["k"] == 4
        assert coords["h"] == 2

    def test_partner_and_stranger_counts(self):
        protocol = sort_s()
        assert protocol.number_of_partners == 1
        assert protocol.number_of_strangers == 1


class TestPredicates:
    def test_freerider_predicate(self):
        freerider = Protocol(PeerBehavior(allocation="freeride"))
        assert freerider.is_freerider
        assert not bittorrent_reference().is_freerider

    def test_defects_on_strangers(self):
        assert sort_s().defects_on_strangers
        assert not bittorrent_reference().defects_on_strangers

    def test_birds_variant_predicate(self):
        assert birds_protocol().is_birds_variant
        assert not bittorrent_reference().is_birds_variant
        prop_share_proximity = Protocol(
            PeerBehavior(ranking="proximity", allocation="prop_share")
        )
        assert not prop_share_proximity.is_birds_variant


class TestNamedProtocols:
    def test_bittorrent_reference_shape(self):
        behavior = bittorrent_reference().behavior
        assert behavior.ranking == "fastest"
        assert behavior.stranger_policy == "periodic"
        assert behavior.allocation == "equal_split"

    def test_birds_uses_proximity(self):
        assert birds_protocol().behavior.ranking == "proximity"

    def test_loyal_when_needed_shape(self):
        behavior = loyal_when_needed().behavior
        assert behavior.ranking == "loyal"
        assert behavior.stranger_policy == "when_needed"

    def test_sort_s_shape(self):
        behavior = sort_s().behavior
        assert behavior.ranking == "slowest"
        assert behavior.stranger_policy == "defect"
        assert behavior.partner_count == 1
        assert behavior.allocation == "equal_split"

    def test_random_protocol_shape(self):
        assert random_ranking_protocol().behavior.ranking == "random"

    def test_named_protocols_have_distinct_behaviours(self):
        behaviours = {
            p.behavior
            for p in (
                bittorrent_reference(),
                birds_protocol(),
                loyal_when_needed(),
                sort_s(),
                random_ranking_protocol(),
            )
        }
        assert len(behaviours) == 5
