"""10k-peer statistical-equivalence smoke: vec kernels at bench scale.

The main equivalence suite (``test_vec_equivalence.py``) pins the vec
engine distributionally at smoke scale, where every selection segment is
small.  The partial-selection kernels (`repro.sim._vec_kernels`) switch
strategies with segment width and ``k`` — reduceat argmin for single-slot
segments, padded argpartition classes above — and a 10-peer smoke run
never exercises the wide classes.  This smoke runs one registered
scenario's dynamics at 10,000 peers through both engines and checks the
same distributional yardsticks, so a kernel bug that only manifests at
scale (wide width classes, large scratch reuse, chunked-history
compaction) trips a blocking CI gate rather than a benchmark.

Runtime is dominated by the pure-python fast engine (~seconds per seed at
10k), so the smoke is opt-in via ``REPRO_STAT_10K=1`` — the CI
statistical-equivalence job sets it; plain tier-1 runs skip it.

Thresholds were calibrated like the smoke-scale envelope: pinned at
~3-4x the observed vec-vs-fast statistic on this exact deterministic seed
batch (observed: pool KS 0.0043, mean rel 0.0024, departure rel 0.0045).
At this population the pooled peer-rate distribution is far tighter than
at smoke scale (~40k pooled samples), so the envelope is correspondingly
tight — drift a kernel and the KS statistic moves an order of magnitude.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Dict, List, Tuple

import pytest

from repro.scenarios.registry import get_scenario
from repro.sim.engine import simulate
from repro.stats.equivalence import ks_statistic, relative_difference

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_STAT_10K") != "1",
    reason="10k-peer equivalence smoke is opt-in: set REPRO_STAT_10K=1 "
    "(the CI statistical-equivalence job does)",
)

SCENARIO = "whitewash-churn"
N_PEERS = 10_000
ROUNDS = 20
N_SEEDS = 3
MASTER_SEED = 4242

#: Pinned envelope (see module docstring for the calibration discipline).
POOL_KS_LIMIT = 0.015
MEAN_REL_LIMIT = 0.01
DEP_REL_LIMIT = 0.02


def scaled_spec():
    """The registry scenario with its population raised to 10k peers."""
    spec = get_scenario(SCENARIO)
    return replace(
        spec,
        population=replace(spec.population, size=N_PEERS),
        rounds=ROUNDS,
    )


_batch_cache: Dict[str, dict] = {}


def run_batch(engine: str) -> dict:
    cached = _batch_cache.get(engine)
    if cached is not None:
        return cached
    spec = scaled_spec()
    per_seed: List[float] = []
    pooled: List[float] = []
    departures = 0
    total_rounds = 0
    for repetition in range(N_SEEDS):
        # ``paper`` scale applies no size/rounds factor, so the 10k
        # override above reaches the engines unchanged.
        job = spec.compile(
            scale="paper", seed=spec.job_seed(MASTER_SEED, repetition)
        )
        result = simulate(
            job.config,
            job.behaviors,
            groups=job.groups,
            seed=job.seed,
            engine=engine,
        )
        per_seed.append(result.download_per_peer_round())
        measured = job.config.measured_rounds
        for record in result.records:
            present = (
                record.rounds_present
                if record.rounds_present is not None
                else measured
            )
            if present:
                pooled.append(record.downloaded / present)
        departures += result.total_departures
        total_rounds += job.config.rounds
    summary = {
        "per_seed": per_seed,
        "pooled": pooled,
        "departure_rate": departures / total_rounds,
    }
    _batch_cache[engine] = summary
    return summary


def test_pooled_peer_rates_match_at_10k():
    vec = run_batch("vec")
    fast = run_batch("fast")
    statistic = ks_statistic(vec["pooled"], fast["pooled"])
    assert statistic <= POOL_KS_LIMIT, (
        f"{SCENARIO}@10k: pooled per-peer download-rate distributions "
        f"diverge (KS={statistic:.4f} > pinned {POOL_KS_LIMIT})"
    )


def test_mean_download_matches_at_10k():
    vec = run_batch("vec")
    fast = run_batch("fast")
    vec_mean = sum(vec["per_seed"]) / len(vec["per_seed"])
    fast_mean = sum(fast["per_seed"]) / len(fast["per_seed"])
    rel = relative_difference(vec_mean, fast_mean)
    assert rel <= MEAN_REL_LIMIT, (
        f"{SCENARIO}@10k: mean download/peer/round drifted "
        f"({vec_mean:.2f} vs {fast_mean:.2f}, rel={rel:.4f} > pinned "
        f"{MEAN_REL_LIMIT})"
    )


def test_departure_rate_matches_at_10k():
    vec = run_batch("vec")
    fast = run_batch("fast")
    rel = relative_difference(vec["departure_rate"], fast["departure_rate"])
    assert rel <= DEP_REL_LIMIT, (
        f"{SCENARIO}@10k: eviction rate drifted "
        f"(vec={vec['departure_rate']:.2f} vs "
        f"fast={fast['departure_rate']:.2f}, rel={rel:.4f} > pinned "
        f"{DEP_REL_LIMIT})"
    )
