"""Statistical-equivalence gate: ``vec`` engine vs the ``fast`` replica.

The vec engine draws its randomness from a numpy ``Generator`` instead of
the replica engines' Mersenne-Twister stream, so it cannot be pinned
bit-identically.  Its contract is distributional: for every registered
scenario, a deterministic batch of seeds is run through both engines and
the batches must be statistically indistinguishable.

Four checks per scenario, all on the same cached seed batch:

* **seed-level KS** — two-sample KS test on the per-seed
  ``download_per_peer_round`` samples at the classical alpha = 0.001
  critical value (seeds are genuinely independent, so the nominal
  threshold applies);
* **pooled peer-rate KS** — KS statistic on per-peer download-per-round-
  present values pooled across the batch, against a pinned per-scenario
  threshold (peers within one run are correlated, so the nominal critical
  value would be anti-conservative — see the calibration note below);
* **mean / per-cohort PRA tolerance** — relative difference of the batch
  mean download rate and of every cohort's pooled downloaded-per-peer-round
  (the PRA measure), against pinned per-scenario tolerances;
* **eviction-rate tolerance** — relative difference of the pooled true-
  departure rate per round; scenarios without departures must report
  exactly zero on both engines.

Calibration of the pinned thresholds
------------------------------------
Thresholds were calibrated empirically on this exact seed batch (master
seed 777, 32 repetitions, smoke scale) against two yardsticks: the
observed vec-vs-fast statistic, and a fast-vs-fast *null* batch run from a
different master seed, which measures the pure seed-noise floor of each
metric.  Every pinned threshold is ~2-2.5x the observed vec-vs-fast value
— tight where the metric is tight (baseline PRA differs by 0.1%), loose
where seed noise dominates (smoke-scale eviction counts are small-sample
Poisson) — and sits at or below the null floor wherever the null floor is
higher, so a real behavioural drift trips the gate while seed noise does
not.  Fail-loudly is the design goal: a vec change that alters the modelled
process (allocation arithmetic, ranking keys, arrival/departure handling)
moves these metrics far beyond the pinned envelope.

The whole suite runs the batch once per scenario and engine (cached at
module scope) to stay inside the tier-1 time budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import pytest

from repro.scenarios.registry import get_scenario, scenario_names
from repro.sim.engine import simulate
from repro.stats.equivalence import (
    ks_critical_value,
    ks_statistic,
    relative_difference,
)

MASTER_SEED = 777
N_SEEDS = 32
SCALE = "smoke"
SEED_KS_ALPHA = 0.001

#: Pinned per-scenario equivalence envelope.  Keys:
#: ``pool_ks``   — max KS statistic on pooled per-peer download rates,
#: ``mean_rel``  — max relative difference of batch mean download/peer/round,
#: ``pra_rel``   — max relative difference of any cohort's pooled PRA,
#: ``dep_rel``   — max relative difference of the pooled departure rate
#:                 (absent => the scenario must have zero departures).
THRESHOLDS: Dict[str, Dict[str, float]] = {
    "baseline": {"pool_ks": 0.12, "mean_rel": 0.05, "pra_rel": 0.05},
    "burst-churn": {"pool_ks": 0.25, "mean_rel": 0.25, "pra_rel": 0.25},
    "capacity-skew": {"pool_ks": 0.12, "mean_rel": 0.05, "pra_rel": 0.05},
    "colluders": {"pool_ks": 0.16, "mean_rel": 0.15, "pra_rel": 0.15},
    "colluding-whitewash": {
        "pool_ks": 0.15, "mean_rel": 0.25, "pra_rel": 0.45, "dep_rel": 0.12,
    },
    "flash-crowd": {"pool_ks": 0.18, "mean_rel": 0.28, "pra_rel": 0.28},
    "free-rider-wave": {"pool_ks": 0.10, "mean_rel": 0.05, "pra_rel": 0.05},
    "growing-swarm": {
        "pool_ks": 0.10, "mean_rel": 0.18, "pra_rel": 0.20, "dep_rel": 0.50,
    },
    # Event waves compile to correlated replacement churn on the round
    # engines: identities are replaced, never truly depart (no dep_rel).
    "network-faults": {"pool_ks": 0.15, "mean_rel": 0.15, "pra_rel": 0.15},
    "whitewash-churn": {
        "pool_ks": 0.10, "mean_rel": 0.15, "pra_rel": 0.20, "dep_rel": 0.25,
    },
}


@dataclass(frozen=True)
class BatchSummary:
    """Distributional summary of one (scenario, engine) seed batch."""

    per_seed_download: Tuple[float, ...]
    pooled_peer_rates: Tuple[float, ...]
    cohort_pra: Dict[str, float]
    departure_rate: float

    @property
    def mean_download(self) -> float:
        return sum(self.per_seed_download) / len(self.per_seed_download)


_batch_cache: Dict[Tuple[str, str], BatchSummary] = {}


def run_batch(scenario_name: str, engine: str) -> BatchSummary:
    """Run the pinned seed batch of a scenario on one engine (cached)."""
    key = (scenario_name, engine)
    cached = _batch_cache.get(key)
    if cached is not None:
        return cached
    spec = get_scenario(scenario_name)
    per_seed: List[float] = []
    pooled: List[float] = []
    cohort_down: Dict[str, float] = {}
    cohort_rounds: Dict[str, int] = {}
    departures = 0
    total_rounds = 0
    for repetition in range(N_SEEDS):
        job = spec.compile(scale=SCALE, seed=spec.job_seed(MASTER_SEED, repetition))
        result = simulate(
            job.config,
            job.behaviors,
            groups=job.groups,
            seed=job.seed,
            engine=engine,
        )
        per_seed.append(result.download_per_peer_round())
        measured = job.config.measured_rounds
        for record in result.records:
            present = (
                record.rounds_present
                if record.rounds_present is not None
                else measured
            )
            if present:
                pooled.append(record.downloaded / present)
        for cohort, metrics in result.cohort_metrics().items():
            cohort_down[cohort] = (
                cohort_down.get(cohort, 0.0) + metrics.total_downloaded
            )
            cohort_rounds[cohort] = (
                cohort_rounds.get(cohort, 0) + metrics.peer_rounds
            )
        departures += result.total_departures
        total_rounds += job.config.rounds
    summary = BatchSummary(
        per_seed_download=tuple(per_seed),
        pooled_peer_rates=tuple(pooled),
        cohort_pra={
            cohort: (cohort_down[cohort] / cohort_rounds[cohort])
            if cohort_rounds[cohort]
            else 0.0
            for cohort in cohort_down
        },
        departure_rate=departures / total_rounds,
    )
    _batch_cache[key] = summary
    return summary


def test_every_registered_scenario_has_a_pinned_envelope():
    """New scenarios must ship with calibrated thresholds, not defaults."""
    assert set(scenario_names()) == set(THRESHOLDS)


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_seed_level_download_distribution_matches(scenario_name):
    vec = run_batch(scenario_name, "vec")
    fast = run_batch(scenario_name, "fast")
    statistic = ks_statistic(vec.per_seed_download, fast.per_seed_download)
    critical = ks_critical_value(N_SEEDS, N_SEEDS, alpha=SEED_KS_ALPHA)
    assert statistic <= critical, (
        f"{scenario_name}: per-seed download distributions diverge "
        f"(KS={statistic:.3f} > {critical:.3f} at alpha={SEED_KS_ALPHA})"
    )


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_pooled_peer_download_share_distribution_matches(scenario_name):
    vec = run_batch(scenario_name, "vec")
    fast = run_batch(scenario_name, "fast")
    statistic = ks_statistic(vec.pooled_peer_rates, fast.pooled_peer_rates)
    limit = THRESHOLDS[scenario_name]["pool_ks"]
    assert statistic <= limit, (
        f"{scenario_name}: pooled per-peer download-rate distributions "
        f"diverge (KS={statistic:.3f} > pinned {limit})"
    )


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_mean_and_cohort_pra_within_envelope(scenario_name):
    vec = run_batch(scenario_name, "vec")
    fast = run_batch(scenario_name, "fast")
    limits = THRESHOLDS[scenario_name]
    mean_diff = relative_difference(vec.mean_download, fast.mean_download)
    assert mean_diff <= limits["mean_rel"], (
        f"{scenario_name}: mean download/peer/round drifted "
        f"({vec.mean_download:.2f} vs {fast.mean_download:.2f}, "
        f"rel={mean_diff:.3f} > pinned {limits['mean_rel']})"
    )
    cohorts = set(vec.cohort_pra) | set(fast.cohort_pra)
    for cohort in sorted(cohorts):
        pra_diff = relative_difference(
            vec.cohort_pra.get(cohort, 0.0), fast.cohort_pra.get(cohort, 0.0)
        )
        assert pra_diff <= limits["pra_rel"], (
            f"{scenario_name}: cohort {cohort!r} PRA drifted "
            f"(rel={pra_diff:.3f} > pinned {limits['pra_rel']})"
        )


@pytest.mark.parametrize("scenario_name", scenario_names())
def test_departure_rate_within_envelope(scenario_name):
    vec = run_batch(scenario_name, "vec")
    fast = run_batch(scenario_name, "fast")
    limit = THRESHOLDS[scenario_name].get("dep_rel")
    if limit is None:
        assert vec.departure_rate == 0.0 and fast.departure_rate == 0.0, (
            f"{scenario_name}: unexpected departures in a departure-free "
            f"scenario (vec={vec.departure_rate}, fast={fast.departure_rate})"
        )
        return
    dep_diff = relative_difference(vec.departure_rate, fast.departure_rate)
    assert dep_diff <= limit, (
        f"{scenario_name}: eviction rate drifted "
        f"(vec={vec.departure_rate:.4f} vs fast={fast.departure_rate:.4f}, "
        f"rel={dep_diff:.3f} > pinned {limit})"
    )
