"""Statistical-equivalence suites gating engines that are not bit-identical."""
