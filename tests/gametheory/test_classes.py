"""Tests for bandwidth-class populations."""

from __future__ import annotations

import pytest

from repro.gametheory.classes import BandwidthClass, ClassPopulation, piatek_classes


class TestBandwidthClass:
    def test_valid(self):
        cls = BandwidthClass("slow", 30.0, 10)
        assert cls.upload_speed == 30.0

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            BandwidthClass("x", 0.0, 5)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            BandwidthClass("x", 10.0, 0)


class TestClassPopulation:
    def _population(self):
        return ClassPopulation(
            [
                BandwidthClass("fast", 100.0, 5),
                BandwidthClass("slow", 10.0, 20),
                BandwidthClass("medium", 50.0, 10),
            ]
        )

    def test_sorted_by_speed(self):
        population = self._population()
        assert [c.name for c in population] == ["slow", "medium", "fast"]

    def test_aggregates(self):
        population = self._population()
        # Index 1 = medium: 5 faster, 20 slower, 10 in-class.
        assert population.aggregates(1) == (5, 20, 10)

    def test_total_peers(self):
        assert self._population().total_peers == 35

    def test_index_of(self):
        assert self._population().index_of("fast") == 2
        with pytest.raises(KeyError):
            self._population().index_of("nope")

    def test_expand_lengths(self):
        expanded = self._population().expand()
        assert len(expanded) == 35
        assert expanded.count(100.0) == 5

    def test_duplicate_speeds_rejected(self):
        with pytest.raises(ValueError):
            ClassPopulation(
                [BandwidthClass("a", 10.0, 1), BandwidthClass("b", 10.0, 1)]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ClassPopulation(
                [BandwidthClass("a", 10.0, 1), BandwidthClass("a", 20.0, 1)]
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClassPopulation([])

    def test_out_of_range_index(self):
        with pytest.raises(IndexError):
            self._population().peers_above(5)


class TestPiatekClasses:
    def test_total_matches_request(self):
        population = piatek_classes(50)
        assert population.total_peers == 50

    def test_slow_majority(self):
        population = piatek_classes(50)
        slow = population[population.index_of("slow")]
        fast = population[population.index_of("fast")]
        assert slow.count > fast.count

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            piatek_classes(5)
