"""Tests for the Section 2.2 analytical model and the Appendix Nash analysis."""

from __future__ import annotations

import pytest

from repro.gametheory.analytic import (
    SwarmModel,
    birds_is_nash_equilibrium,
    bittorrent_is_nash_equilibrium,
)
from repro.gametheory.classes import BandwidthClass, ClassPopulation, piatek_classes


@pytest.fixture
def model() -> SwarmModel:
    return SwarmModel(piatek_classes(50), regular_unchoke_slots=4)


@pytest.fixture
def two_class_model() -> SwarmModel:
    population = ClassPopulation(
        [BandwidthClass("slow", 25.0, 30), BandwidthClass("fast", 100.0, 20)]
    )
    return SwarmModel(population, regular_unchoke_slots=4)


class TestSwarmModelBasics:
    def test_nr_formula(self, model):
        na, nb, nc = model.population.aggregates(0)
        assert model.nr(0) == na + nb + nc - model.ur - 1

    def test_nr_same_for_all_classes(self, model):
        assert model.nr(0) == model.nr(1) == model.nr(2)

    def test_invalid_ur(self):
        with pytest.raises(ValueError):
            SwarmModel(piatek_classes(50), regular_unchoke_slots=0)

    def test_population_too_small(self):
        tiny = ClassPopulation([BandwidthClass("only", 10.0, 3)])
        with pytest.raises(ValueError):
            SwarmModel(tiny, regular_unchoke_slots=4)

    def test_assumption_violations_flagged(self):
        population = ClassPopulation(
            [BandwidthClass("slow", 10.0, 40), BandwidthClass("fast", 100.0, 2)]
        )
        model = SwarmModel(population, regular_unchoke_slots=4)
        # For the slow class there are only 2 faster peers (< Ur).
        assert model.assumption_violations(0)
        # For the fast class NC - 1 = 1 < Ur.
        assert model.assumption_violations(1)

    def test_assumptions_hold_for_piatek_slow_class(self, model):
        assert model.assumption_violations(0) == []


class TestHomogeneousExpectedWins:
    def test_bt_no_reciprocation_from_above(self, model):
        wins = model.bittorrent_expected_wins(0)
        assert wins.reciprocation["above"] == 0.0

    def test_bt_free_wins_from_above(self, model):
        na, _nb, _nc = model.population.aggregates(0)
        wins = model.bittorrent_expected_wins(0)
        assert wins.free["above"] == pytest.approx(na / model.nr(0))

    def test_bt_below_reciprocation_equals_free(self, model):
        wins = model.bittorrent_expected_wins(1)
        assert wins.reciprocation["below"] == pytest.approx(wins.free["below"])

    def test_bt_same_class_reciprocation_below_ur(self, model):
        wins = model.bittorrent_expected_wins(0)
        assert 0.0 < wins.reciprocation["same"] < model.ur

    def test_birds_reciprocates_only_in_class(self, model):
        wins = model.birds_expected_wins(0)
        assert wins.reciprocation["above"] == 0.0
        assert wins.reciprocation["below"] == 0.0
        assert wins.reciprocation["same"] == pytest.approx(model.ur)

    def test_birds_beats_bt_in_class_reciprocation(self, model):
        bt = model.bittorrent_expected_wins(0)
        birds = model.birds_expected_wins(0)
        assert birds.reciprocation["same"] > bt.reciprocation["same"]

    def test_totals_positive(self, model):
        for index in range(len(model.population)):
            assert model.bittorrent_expected_wins(index).total > 0
            assert model.birds_expected_wins(index).total > 0

    def test_top_class_has_no_free_wins_from_above(self, model):
        top = len(model.population) - 1
        assert model.bittorrent_expected_wins(top).free["above"] == 0.0


class TestDeviationAnalysis:
    def test_birds_deviant_gains_in_bt_swarm(self, model):
        analysis = model.birds_deviant_in_bittorrent_swarm(0)
        assert analysis.deviant_protocol == "Birds"
        assert analysis.advantage > 0
        assert analysis.deviation_profitable

    def test_bt_deviant_loses_in_birds_swarm(self, model):
        analysis = model.bittorrent_deviant_in_birds_swarm(0)
        assert analysis.deviant_protocol == "BitTorrent"
        assert analysis.advantage < 0
        assert not analysis.deviation_profitable

    def test_same_conclusions_for_two_class_swarm(self, two_class_model):
        assert two_class_model.birds_deviant_in_bittorrent_swarm(0).deviation_profitable
        assert not two_class_model.bittorrent_deviant_in_birds_swarm(0).deviation_profitable

    def test_residents_beat_deviant_in_birds_swarm_reciprocation(self, model):
        analysis = model.bittorrent_deviant_in_birds_swarm(0)
        assert (
            analysis.resident_wins.reciprocation["same"]
            > analysis.deviant_wins.reciprocation["same"]
        )

    def test_single_member_class_rejected(self):
        population = ClassPopulation(
            [BandwidthClass("slow", 10.0, 30), BandwidthClass("fast", 100.0, 1)]
        )
        model = SwarmModel(population, regular_unchoke_slots=4)
        with pytest.raises(ValueError):
            model.birds_deviant_in_bittorrent_swarm(1)


class TestNashVerdicts:
    def test_bittorrent_not_nash(self, model):
        assert bittorrent_is_nash_equilibrium(model, class_index=0) is False

    def test_birds_is_nash(self, model):
        assert birds_is_nash_equilibrium(model, class_index=0) is True

    def test_verdicts_consistent_across_slow_and_medium_classes(self, model):
        for class_index in (0, 1):
            assert bittorrent_is_nash_equilibrium(model, class_index) is False
            assert birds_is_nash_equilibrium(model, class_index) is True
