"""Tests for iterated matches."""

from __future__ import annotations

import pytest

from repro.gametheory.games import Action, bittorrent_dilemma, prisoners_dilemma
from repro.gametheory.iterated import IteratedMatch
from repro.gametheory.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    TitForTat,
)


class TestIteratedMatch:
    def test_tft_vs_tft_always_cooperates(self):
        result = IteratedMatch(TitForTat(), TitForTat(), rounds=50, seed=0).play()
        assert result.cooperation_rates() == (1.0, 1.0)
        assert result.scores[0] == result.scores[1]

    def test_alld_exploits_allc(self):
        result = IteratedMatch(AlwaysDefect(), AlwaysCooperate(), rounds=30, seed=0).play()
        assert result.scores[0] > result.scores[1]
        assert result.winner() == "AllD"

    def test_tft_retaliation_limits_alld_advantage(self):
        rounds = 100
        vs_tft = IteratedMatch(AlwaysDefect(), TitForTat(), rounds=rounds, seed=0).play()
        vs_allc = IteratedMatch(AlwaysDefect(), AlwaysCooperate(), rounds=rounds, seed=0).play()
        assert vs_tft.scores[0] < vs_allc.scores[0]

    def test_average_scores_per_round(self):
        result = IteratedMatch(TitForTat(), TitForTat(), rounds=10, seed=0).play()
        assert result.average_scores == (3.0, 3.0)

    def test_noise_can_break_cooperation_between_grims(self):
        noiseless = IteratedMatch(GrimTrigger(), GrimTrigger(), rounds=100, seed=1).play()
        noisy = IteratedMatch(
            GrimTrigger(), GrimTrigger(), rounds=100, noise=0.2, seed=1
        ).play()
        assert noiseless.cooperation_rates() == (1.0, 1.0)
        assert noisy.cooperation_rates()[0] < 1.0

    def test_history_recorded_per_round(self):
        result = IteratedMatch(TitForTat(), AlwaysDefect(), rounds=5, seed=0).play()
        assert len(result.actions) == 5
        assert result.actions[0] == (Action.COOPERATE, Action.DEFECT)
        assert result.actions[1] == (Action.DEFECT, Action.DEFECT)

    def test_tie_has_no_winner(self):
        result = IteratedMatch(TitForTat(), TitForTat(), rounds=10, seed=0).play()
        assert result.winner() is None

    def test_requires_cd_action_game(self):
        with pytest.raises(ValueError):
            IteratedMatch(TitForTat(), TitForTat(), game=_non_cd_game())

    def test_asymmetric_cd_game_allowed(self):
        result = IteratedMatch(
            AlwaysDefect(), AlwaysCooperate(), game=bittorrent_dilemma(), rounds=10, seed=0
        ).play()
        # Fast peer defecting on a cooperating slow peer collects s each round.
        assert result.scores[0] == pytest.approx(10 * 25.0)

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            IteratedMatch(TitForTat(), TitForTat(), rounds=0)

    def test_invalid_noise_rejected(self):
        with pytest.raises(ValueError):
            IteratedMatch(TitForTat(), TitForTat(), noise=1.5)


def _non_cd_game():
    from repro.gametheory.games import NormalFormGame

    return NormalFormGame.from_arrays(
        "other", ("x", "y"), ("x", "y"), [[1, 0], [0, 1]], [[1, 0], [0, 1]]
    )
