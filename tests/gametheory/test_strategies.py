"""Tests for iterated-game strategies."""

from __future__ import annotations

import random

import pytest

from repro.gametheory.games import Action
from repro.gametheory.strategies import (
    Alternator,
    AlwaysCooperate,
    AlwaysDefect,
    GenerousTitForTat,
    GrimTrigger,
    Pavlov,
    RandomStrategy,
    SuspiciousTitForTat,
    TitForTat,
    TitForTwoTats,
    strategy_registry,
)

C, D = Action.COOPERATE, Action.DEFECT


class TestUnconditionalStrategies:
    def test_always_cooperate(self):
        assert AlwaysCooperate().decide([], []) == C
        assert AlwaysCooperate().decide([C], [D]) == C

    def test_always_defect(self):
        assert AlwaysDefect().decide([], []) == D
        assert AlwaysDefect().decide([D], [C]) == D


class TestTitForTat:
    def test_opens_with_cooperation(self):
        assert TitForTat().decide([], []) == C

    def test_mirrors_last_move(self):
        tft = TitForTat()
        assert tft.decide([C], [D]) == D
        assert tft.decide([C, D], [D, C]) == C


class TestTitForTwoTats:
    def test_forgives_single_defection(self):
        assert TitForTwoTats().decide([C, C], [C, D]) == C

    def test_punishes_two_consecutive_defections(self):
        assert TitForTwoTats().decide([C, C], [D, D]) == D

    def test_opens_with_cooperation(self):
        assert TitForTwoTats().decide([], []) == C


class TestSuspiciousAndGenerous:
    def test_suspicious_opens_with_defection(self):
        assert SuspiciousTitForTat().decide([], []) == D

    def test_generous_always_cooperates_after_cooperation(self):
        assert GenerousTitForTat(0.0).decide([C], [C]) == C

    def test_generous_forgiveness_probability_extremes(self):
        rng = random.Random(0)
        always_forgiving = GenerousTitForTat(1.0)
        never_forgiving = GenerousTitForTat(0.0)
        assert always_forgiving.decide([C], [D], rng) == C
        assert never_forgiving.decide([C], [D], rng) == D

    def test_generosity_validated(self):
        with pytest.raises(ValueError):
            GenerousTitForTat(1.5)


class TestGrimTrigger:
    def test_cooperates_until_first_defection(self):
        grim = GrimTrigger()
        assert grim.decide([C, C], [C, C]) == C
        assert grim.decide([C, C, C], [C, D, C]) == D


class TestPavlov:
    def test_opens_with_cooperation(self):
        assert Pavlov().decide([], []) == C

    def test_win_stay(self):
        assert Pavlov().decide([D], [C]) == D  # defected and opponent cooperated: stay

    def test_lose_shift(self):
        assert Pavlov().decide([C], [D]) == D  # cooperated and was defected on: shift
        assert Pavlov().decide([D], [D]) == C


class TestRandomAndAlternator:
    def test_random_extremes(self):
        rng = random.Random(1)
        assert RandomStrategy(1.0).decide([], [], rng) == C
        assert RandomStrategy(0.0).decide([], [], rng) == D

    def test_random_probability_validated(self):
        with pytest.raises(ValueError):
            RandomStrategy(-0.1)

    def test_alternator_sequence(self):
        alternator = Alternator()
        assert alternator.decide([], []) == C
        assert alternator.decide([C], [C]) == D
        assert alternator.decide([C, D], [C, C]) == C


class TestRegistry:
    def test_registry_names_unique_and_instantiable(self):
        registry = strategy_registry()
        assert "TFT" in registry and "AllD" in registry
        for name, cls in registry.items():
            instance = cls()
            assert instance.name == name

    def test_registry_covers_tf2t(self):
        assert "TF2T" in strategy_registry()
