"""Tests for the Axelrod-style round-robin tournament."""

from __future__ import annotations

import pytest

from repro.gametheory.strategies import (
    AlwaysCooperate,
    AlwaysDefect,
    GrimTrigger,
    Pavlov,
    TitForTat,
)
from repro.gametheory.tournament import AxelrodTournament


class TestAxelrodTournament:
    def test_all_strategies_scored(self):
        tournament = AxelrodTournament(
            [TitForTat(), AlwaysDefect(), AlwaysCooperate()], rounds=20, seed=0
        )
        result = tournament.play()
        assert set(result.average_scores()) == {"TFT", "AllD", "AllC"}

    def test_nice_reciprocators_beat_alld_in_mixed_field(self):
        strategies = [TitForTat(), GrimTrigger(), Pavlov(), AlwaysCooperate(), AlwaysDefect()]
        result = AxelrodTournament(strategies, rounds=100, seed=1).play()
        ranking = [name for name, _score in result.ranking()]
        # With enough reciprocators in the field, AllD should not win the
        # tournament (Axelrod's classic observation).
        assert ranking[0] != "AllD"

    def test_match_count_with_self_play(self):
        tournament = AxelrodTournament(
            [TitForTat(), AlwaysDefect()], rounds=5, repetitions=2, seed=0
        )
        result = tournament.play()
        # 1 cross pairing + 2 self pairings, times 2 repetitions.
        assert len(result.match_results) == 6

    def test_without_self_play(self):
        tournament = AxelrodTournament(
            [TitForTat(), AlwaysDefect()], rounds=5, include_self_play=False, seed=0
        )
        assert len(tournament.play().match_results) == 1

    def test_deterministic_given_seed(self):
        def run():
            return AxelrodTournament(
                [TitForTat(), AlwaysDefect(), Pavlov()], rounds=30, noise=0.05, seed=7
            ).play().average_scores()

        assert run() == run()

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            AxelrodTournament([TitForTat(), TitForTat()])

    def test_single_strategy_rejected(self):
        with pytest.raises(ValueError):
            AxelrodTournament([TitForTat()])

    def test_winner_is_top_of_ranking(self):
        result = AxelrodTournament(
            [TitForTat(), AlwaysDefect(), AlwaysCooperate()], rounds=50, seed=0
        ).play()
        assert result.winner() == result.ranking()[0][0]
