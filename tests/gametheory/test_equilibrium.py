"""Tests for dominance and Nash-equilibrium analysis."""

from __future__ import annotations

import pytest

from repro.gametheory.equilibrium import (
    best_responses,
    dominant_strategy,
    is_nash_equilibrium,
    iterated_elimination_of_dominated_strategies,
    pure_nash_equilibria,
)
from repro.gametheory.games import (
    NormalFormGame,
    birds_game,
    bittorrent_dilemma,
    prisoners_dilemma,
)


def matching_pennies() -> NormalFormGame:
    return NormalFormGame.from_arrays(
        "Matching Pennies",
        ("H", "T"),
        ("H", "T"),
        [[1, -1], [-1, 1]],
        [[-1, 1], [1, -1]],
    )


class TestBestResponses:
    def test_pd_best_response_is_defect(self):
        game = prisoners_dilemma()
        assert best_responses(game, "row", "C") == ["D"]
        assert best_responses(game, "column", "D") == ["D"]

    def test_ties_returned_together(self):
        game = bittorrent_dilemma()
        # When the slow peer defects, the fast peer is indifferent (0 either way).
        assert set(best_responses(game, "row", "D")) == {"C", "D"}

    def test_invalid_player_rejected(self):
        with pytest.raises(ValueError):
            best_responses(prisoners_dilemma(), "middle", "C")


class TestDominantStrategy:
    def test_pd_defect_strictly_dominant(self):
        game = prisoners_dilemma()
        assert dominant_strategy(game, "row", strict=True) == "D"
        assert dominant_strategy(game, "column", strict=True) == "D"

    def test_bittorrent_dilemma_dominance_structure(self):
        game = bittorrent_dilemma()
        # The paper: fast defects, slow cooperates (both weakly dominant).
        assert dominant_strategy(game, "row") == "D"
        assert dominant_strategy(game, "column") == "C"

    def test_birds_defection_dominant_for_both(self):
        game = birds_game()
        assert dominant_strategy(game, "row") == "D"
        assert dominant_strategy(game, "column") == "D"

    def test_no_dominant_strategy_in_matching_pennies(self):
        game = matching_pennies()
        assert dominant_strategy(game, "row") is None
        assert dominant_strategy(game, "column") is None

    def test_strict_dominance_not_found_when_only_weak(self):
        game = bittorrent_dilemma()
        assert dominant_strategy(game, "row", strict=True) is None


class TestPureNashEquilibria:
    def test_pd_unique_equilibrium(self):
        assert pure_nash_equilibria(prisoners_dilemma()) == [("D", "D")]

    def test_matching_pennies_has_none(self):
        assert pure_nash_equilibria(matching_pennies()) == []

    def test_bittorrent_dilemma_contains_defect_cooperate(self):
        equilibria = pure_nash_equilibria(bittorrent_dilemma())
        assert ("D", "C") in equilibria

    def test_birds_mutual_defection_equilibrium(self):
        assert ("D", "D") in pure_nash_equilibria(birds_game())

    def test_is_nash_equilibrium_helper(self):
        game = prisoners_dilemma()
        assert is_nash_equilibrium(game, "D", "D")
        assert not is_nash_equilibrium(game, "C", "C")


class TestIteratedElimination:
    def test_pd_reduces_to_defection(self):
        surviving = iterated_elimination_of_dominated_strategies(prisoners_dilemma())
        assert surviving == {"row": ["D"], "column": ["D"]}

    def test_matching_pennies_nothing_eliminated(self):
        surviving = iterated_elimination_of_dominated_strategies(matching_pennies())
        assert surviving["row"] == ["H", "T"]
        assert surviving["column"] == ["H", "T"]

    def test_weakly_dominated_strategies_survive(self):
        surviving = iterated_elimination_of_dominated_strategies(bittorrent_dilemma())
        # Only strict dominance eliminates; the BitTorrent Dilemma has ties.
        assert len(surviving["row"]) == 2
