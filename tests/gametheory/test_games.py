"""Tests for normal-form games and the paper's canonical games."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gametheory.games import (
    Action,
    NormalFormGame,
    birds_game,
    bittorrent_dilemma,
    dictator_game,
    one_sided_prisoners_dilemma,
    prisoners_dilemma,
)


class TestNormalFormGame:
    def test_payoffs_lookup(self):
        game = prisoners_dilemma()
        assert game.payoffs("C", "C") == (3.0, 3.0)
        assert game.payoffs("D", "C") == (5.0, 0.0)

    def test_shape(self):
        assert prisoners_dilemma().shape == (2, 2)
        assert dictator_game().shape == (2, 1)

    def test_matrix_shapes(self):
        game = prisoners_dilemma()
        assert game.row_matrix().shape == (2, 2)
        assert game.col_matrix().shape == (2, 2)

    def test_invalid_payoff_shape_rejected(self):
        with pytest.raises(ValueError):
            NormalFormGame.from_arrays("bad", ("a", "b"), ("x",), [[1.0]], [[1.0]])

    def test_symmetry(self):
        assert prisoners_dilemma().is_symmetric()
        assert not bittorrent_dilemma().is_symmetric()

    def test_transpose_swaps_roles(self):
        game = bittorrent_dilemma(100, 25)
        transposed = game.transpose()
        assert transposed.row_label == "slow"
        assert transposed.payoffs("C", "C") == tuple(reversed(game.payoffs("C", "C")))

    def test_describe_contains_actions(self):
        text = prisoners_dilemma().describe()
        assert "C" in text and "D" in text

    def test_as_dict_roundtrippable_fields(self):
        data = birds_game().as_dict()
        assert data["row_label"] == "fast"
        assert len(data["row_payoffs"]) == 2


class TestPrisonersDilemma:
    def test_default_ordering_holds(self):
        game = prisoners_dilemma()
        t = game.payoffs("D", "C")[0]
        r = game.payoffs("C", "C")[0]
        p = game.payoffs("D", "D")[0]
        s = game.payoffs("C", "D")[0]
        assert t > r > p > s

    def test_invalid_ordering_rejected(self):
        with pytest.raises(ValueError):
            prisoners_dilemma(reward=5, temptation=3)


class TestDictatorGame:
    def test_recipient_is_passive(self):
        game = dictator_game()
        assert len(game.col_actions) == 1

    def test_transfer_bounds(self):
        with pytest.raises(ValueError):
            dictator_game(endowment=5, transfer=6)


class TestOneSidedPrisonersDilemma:
    def test_requires_benefit_above_cost(self):
        with pytest.raises(ValueError):
            one_sided_prisoners_dilemma(benefit=1, cost=2)

    def test_shape(self):
        assert one_sided_prisoners_dilemma().shape == (2, 2)


class TestBitTorrentDilemma:
    def test_fast_cooperation_is_costly(self):
        game = bittorrent_dilemma(100, 25)
        fast_cc, slow_cc = game.payoffs("C", "C")
        assert fast_cc == pytest.approx(25 - 100)
        assert slow_cc == pytest.approx(100)

    def test_fast_defection_on_cooperating_slow_is_free_gain(self):
        game = bittorrent_dilemma(100, 25)
        fast_dc, slow_dc = game.payoffs("D", "C")
        assert fast_dc == pytest.approx(25)
        assert slow_dc == pytest.approx(0)

    def test_requires_fast_above_slow(self):
        with pytest.raises(ValueError):
            bittorrent_dilemma(25, 100)
        with pytest.raises(ValueError):
            bittorrent_dilemma(100, 0)

    def test_mutual_defection_is_zero(self):
        assert bittorrent_dilemma().payoffs("D", "D") == (0.0, 0.0)


class TestBirdsGame:
    def test_slow_cooperation_charged_opportunity_cost(self):
        game = birds_game(100, 25)
        _fast, slow = game.payoffs("C", "C")
        assert slow == pytest.approx(100 - 25)

    def test_slow_defection_now_preferred(self):
        game = birds_game(100, 25)
        slow_cooperate = game.payoffs("C", "C")[1]
        slow_defect = game.payoffs("C", "D")[1]
        assert slow_defect > slow_cooperate

    def test_fast_payoffs_unchanged_from_dilemma(self):
        dilemma = bittorrent_dilemma(100, 25)
        birds = birds_game(100, 25)
        assert np.allclose(dilemma.row_matrix(), birds.row_matrix())
