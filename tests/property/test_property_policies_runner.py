"""Property-based invariants for the policy hot paths and the runner cache.

These pin the guarantees the optimised engine and the experiment runner rely
on:

* :func:`allocate_upload` never exceeds the peer's capacity and conserves
  the per-slot budget under Equal Split;
* :func:`rank_candidates` is deterministic given an RNG seed and — for the
  rate-based rankings with distinct rates — independent of candidate
  presentation order;
* a runner cache hit reproduces a fresh run bit-for-bit (so warm-cache
  figure regeneration can never drift).
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import ExperimentRunner, ResultCache, SimulationJob
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.history import InteractionHistory
from repro.sim.peer import PeerState
from repro.sim.policies.allocation import allocate_upload
from repro.sim.policies.ranking import rank_candidates

behaviors = st.builds(
    lambda stranger, candidate, ranking, k, allocation: PeerBehavior(
        stranger_policy=stranger[0],
        stranger_count=stranger[1],
        candidate_policy=candidate,
        ranking=ranking,
        partner_count=k,
        allocation=allocation,
    ),
    stranger=st.sampled_from(
        [("none", 0)]
        + [(p, h) for p in ("periodic", "when_needed", "defect") for h in (1, 2, 3)]
    ),
    candidate=st.sampled_from(["tft", "tf2t"]),
    ranking=st.sampled_from(
        ["fastest", "slowest", "proximity", "adaptive", "loyal", "random"]
    ),
    k=st.integers(min_value=0, max_value=9),
    allocation=st.sampled_from(["equal_split", "prop_share", "freeride"]),
)

#: (sender, round, amount) interaction triples feeding a peer's history.
interactions = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=4),
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
    ),
    max_size=40,
)


def make_peer(behavior: PeerBehavior, events, capacity: float = 100.0) -> PeerState:
    peer = PeerState(
        peer_id=0,
        upload_capacity=capacity,
        behavior=behavior,
        history=InteractionHistory(max_rounds=3),
    )
    for sender, round_index, amount in events:
        peer.history.record(round_index, sender, amount)
    return peer


class TestAllocationProperties:
    @given(
        behavior=behaviors,
        events=interactions,
        partners=st.lists(
            st.integers(min_value=1, max_value=12), max_size=6, unique=True
        ),
        strangers=st.lists(
            st.integers(min_value=20, max_value=26), max_size=3, unique=True
        ),
        capacity=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
        cap=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=150)
    def test_never_exceeds_capacity_and_nonnegative(
        self, behavior, events, partners, strangers, capacity, cap
    ):
        peer = make_peer(behavior, events, capacity=capacity)
        allocation = allocate_upload(
            peer, partners, strangers, current_round=5, stranger_bandwidth_cap=cap
        )
        assert all(amount >= 0.0 for amount in allocation.values())
        assert sum(allocation.values()) <= capacity * (1.0 + 1e-9)
        # Every selected target received an entry (possibly an explicit zero).
        assert set(allocation) == set(partners) | set(strangers)

    @given(
        events=interactions,
        partners=st.lists(
            st.integers(min_value=1, max_value=12),
            min_size=1,
            max_size=6,
            unique=True,
        ),
        capacity=st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_equal_split_conserves_capacity_over_partners(
        self, events, partners, capacity
    ):
        behavior = PeerBehavior(
            stranger_policy="none", stranger_count=0, allocation="equal_split"
        )
        peer = make_peer(behavior, events, capacity=capacity)
        allocation = allocate_upload(peer, partners, [], current_round=5)
        total = sum(allocation.values())
        assert abs(total - capacity) <= 1e-6 * capacity
        amounts = set(allocation.values())
        assert len(amounts) == 1  # equal slots

    @given(
        events=interactions,
        partners=st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=1,
            max_size=4,
            unique=True,
        ),
    )
    @settings(max_examples=100)
    def test_prop_share_conserves_budget_iff_contributions_exist(
        self, events, partners
    ):
        behavior = PeerBehavior(
            stranger_policy="none", stranger_count=0, allocation="prop_share"
        )
        peer = make_peer(behavior, events)
        allocation = allocate_upload(peer, partners, [], current_round=5)
        window = behavior.candidate_window
        contributed = any(
            peer.history.received_in_window(p, 5, window) > 0 for p in partners
        )
        total = sum(allocation.values())
        if contributed:
            assert abs(total - peer.upload_capacity) <= 1e-6 * peer.upload_capacity
        else:
            assert total == 0.0


class TestRankingProperties:
    @given(behavior=behaviors, events=interactions, seed=st.integers(0, 2**20))
    @settings(max_examples=150)
    def test_deterministic_given_seed(self, behavior, events, seed):
        peer_a = make_peer(behavior, events)
        peer_b = make_peer(behavior, events)
        candidates = sorted(peer_a.history.all_known_peers())
        first = rank_candidates(peer_a, candidates, 5, random.Random(seed))
        second = rank_candidates(peer_b, candidates, 5, random.Random(seed))
        assert first == second

    @given(
        ranking=st.sampled_from(["fastest", "slowest", "proximity", "adaptive"]),
        events=interactions,
        seed=st.integers(0, 2**20),
        order_seed=st.integers(0, 2**20),
    )
    @settings(max_examples=150)
    def test_rate_rankings_are_order_independent_without_ties(
        self, ranking, events, seed, order_seed
    ):
        behavior = PeerBehavior(ranking=ranking)
        peer = make_peer(behavior, events)
        window = behavior.candidate_window
        candidates = sorted(peer.history.all_known_peers())
        rates = {
            c: peer.history.observed_rate(c, 5, window) for c in candidates
        }
        # Order independence is only guaranteed when no two keys tie
        # (ties are broken by the random pre-shuffle, by design).
        if ranking in ("proximity", "adaptive"):
            own = (
                peer.upload_capacity / max(1, behavior.total_slots)
                if ranking == "proximity"
                else peer.aspiration
            )
            keys = [abs(rates[c] - own) for c in candidates]
        else:
            keys = [rates[c] for c in candidates]
        if len(set(keys)) != len(keys):
            return
        shuffled = list(candidates)
        random.Random(order_seed).shuffle(shuffled)
        ranked_sorted = rank_candidates(peer, candidates, 5, random.Random(seed))
        ranked_shuffled = rank_candidates(peer, shuffled, 5, random.Random(seed))
        assert ranked_sorted == ranked_shuffled

    @given(events=interactions, seed=st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_ranking_is_a_permutation_of_the_candidates(self, events, seed):
        behavior = PeerBehavior(ranking="loyal")
        peer = make_peer(behavior, events)
        candidates = sorted(peer.history.all_known_peers())
        ranked = rank_candidates(peer, candidates, 5, random.Random(seed))
        assert sorted(ranked) == candidates


class TestRunnerCacheProperties:
    @given(
        behavior=behaviors,
        seed=st.integers(min_value=0, max_value=2**32),
        n_peers=st.integers(min_value=4, max_value=10),
    )
    @settings(max_examples=15, deadline=None)
    def test_cache_hits_reproduce_fresh_runs_exactly(
        self, behavior, seed, n_peers, tmp_path_factory
    ):
        config = SimulationConfig(n_peers=n_peers, rounds=8)
        job = SimulationJob(config=config, behaviors=(behavior,), seed=seed)

        fresh = ExperimentRunner().run_one(job)

        cache_dir = tmp_path_factory.mktemp("runner-cache")
        cached_runner = ExperimentRunner(cache_dir=cache_dir)
        miss_then_store = cached_runner.run_one(job)
        hit = cached_runner.run_one(job)

        assert cached_runner.cache_misses == 1
        assert cached_runner.cache_hits == 1
        for other in (miss_then_store, hit):
            assert other.records == fresh.records
            assert other.rounds_executed == fresh.rounds_executed
            assert other.churn_events == fresh.churn_events
            assert other.total_explicit_refusals == fresh.total_explicit_refusals
