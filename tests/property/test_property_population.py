"""Property-based tests for variable-population invariants.

The invariants the ISSUE calls out, checked over randomly drawn population
dynamics and behaviours:

* the active count is never negative (in fact never below the viable core
  of two peers) and never exceeds a configured cap;
* transfer accounting is conserved across arrivals and departures — every
  unit uploaded by some identity is downloaded by another, including
  identities that later left;
* runs are deterministic under equal seeds for **every** arrival-process
  kind;
* identity bookkeeping is consistent: records are unique, initial +
  arrivals = total identities, departures match departed records, and
  presence never exceeds the measured window.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.behavior import PeerBehavior
from repro.sim.churn import sample_poisson
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.population import PopulationSimulation

import random

behaviors = st.sampled_from(
    [
        PeerBehavior(),  # BitTorrent-like default
        PeerBehavior(
            stranger_policy="defect",
            stranger_count=2,
            candidate_policy="tf2t",
            ranking="adaptive",
            partner_count=3,
            allocation="prop_share",
        ),
        PeerBehavior(
            stranger_policy="when_needed",
            stranger_count=3,
            candidate_policy="tf2t",
            ranking="loyal",
            partner_count=2,
            allocation="equal_split",
        ),
        PeerBehavior(
            stranger_policy="periodic",
            stranger_count=2,
            candidate_policy="tft",
            ranking="slowest",
            partner_count=4,
            allocation="freeride",
            stranger_period=2,
        ),
    ]
)


@st.composite
def population_dynamics(draw):
    """A random non-trivial PopulationDynamics bundle covering every kind."""
    kind = draw(st.sampled_from(["none", "poisson", "flash", "whitewash"]))
    departure_rate = draw(
        st.floats(min_value=0.0, max_value=0.15, allow_nan=False)
    )
    # Replacement mode exists only as the no-arrival differential bridge.
    mode = draw(st.sampled_from(["shrink", "replace"])) if kind == "none" else "shrink"
    if kind == "whitewash":
        departure_rate = max(departure_rate, 0.05)
        arrival = ArrivalProcess(
            kind="whitewash",
            rate=draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False)),
        )
    elif kind == "poisson":
        arrival = ArrivalProcess(
            kind="poisson",
            rate=draw(st.floats(min_value=0.05, max_value=1.5, allow_nan=False)),
            start=draw(st.integers(min_value=0, max_value=5)),
        )
    elif kind == "flash":
        arrival = ArrivalProcess(
            kind="flash",
            start=draw(st.integers(min_value=0, max_value=8)),
            count=draw(st.integers(min_value=1, max_value=8)),
            duration=draw(st.integers(min_value=1, max_value=3)),
        )
    else:
        arrival = ArrivalProcess()
        if departure_rate == 0.0 and mode == "shrink":
            departure_rate = 0.05  # keep the bundle non-trivial
    capped = draw(st.booleans())
    return PopulationDynamics(
        arrival=arrival,
        departure=DepartureProcess(rate=departure_rate, mode=mode),
        max_active=draw(st.integers(min_value=12, max_value=30)) if capped else 0,
    )


runs = st.builds(
    lambda n, rounds, dynamics, behavior, seed: (
        SimulationConfig(n_peers=n, rounds=rounds, population=dynamics),
        behavior,
        seed,
    ),
    n=st.integers(min_value=4, max_value=10),
    rounds=st.integers(min_value=5, max_value=18),
    dynamics=population_dynamics(),
    behavior=behaviors,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


class TestPopulationInvariants:
    @given(runs)
    @settings(max_examples=60, deadline=None)
    def test_active_count_bounds(self, run):
        config, behavior, seed = run
        result = PopulationSimulation(config, [behavior], seed=seed).run()
        counts = result.active_counts
        assert counts is None or len(counts) == config.rounds
        if counts is None:  # legacy-shaped degenerate bundle
            return
        assert all(count >= 2 for count in counts), "active count below viable core"
        cap = config.population.max_active
        if cap:
            assert all(count <= cap for count in counts), "cap exceeded"

    @given(runs)
    @settings(max_examples=60, deadline=None)
    def test_transfer_conservation_across_population_change(self, run):
        config, behavior, seed = run
        result = PopulationSimulation(config, [behavior], seed=seed).run()
        total_down = sum(r.downloaded for r in result.records)
        total_up = sum(r.uploaded for r in result.records)
        assert math.isclose(total_down, total_up, rel_tol=1e-9, abs_tol=1e-6), (
            f"accounting leak: downloaded {total_down} != uploaded {total_up}"
        )

    @given(runs)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_under_equal_seeds(self, run):
        config, behavior, seed = run
        first = PopulationSimulation(config, [behavior], seed=seed).run()
        second = PopulationSimulation(config, [behavior], seed=seed).run()
        assert first.records == second.records
        assert first.active_counts == second.active_counts
        assert first.churn_events == second.churn_events
        assert first.total_arrivals == second.total_arrivals
        assert first.total_departures == second.total_departures

    @given(runs)
    @settings(max_examples=60, deadline=None)
    def test_identity_bookkeeping(self, run):
        config, behavior, seed = run
        result = PopulationSimulation(config, [behavior], seed=seed).run()
        ids = [record.peer_id for record in result.records]
        assert len(ids) == len(set(ids)), "duplicate identity"
        assert len(ids) == config.n_peers + result.total_arrivals
        departed = [r for r in result.records if r.departed_round is not None]
        assert len(departed) == result.total_departures
        for record in result.records:
            if record.rounds_present is not None:
                assert 0 <= record.rounds_present <= config.measured_rounds
            if record.departed_round is not None:
                assert record.joined_round <= record.departed_round


class TestPoissonSampling:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    )
    @settings(max_examples=100)
    def test_poisson_draws_are_nonnegative_and_deterministic(self, seed, lam):
        first = sample_poisson(random.Random(seed), lam)
        second = sample_poisson(random.Random(seed), lam)
        assert first == second >= 0
        if lam == 0.0:
            assert first == 0

    def test_poisson_mean_roughly_matches_rate(self):
        rng = random.Random(42)
        lam = 1.5
        draws = [sample_poisson(rng, lam) for _ in range(4000)]
        assert abs(sum(draws) / len(draws) - lam) < 0.1
