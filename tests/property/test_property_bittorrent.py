"""Property-based tests for the piece-level BitTorrent substrate."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bittorrent.pieces import PieceSet, select_piece_rarest_first
from repro.bittorrent.rate import RateEstimator


class TestPieceSetProperties:
    @given(
        st.integers(min_value=1, max_value=50),
        st.lists(st.integers(min_value=0, max_value=49), max_size=60),
    )
    def test_owned_plus_missing_partition(self, piece_count, additions):
        pieces = PieceSet(piece_count)
        for piece in additions:
            if piece < piece_count:
                pieces.add(piece)
        owned, missing = pieces.owned(), pieces.missing()
        assert owned | missing == set(range(piece_count))
        assert owned & missing == set()
        assert pieces.is_complete == (len(missing) == 0)

    @given(
        st.integers(min_value=1, max_value=30),
        st.lists(st.integers(min_value=0, max_value=29), max_size=30),
        st.lists(st.integers(min_value=0, max_value=29), max_size=30),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_rarest_first_always_returns_wanted_piece(
        self, piece_count, downloader_pieces, uploader_pieces, seed
    ):
        downloader = PieceSet(piece_count)
        uploader = PieceSet(piece_count)
        for piece in downloader_pieces:
            if piece < piece_count:
                downloader.add(piece)
        for piece in uploader_pieces:
            if piece < piece_count:
                uploader.add(piece)
        choice = select_piece_rarest_first(
            downloader, uploader, [], random.Random(seed)
        )
        wanted = downloader.interesting_pieces(uploader)
        if wanted:
            assert choice in wanted
        else:
            assert choice is None


class TestRateEstimatorProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100),   # tick
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            ),
            max_size=50,
        ),
        st.integers(min_value=1, max_value=30),
    )
    def test_rate_non_negative_and_window_bounded(self, samples, window):
        estimator = RateEstimator(window_ticks=window)
        for tick, amount in sorted(samples):
            estimator.record(1, tick, amount)
        current = 101
        rate = estimator.rate(1, current)
        assert rate >= 0.0
        # The window only retains ticks >= current - window, so the rate can
        # never exceed the total recorded volume divided by the window.
        assert rate * window <= sum(a for _t, a in samples) + 1e-6
