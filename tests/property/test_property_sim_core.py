"""Property-based tests for the simulator substrate and the design space."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import DesignSpace
from repro.sim.behavior import PeerBehavior
from repro.sim.history import InteractionHistory
from repro.sim.peer import PeerState
from repro.sim.policies.allocation import allocate_upload
from repro.sim.policies.ranking import rank_candidates

#: One shared space instance (construction is cheap but reuse keeps tests fast).
_SPACE = DesignSpace.default()

behaviors = st.builds(
    lambda stranger, candidate, ranking, k, allocation: PeerBehavior(
        stranger_policy=stranger[0],
        stranger_count=stranger[1],
        candidate_policy=candidate,
        ranking=ranking,
        partner_count=k,
        allocation=allocation,
    ),
    stranger=st.sampled_from(
        [("none", 0)]
        + [(p, h) for p in ("periodic", "when_needed", "defect") for h in (1, 2, 3)]
    ),
    candidate=st.sampled_from(["tft", "tf2t"]),
    ranking=st.sampled_from(
        ["fastest", "slowest", "proximity", "adaptive", "loyal", "random"]
    ),
    k=st.integers(min_value=0, max_value=9),
    allocation=st.sampled_from(["equal_split", "prop_share", "freeride"]),
)


class TestDesignSpaceProperties:
    @given(st.integers(min_value=0, max_value=3269))
    @settings(max_examples=100)
    def test_index_roundtrip(self, index):
        protocol = _SPACE.protocol(index)
        assert _SPACE.index_of(protocol.behavior) == index

    @given(behaviors)
    @settings(max_examples=100)
    def test_every_valid_behavior_is_in_the_space(self, behavior):
        index = _SPACE.index_of(behavior)
        canonical = _SPACE.protocol(index).behavior
        if behavior.partner_count == 0:
            # All zero-partner behaviours collapse onto one canonical protocol.
            assert canonical.partner_count == 0
        else:
            assert canonical == behavior

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=99))
    @settings(max_examples=30)
    def test_sampling_returns_distinct_ids(self, count, seed):
        sample = _SPACE.sample(count, seed=seed, method="stratified")
        ids = [p.protocol_id for p in sample]
        assert len(set(ids)) == len(ids) == count


class TestHistoryProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),       # round
                st.integers(min_value=0, max_value=9),        # sender
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            ),
            max_size=80,
        )
    )
    def test_window_bounded_and_senders_subset(self, events):
        history = InteractionHistory(max_rounds=3)
        for round_index, sender, amount in sorted(events, key=lambda e: e[0]):
            history.record(round_index, sender, amount)
        assert len(history.rounds_recorded()) <= 3
        current = 21
        assert history.senders_in_window(current, 2) <= history.all_known_peers()


class TestAllocationProperties:
    @given(
        behaviors,
        st.lists(st.integers(min_value=1, max_value=20), unique=True, max_size=9),
        st.lists(st.integers(min_value=21, max_value=30), unique=True, max_size=3),
        st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
    )
    @settings(max_examples=150)
    def test_allocation_never_exceeds_capacity_and_never_negative(
        self, behavior, partners, strangers, capacity
    ):
        peer = PeerState(peer_id=0, upload_capacity=capacity, behavior=behavior)
        partners = partners[: behavior.partner_count]
        allocation = allocate_upload(peer, partners, strangers, current_round=1)
        assert all(amount >= 0.0 for amount in allocation.values())
        assert sum(allocation.values()) <= capacity * (1 + 1e-9)

    @given(
        behaviors,
        st.dictionaries(
            st.integers(min_value=1, max_value=15),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            max_size=8,
        ),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_ranking_is_a_permutation_of_candidates(self, behavior, rates, seed):
        peer = PeerState(peer_id=0, upload_capacity=100.0, behavior=behavior)
        for candidate, amount in rates.items():
            peer.history.record(4, candidate, amount)
        ranked = rank_candidates(peer, list(rates), 5, random.Random(seed))
        assert sorted(ranked) == sorted(rates)
