"""Property-based tests for the vec engine's invariants.

The vec engine is gated distributionally (``tests/statistical/``), so the
properties here are the ones that must hold *exactly*, independent of the
random draws:

* transfer conservation — every unit downloaded was uploaded by another
  identity, across arrivals, departures and whitewash rejoins;
* per-peer upload never exceeds capacity times rounds of presence;
* active-count bounds — never below the viable core of two peers, never
  above a configured ``max_active`` cap;
* per-seed determinism for **every** ``ArrivalProcess`` kind (vec draws
  differ from the replica engines, but equal seeds must reproduce equal
  results within the engine);
* identity bookkeeping — unique records, initial + arrivals = total,
  departures consistent, presence within the measured window.

Fixed-population configs (including non-trivial scenario dynamics) run on
the same engine, so the conservation and determinism properties are checked
for those too.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import ArrivalProcess, DepartureProcess, PopulationDynamics
from repro.sim.population_vec import VecSimulation

behaviors = st.sampled_from(
    [
        PeerBehavior(),  # BitTorrent-like default
        PeerBehavior(
            stranger_policy="defect",
            stranger_count=2,
            candidate_policy="tf2t",
            ranking="adaptive",
            partner_count=3,
            allocation="prop_share",
        ),
        PeerBehavior(
            stranger_policy="when_needed",
            stranger_count=3,
            candidate_policy="tf2t",
            ranking="loyal",
            partner_count=2,
            allocation="equal_split",
        ),
        PeerBehavior(
            stranger_policy="periodic",
            stranger_count=2,
            candidate_policy="tft",
            ranking="slowest",
            partner_count=4,
            allocation="freeride",
            stranger_period=2,
        ),
    ]
)


@st.composite
def population_dynamics(draw):
    """A random non-trivial PopulationDynamics bundle covering every kind."""
    kind = draw(st.sampled_from(["none", "poisson", "flash", "whitewash"]))
    departure_rate = draw(
        st.floats(min_value=0.0, max_value=0.15, allow_nan=False)
    )
    mode = draw(st.sampled_from(["shrink", "replace"])) if kind == "none" else "shrink"
    if kind == "whitewash":
        departure_rate = max(departure_rate, 0.05)
        arrival = ArrivalProcess(
            kind="whitewash",
            rate=draw(st.floats(min_value=0.1, max_value=1.0, allow_nan=False)),
        )
    elif kind == "poisson":
        arrival = ArrivalProcess(
            kind="poisson",
            rate=draw(st.floats(min_value=0.05, max_value=1.5, allow_nan=False)),
            start=draw(st.integers(min_value=0, max_value=5)),
        )
    elif kind == "flash":
        arrival = ArrivalProcess(
            kind="flash",
            start=draw(st.integers(min_value=0, max_value=8)),
            count=draw(st.integers(min_value=1, max_value=8)),
            duration=draw(st.integers(min_value=1, max_value=3)),
        )
    else:
        arrival = ArrivalProcess()
        if departure_rate == 0.0 and mode == "shrink":
            departure_rate = 0.05  # keep the bundle non-trivial
    capped = draw(st.booleans())
    return PopulationDynamics(
        arrival=arrival,
        departure=DepartureProcess(rate=departure_rate, mode=mode),
        max_active=draw(st.integers(min_value=12, max_value=30)) if capped else 0,
    )


variable_runs = st.builds(
    lambda n, rounds, dynamics, behavior, seed: (
        SimulationConfig(n_peers=n, rounds=rounds, population=dynamics),
        behavior,
        seed,
    ),
    n=st.integers(min_value=4, max_value=10),
    rounds=st.integers(min_value=5, max_value=18),
    dynamics=population_dynamics(),
    behavior=behaviors,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)

fixed_runs = st.builds(
    lambda n, rounds, churn, behavior, seed: (
        SimulationConfig(n_peers=n, rounds=rounds, churn_rate=churn),
        behavior,
        seed,
    ),
    n=st.integers(min_value=4, max_value=10),
    rounds=st.integers(min_value=5, max_value=18),
    churn=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    behavior=behaviors,
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


def record_payload(result):
    """Everything a record carries, as a comparable tuple list."""
    return [
        (
            r.peer_id, r.group, r.upload_capacity, r.behavior_label,
            r.downloaded, r.uploaded, r.cohort, r.joined_round,
            r.departed_round, r.rounds_present,
        )
        for r in result.records
    ]


class TestVecConservation:
    @given(variable_runs)
    @settings(max_examples=50, deadline=None)
    def test_transfer_conservation_across_population_change(self, run):
        config, behavior, seed = run
        result = VecSimulation(config, [behavior], seed=seed).run()
        total_down = sum(r.downloaded for r in result.records)
        total_up = sum(r.uploaded for r in result.records)
        assert math.isclose(total_down, total_up, rel_tol=1e-9, abs_tol=1e-6), (
            f"accounting leak: downloaded {total_down} != uploaded {total_up}"
        )

    @given(fixed_runs)
    @settings(max_examples=30, deadline=None)
    def test_transfer_conservation_fixed_population(self, run):
        config, behavior, seed = run
        result = VecSimulation(config, [behavior], seed=seed).run()
        total_down = sum(r.downloaded for r in result.records)
        total_up = sum(r.uploaded for r in result.records)
        assert math.isclose(total_down, total_up, rel_tol=1e-9, abs_tol=1e-6)

    @given(variable_runs)
    @settings(max_examples=30, deadline=None)
    def test_upload_bounded_by_capacity_and_presence(self, run):
        config, behavior, seed = run
        result = VecSimulation(config, [behavior], seed=seed).run()
        if result.active_counts is None and result.churn_events > 0:
            # Degenerate bundles run legacy replacement churn: a slot's
            # capacity is resampled on replacement while uploads keep
            # accumulating under the stable peer id, so no per-id bound
            # against the final capacity holds.
            return
        for record in result.records:
            presence = (
                record.rounds_present
                if record.rounds_present is not None
                else config.measured_rounds
            )
            assert record.uploaded <= record.upload_capacity * presence + 1e-6


class TestVecActiveCountBounds:
    @given(variable_runs)
    @settings(max_examples=50, deadline=None)
    def test_active_count_bounds(self, run):
        config, behavior, seed = run
        result = VecSimulation(config, [behavior], seed=seed).run()
        counts = result.active_counts
        assert counts is None or len(counts) == config.rounds
        if counts is None:  # legacy-shaped degenerate bundle
            return
        assert all(count >= 2 for count in counts), "active count below viable core"
        cap = config.population.max_active
        if cap:
            assert all(count <= cap for count in counts), "cap exceeded"


class TestVecDeterminism:
    @given(variable_runs)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_under_equal_seeds_every_arrival_kind(self, run):
        config, behavior, seed = run
        first = VecSimulation(config, [behavior], seed=seed).run()
        second = VecSimulation(config, [behavior], seed=seed).run()
        assert record_payload(first) == record_payload(second)
        assert first.active_counts == second.active_counts
        assert first.churn_events == second.churn_events
        assert first.total_arrivals == second.total_arrivals
        assert first.total_departures == second.total_departures

    @given(fixed_runs)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_under_equal_seeds_fixed(self, run):
        config, behavior, seed = run
        first = VecSimulation(config, [behavior], seed=seed).run()
        second = VecSimulation(config, [behavior], seed=seed).run()
        assert record_payload(first) == record_payload(second)
        assert first.churn_events == second.churn_events


class TestVecIdentityBookkeeping:
    @given(variable_runs)
    @settings(max_examples=50, deadline=None)
    def test_identity_bookkeeping(self, run):
        config, behavior, seed = run
        result = VecSimulation(config, [behavior], seed=seed).run()
        ids = [record.peer_id for record in result.records]
        assert len(ids) == len(set(ids)), "duplicate identity"
        assert len(ids) == config.n_peers + result.total_arrivals
        departed = [r for r in result.records if r.departed_round is not None]
        assert len(departed) == result.total_departures
        for record in result.records:
            if record.rounds_present is not None:
                assert 0 <= record.rounds_present <= config.measured_rounds
            if record.departed_round is not None:
                assert record.joined_round <= record.departed_round
