"""Property-based tests for the statistics substrate."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.correlation import pearson_correlation
from repro.stats.distribution import ccdf, ecdf, histogram2d_frequency, normalized_histogram
from repro.stats.summary import confidence_interval, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestCorrelationProperties:
    @given(st.lists(finite_floats, min_size=2, max_size=50), st.integers(0, 1000))
    def test_correlation_bounded_or_nan(self, xs, shift):
        ys = [x + shift for x in xs]
        r = pearson_correlation(xs, ys)
        assert math.isnan(r) or -1.0 <= r <= 1.0

    @given(st.lists(finite_floats, min_size=3, max_size=50))
    def test_symmetry(self, xs):
        ys = list(reversed(xs))
        a = pearson_correlation(xs, ys)
        b = pearson_correlation(ys, xs)
        assert (math.isnan(a) and math.isnan(b)) or a == b

    @given(
        # Magnitudes bounded away from the denormal range: for values like
        # 1e-81 the squared deviations underflow and the affine-invariance
        # identity genuinely fails in float arithmetic (e.g. xs=[0.0,
        # 1.33e-81] yields r≈0.8), which is a property of IEEE 754, not a
        # bug in pearson_correlation.
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ).filter(lambda x: x == 0.0 or abs(x) >= 1e-6),
            min_size=2,
            max_size=30,
        ),
        st.floats(min_value=0.1, max_value=10, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_invariant_to_positive_affine_transform(self, xs, scale, offset):
        ys = [scale * x + offset for x in xs]
        r = pearson_correlation(xs, ys)
        assert math.isnan(r) or r == 1.0 or abs(r - 1.0) < 1e-6


class TestDistributionProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_ecdf_monotone_and_reaches_one(self, values):
        xs, probs = ecdf(values)
        assert np.all(np.diff(xs) >= 0)
        assert np.all(np.diff(probs) >= -1e-12)
        assert probs[-1] == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_ccdf_complements_ecdf(self, values):
        _xs, up = ecdf(values)
        _xs2, down = ccdf(values)
        assert np.allclose(up + down, 1.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=1, max_size=100))
    def test_histogram_is_probability_vector(self, values):
        _edges, freqs = normalized_histogram(values, bins=10)
        assert freqs.sum() == 1.0 or abs(freqs.sum() - 1.0) < 1e-9
        assert np.all(freqs >= 0)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=9),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_histogram2d_rows_are_distributions(self, pairs):
        categories = [c for c, _ in pairs]
        scores = [s for _, s in pairs]
        _e, _v, matrix = histogram2d_frequency(categories, scores, range(10))
        for row in matrix:
            assert row.sum() == 0.0 or abs(row.sum() - 1.0) < 1e-9


class TestSummaryProperties:
    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_interval_contains_mean_and_is_ordered(self, values):
        low, high = confidence_interval(values)
        mean = float(np.mean(values))
        assert low <= mean + 1e-9
        assert mean <= high + 1e-9
        assert low <= high

    @given(st.lists(finite_floats, min_size=1, max_size=60))
    def test_summary_bounds(self, values):
        stats = summarize(values)
        # Allow one part in 1e12 of slack: the mean of identical large floats
        # can land one ULP outside [min, max].
        slack = 1e-12 * max(1.0, abs(stats.mean))
        assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
        assert stats.count == len(values)
