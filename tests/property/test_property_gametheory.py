"""Property-based tests for games, strategies and the analytical model."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gametheory.analytic import SwarmModel
from repro.gametheory.classes import BandwidthClass, ClassPopulation
from repro.gametheory.equilibrium import dominant_strategy, pure_nash_equilibria
from repro.gametheory.games import birds_game, bittorrent_dilemma
from repro.gametheory.iterated import IteratedMatch
from repro.gametheory.strategies import AlwaysDefect, TitForTat

speeds = st.tuples(
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
    st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
).filter(lambda pair: pair[0] > pair[1] * 1.001)


class TestGameProperties:
    @given(speeds)
    def test_bittorrent_dilemma_dominance_for_any_speeds(self, pair):
        fast, slow = pair
        game = bittorrent_dilemma(fast, slow)
        assert dominant_strategy(game, "row") == "D"
        assert dominant_strategy(game, "column") == "C"

    @given(speeds)
    def test_birds_mutual_defection_equilibrium_for_any_speeds(self, pair):
        fast, slow = pair
        game = birds_game(fast, slow)
        assert dominant_strategy(game, "column") == "D"
        assert ("D", "D") in pure_nash_equilibria(game)

    @given(speeds)
    def test_defect_cooperate_always_nash_in_dilemma(self, pair):
        fast, slow = pair
        assert ("D", "C") in pure_nash_equilibria(bittorrent_dilemma(fast, slow))


class TestIteratedMatchProperties:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25)
    def test_alld_never_scores_below_tft_opponent(self, rounds, seed):
        result = IteratedMatch(AlwaysDefect(), TitForTat(), rounds=rounds, seed=seed).play()
        assert result.scores[0] >= result.scores[1]

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=25)
    def test_scores_bounded_by_extreme_payoffs(self, rounds):
        result = IteratedMatch(AlwaysDefect(), TitForTat(), rounds=rounds, seed=0).play()
        for score in result.scores:
            assert 0.0 <= score <= 5.0 * rounds


populations = st.tuples(
    st.integers(min_value=6, max_value=60),   # slow count
    st.integers(min_value=6, max_value=60),   # fast count
    st.integers(min_value=1, max_value=4),    # Ur
)


class TestAnalyticModelProperties:
    @given(populations)
    @settings(max_examples=50)
    def test_nash_verdicts_hold_whenever_assumptions_hold(self, params):
        slow_count, fast_count, ur = params
        population = ClassPopulation(
            [
                BandwidthClass("slow", 10.0, slow_count),
                BandwidthClass("fast", 100.0, fast_count),
            ]
        )
        model = SwarmModel(population, regular_unchoke_slots=ur)
        assume(not model.assumption_violations(0))
        birds_dev = model.birds_deviant_in_bittorrent_swarm(0)
        bt_dev = model.bittorrent_deviant_in_birds_swarm(0)
        assert birds_dev.advantage > 0          # BitTorrent is not a NE
        assert bt_dev.advantage < 1e-12         # Birds deviation never profitable

    @given(populations)
    @settings(max_examples=50)
    def test_expected_wins_non_negative_and_bounded(self, params):
        slow_count, fast_count, ur = params
        population = ClassPopulation(
            [
                BandwidthClass("slow", 10.0, slow_count),
                BandwidthClass("fast", 100.0, fast_count),
            ]
        )
        model = SwarmModel(population, regular_unchoke_slots=ur)
        assume(not model.assumption_violations(0))
        for wins in (model.bittorrent_expected_wins(0), model.birds_expected_wins(0)):
            assert wins.total >= 0.0
            assert wins.reciprocation["same"] <= ur + 1e-9
