"""Unit tests for the experiment runner: jobs, executors, dedupe, defaults."""

from __future__ import annotations

import pytest

from repro.core.protocol import bittorrent_reference, sort_s
from repro.runner import (
    ExperimentRunner,
    ProcessExecutor,
    SerialExecutor,
    SimulationJob,
    configure_default_runner,
    get_default_runner,
    set_default_runner,
    using_runner,
)
from repro.sim.bandwidth import ConstantBandwidth, EmpiricalBandwidth
from repro.sim.config import SimulationConfig


@pytest.fixture(autouse=True)
def reset_default_runner():
    """Keep the process-wide default runner pristine across tests."""
    set_default_runner(None)
    yield
    set_default_runner(None)


def make_job(seed: int = 0, rounds: int = 6, **config_changes) -> SimulationJob:
    config = SimulationConfig(n_peers=6, rounds=rounds, **config_changes)
    return SimulationJob(
        config=config, behaviors=(bittorrent_reference().behavior,), seed=seed
    )


class TestSimulationJob:
    def test_execute_matches_direct_simulation(self):
        from repro.sim.engine import Simulation

        job = make_job(seed=42)
        direct = Simulation(
            job.config, list(job.behaviors), groups=None, seed=42
        ).run()
        assert job.execute().records == direct.records

    def test_fingerprint_is_stable_and_content_sensitive(self):
        job = make_job(seed=1)
        assert job.fingerprint() == make_job(seed=1).fingerprint()
        assert job.fingerprint() != make_job(seed=2).fingerprint()
        assert job.fingerprint() != make_job(seed=1, rounds=7).fingerprint()
        other_behavior = SimulationJob(
            config=job.config, behaviors=(sort_s().behavior,), seed=1
        )
        assert job.fingerprint() != other_behavior.fingerprint()

    def test_fingerprint_sees_group_labels(self):
        config = SimulationConfig(n_peers=4, rounds=5)
        behaviors = (bittorrent_reference().behavior, sort_s().behavior) * 2
        plain = SimulationJob(config=config, behaviors=behaviors, seed=0)
        grouped = SimulationJob(
            config=config, behaviors=behaviors, groups=("A", "B", "A", "B"), seed=0
        )
        assert plain.fingerprint() != grouped.fingerprint()

    def test_fingerprint_distinguishes_bandwidth_distributions(self):
        base = SimulationConfig(n_peers=4, rounds=5)
        constant = base.with_(bandwidth=ConstantBandwidth(50.0))
        empirical = base.with_(
            bandwidth=EmpiricalBandwidth([(0.5, 10.0), (0.5, 100.0)])
        )
        other_empirical = base.with_(
            bandwidth=EmpiricalBandwidth([(0.5, 20.0), (0.5, 100.0)])
        )
        behaviors = (bittorrent_reference().behavior,)
        fingerprints = {
            SimulationJob(config=c, behaviors=behaviors, seed=0).fingerprint()
            for c in (base, constant, empirical, other_empirical)
        }
        assert len(fingerprints) == 4

    def test_rejects_empty_behaviors(self):
        with pytest.raises(ValueError):
            SimulationJob(config=SimulationConfig(n_peers=4, rounds=5), behaviors=())


class TestPopulationCacheKeys:
    """The job hash must see the population-dynamics fields (regression).

    Without this, a cached fixed-population result would be served for a
    variable-population job (or for a variable job with different arrival
    parameters) that hashes identically otherwise.
    """

    @staticmethod
    def _population(arrival_rate: float = 0.5, departure_rate: float = 0.02):
        from repro.sim.dynamics import (
            ArrivalProcess,
            DepartureProcess,
            PopulationDynamics,
        )

        return PopulationDynamics(
            arrival=ArrivalProcess(kind="poisson", rate=arrival_rate),
            departure=DepartureProcess(rate=departure_rate),
        )

    def test_variable_job_never_shares_the_fixed_jobs_key(self):
        fixed = make_job(seed=0)
        variable = SimulationJob(
            config=fixed.config.with_(population=self._population()),
            behaviors=fixed.behaviors,
            seed=0,
        )
        assert fixed.fingerprint() != variable.fingerprint()
        assert "population" in variable.payload()["config"]
        assert "population" not in fixed.payload()["config"]

    def test_jobs_differing_only_in_arrival_rate_get_distinct_keys(self):
        jobs = [
            make_job(seed=0, population=self._population(arrival_rate=rate))
            for rate in (0.25, 0.5)
        ]
        assert jobs[0].fingerprint() != jobs[1].fingerprint()

    def test_specs_differing_only_in_arrival_rate_get_distinct_keys(self):
        from repro.scenarios.spec import ArrivalSpec, PopulationSpec, ScenarioSpec

        def spec(size: float) -> ScenarioSpec:
            return ScenarioSpec(
                name="arrival-rate-probe",
                population=PopulationSpec(size=10),
                arrival=ArrivalSpec(kind="poisson", churn_rate=0.01, size=size),
                rounds=20,
            )

        slow, fast = spec(0.02), spec(0.04)
        assert slow.fingerprint() != fast.fingerprint()
        job_slow = slow.compile("smoke", seed=0)
        job_fast = fast.compile("smoke", seed=0)
        assert job_slow.fingerprint() != job_fast.fingerprint()

    def test_cached_fixed_result_not_served_for_variable_job(self, tmp_path):
        from repro.runner.cache import ResultCache

        fixed = make_job(seed=3)
        variable = SimulationJob(
            config=fixed.config.with_(population=self._population()),
            behaviors=fixed.behaviors,
            seed=3,
        )
        cache = ResultCache(tmp_path)
        cache.put(fixed, fixed.execute())
        assert cache.get(variable) is None
        assert cache.get(fixed) is not None

    def test_variable_result_round_trips_through_the_cache(self, tmp_path):
        from repro.runner.cache import ResultCache

        job = make_job(seed=5, rounds=12, population=self._population())
        cache = ResultCache(tmp_path)
        fresh = job.execute()
        cache.put(job, fresh)
        cached = cache.get(job)
        assert cached is not None
        assert cached.records == fresh.records
        assert cached.active_counts == fresh.active_counts
        assert cached.total_arrivals == fresh.total_arrivals
        assert cached.total_departures == fresh.total_departures
        assert [r.cohort for r in cached.records] == [
            r.cohort for r in fresh.records
        ]
        assert [r.rounds_present for r in cached.records] == [
            r.rounds_present for r in fresh.records
        ]


class TestExecutors:
    def test_serial_and_process_executors_agree(self):
        jobs = [make_job(seed=s) for s in range(4)]
        serial = SerialExecutor().run(jobs)
        parallel = ProcessExecutor(processes=2).run(jobs)
        assert [r.records for r in serial] == [r.records for r in parallel]

    def test_process_executor_preserves_job_order(self):
        jobs = [make_job(seed=s, rounds=4 + (s % 3)) for s in range(6)]
        results = ProcessExecutor(processes=2).run(jobs)
        assert [r.rounds_executed for r in results] == [4 + (s % 3) for s in range(6)]

    def test_process_executor_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            ProcessExecutor(processes=0)
        with pytest.raises(ValueError):
            ProcessExecutor(chunksize=0)


class TestExperimentRunner:
    def test_empty_batch(self):
        assert ExperimentRunner().run([]) == []

    def test_batch_dedupe_runs_identical_jobs_once(self):
        runner = ExperimentRunner()
        job = make_job(seed=3)
        results = runner.run([job, make_job(seed=3), job])
        assert runner.jobs_executed == 1
        assert runner.jobs_deduplicated == 2
        assert results[0].records == results[1].records == results[2].records

    def test_cache_round_trip_across_runner_instances(self, tmp_path):
        job = make_job(seed=9)
        first = ExperimentRunner(cache_dir=tmp_path)
        fresh = first.run_one(job)
        assert first.cache_misses == 1 and first.jobs_executed == 1

        second = ExperimentRunner(cache_dir=tmp_path)
        warm = second.run_one(job)
        assert second.cache_hits == 1 and second.jobs_executed == 0
        assert warm.records == fresh.records
        assert warm.config is job.config  # config reattached from the job

    def test_cache_layout_is_content_addressed(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        job = make_job(seed=4)
        runner.run_one(job)
        fingerprint = job.fingerprint()
        expected = tmp_path / fingerprint[:2] / f"{fingerprint}.json"
        assert expected.is_file()
        assert len(runner.cache) == 1

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        job = make_job(seed=5)
        fresh = runner.run_one(job)
        path = runner.cache.path_for(job.fingerprint())
        path.write_text("{not json", encoding="utf-8")
        again = runner.run_one(job)
        assert again.records == fresh.records

    def test_parallel_cached_runner_matches_serial_uncached(self, tmp_path):
        jobs = [make_job(seed=s) for s in range(5)]
        serial = ExperimentRunner().run(jobs)
        parallel = ExperimentRunner(jobs=2, cache_dir=tmp_path).run(jobs)
        assert [r.records for r in serial] == [r.records for r in parallel]


class TestDefaultRunner:
    def test_default_runner_is_created_lazily_and_reused(self):
        runner = get_default_runner()
        assert get_default_runner() is runner

    def test_configure_default_runner_installs(self, tmp_path):
        runner = configure_default_runner(jobs=1, cache_dir=tmp_path)
        assert get_default_runner() is runner
        assert runner.cache is not None

    def test_using_runner_restores_previous(self):
        outer = configure_default_runner()
        inner = ExperimentRunner()
        with using_runner(inner):
            assert get_default_runner() is inner
        assert get_default_runner() is outer

    def test_env_configuration(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "2")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        set_default_runner(None)
        runner = get_default_runner()
        assert isinstance(runner.executor, ProcessExecutor)
        assert runner.cache is not None and runner.cache.root == tmp_path


class TestCacheCorruptionQuarantine:
    """Corrupt cache entries behave as misses and are quarantined, not fatal."""

    def _poison(self, runner, job, text: str):
        path = runner.cache.path_for(job.fingerprint())
        path.write_text(text, encoding="utf-8")
        return path

    def test_torn_file_is_a_miss_and_quarantined(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        job = make_job(seed=21)
        fresh = runner.run_one(job)
        path = runner.cache.path_for(job.fingerprint())
        # Tear the entry: a valid prefix cut off mid-stream (disk full /
        # killed process).
        torn = path.read_text(encoding="utf-8")[: len(path.read_text(encoding="utf-8")) // 2]
        path.write_text(torn, encoding="utf-8")
        again = runner.run_one(job)
        assert again.records == fresh.records
        # The torn bytes were moved aside and a fresh entry re-stored.
        assert path.with_suffix(".corrupt").read_text(encoding="utf-8") == torn
        assert path.is_file()
        assert runner.run_one(job).records == fresh.records  # now a clean hit

    def test_garbage_non_dict_json_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        job = make_job(seed=22)
        fresh = runner.run_one(job)
        path = self._poison(runner, job, "[1, 2, 3]")
        again = runner.run_one(job)  # previously crashed: list has no .get
        assert again.records == fresh.records
        assert path.is_file()

    def test_mangled_payload_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=tmp_path)
        job = make_job(seed=23)
        fresh = runner.run_one(job)
        path = self._poison(
            runner, job, '{"version": 1, "records": [{"peer_id": "zap"}]}'
        )
        again = runner.run_one(job)
        assert again.records == fresh.records
        assert path.is_file()

    def test_quarantine_moves_file_aside(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path)
        job = make_job(seed=24)
        path = cache.path_for(job.fingerprint())
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(job) is None
        assert cache.misses == 1
        assert not path.exists()
        quarantined = path.with_suffix(".corrupt")
        assert quarantined.is_file()
        assert quarantined.read_text(encoding="utf-8") == "{not json"
        # Quarantined files do not count as stored results.
        assert len(cache) == 0


class TestDefaultJobCount:
    def test_respects_cpu_affinity_mask(self, monkeypatch):
        import repro.runner.executors as executors

        monkeypatch.setattr(
            executors.os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
        )
        assert executors.default_job_count() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import repro.runner.executors as executors

        def unavailable(pid):
            raise OSError("no affinity on this platform")

        monkeypatch.setattr(
            executors.os, "sched_getaffinity", unavailable, raising=False
        )
        monkeypatch.setattr(executors.os, "cpu_count", lambda: 5)
        assert executors.default_job_count() == 5

    def test_at_least_one(self, monkeypatch):
        import repro.runner.executors as executors

        def unavailable(pid):
            raise OSError("unavailable")

        monkeypatch.setattr(
            executors.os, "sched_getaffinity", unavailable, raising=False
        )
        monkeypatch.setattr(executors.os, "cpu_count", lambda: None)
        assert executors.default_job_count() == 1


class TestCacheMaintenance:
    """clear() sweeps quarantine files too, and put() never leaks temps."""

    def test_clear_removes_results_and_corrupt_files(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path)
        stored = make_job(seed=30)
        cache.put(stored, stored.execute())
        poisoned = make_job(seed=31)
        bad_path = cache.path_for(poisoned.fingerprint())
        bad_path.parent.mkdir(parents=True, exist_ok=True)
        bad_path.write_text("{not json", encoding="utf-8")
        assert cache.get(poisoned) is None  # quarantines the garbage
        assert cache.corrupt_count() == 1

        removed = cache.clear()
        assert removed == 2  # one result + one .corrupt file
        assert len(cache) == 0
        assert cache.corrupt_count() == 0
        assert list(tmp_path.glob("*/*")) == []

    def test_corrupt_count_on_missing_root(self, tmp_path):
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path / "never-created")
        assert cache.corrupt_count() == 0
        assert cache.clear() == 0

    def test_put_cleans_temp_file_when_replace_fails(self, tmp_path, monkeypatch):
        import repro.runner.cache as cache_module
        from repro.runner.cache import ResultCache

        cache = ResultCache(tmp_path)
        job = make_job(seed=32)
        result = job.execute()

        def refuse(src, dst):
            raise PermissionError("replace refused")  # an OSError, not ENOENT

        monkeypatch.setattr(cache_module.os, "replace", refuse)
        with pytest.raises(PermissionError):
            cache.put(job, result)
        # The temp file must not leak even though the failure was not a
        # missing-file error.
        leftovers = [p for p in tmp_path.rglob("*") if p.is_file()]
        assert leftovers == []


class TestExecutorFailureAttribution:
    """Worker failures name the job; dead workers raise instead of hanging."""

    def test_failed_job_raises_attributed_error(self, tmp_path):
        from repro.runner.executors import JobExecutionError
        from repro.service.testing import FailJob

        jobs = [FailJob("first"), FailJob("second")]
        with pytest.raises(JobExecutionError) as excinfo:
            ProcessExecutor(processes=2).run(jobs)
        error = excinfo.value
        assert error.fingerprint in {job.fingerprint() for job in jobs}
        assert error.fingerprint[:12] in str(error)
        assert "RuntimeError: injected failure" in str(error)

    def test_attributed_error_survives_pickling(self):
        import pickle

        from repro.runner.executors import JobExecutionError

        error = JobExecutionError("job abc failed", fingerprint="abc123")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, JobExecutionError)
        assert clone.fingerprint == "abc123"
        assert str(clone) == str(error)

    def test_dead_worker_raises_instead_of_hanging(self, tmp_path):
        from repro.runner.executors import JobExecutionError
        from repro.service.testing import EchoJob, WorkerKillJob

        jobs = [
            WorkerKillJob("bomb", marker_dir=str(tmp_path / "kills"), max_kills=99)
        ] + [EchoJob(f"pad-{i}") for i in range(3)]
        with pytest.raises(JobExecutionError, match="worker process died"):
            ProcessExecutor(processes=2).run(jobs)

    def test_describe_job_names_scenario_and_config(self):
        from types import SimpleNamespace

        from repro.runner.executors import describe_job

        scenario_job = SimpleNamespace(
            spec=SimpleNamespace(name="colluders"), seed=7
        )
        assert describe_job(scenario_job) == "scenario 'colluders', seed 7"
        sim_job = make_job(seed=5)
        assert describe_job(sim_job) == "6 peers x 6 rounds, seed 5"
