"""The JSONL trace log: vocabulary closure, envelope, multi-writer merge."""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle

import pytest

from repro.telemetry import (
    CANONICAL_EVENTS,
    JOB_EVENTS,
    NULL_TELEMETRY,
    NULL_TRACER,
    RECOVERY_EVENTS,
    Telemetry,
    Tracer,
    WORKER_EVENTS,
    read_events,
    telemetry_for,
    trace_id,
    write_merged,
)


class TestVocabulary:
    """The event vocabulary is closed, like the profiler's phase names."""

    def test_canonical_is_the_three_groups_with_no_duplicates(self):
        assert CANONICAL_EVENTS == JOB_EVENTS + WORKER_EVENTS + RECOVERY_EVENTS
        assert len(set(CANONICAL_EVENTS)) == len(CANONICAL_EVENTS)

    def test_job_events_spell_the_lifecycle_in_order(self):
        assert JOB_EVENTS == (
            "submit", "enqueue", "claim", "probe", "execute", "store", "complete"
        )

    def test_strict_tracer_rejects_unknown_events(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w")
        with pytest.raises(ValueError, match="closed"):
            tracer.emit("telport")  # typo'd event must fail loudly
        tracer.close()

    def test_lenient_tracer_accepts_anything(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w", strict=False)
        tracer.emit("custom.event", note="ok")
        tracer.close()
        assert read_events(tmp_path)[0]["event"] == "custom.event"


class TestTracer:
    def test_envelope_fields_and_fingerprint_correlation(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w1")
        fingerprint = "ab" * 32
        tracer.emit("enqueue", fingerprint=fingerprint, extra=7, dropped=None)
        tracer.close()
        (record,) = read_events(tmp_path)
        assert record["event"] == "enqueue"
        assert record["writer"] == "w1"
        assert record["pid"] == os.getpid()
        assert record["seq"] == 0
        assert isinstance(record["t"], float) and isinstance(record["m"], float)
        assert record["fp"] == fingerprint
        assert record["trace"] == trace_id(fingerprint) == fingerprint[:16]
        assert record["extra"] == 7
        assert "dropped" not in record  # None-valued fields are elided

    def test_sequence_numbers_increment_per_writer(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w")
        for _ in range(5):
            tracer.emit("worker.heartbeat")
        tracer.close()
        assert [r["seq"] for r in read_events(tmp_path)] == list(range(5))

    def test_torn_tail_of_a_killed_writer_is_skipped(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w")
        tracer.emit("worker.start")
        tracer.emit("worker.heartbeat")
        tracer.close()
        # Simulate SIGKILL mid-append: garbage half-line at the file's end.
        (event_file,) = tmp_path.glob("events-*.jsonl")
        with event_file.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "worker.st')
        events = read_events(tmp_path)
        assert [r["event"] for r in events] == ["worker.start", "worker.heartbeat"]

    def test_pickled_tracer_reopens_its_own_file(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w")
        tracer.emit("worker.start")
        clone = pickle.loads(pickle.dumps(tracer))
        assert clone._handle is None  # the file handle stayed behind
        clone.emit("worker.stop")
        tracer.close()
        clone.close()
        assert len(list(tmp_path.glob("events-*.jsonl"))) == 2
        assert [r["event"] for r in read_events(tmp_path)] == [
            "worker.start",
            "worker.stop",
        ]

    def test_write_merged_round_trips(self, tmp_path):
        tracer = Tracer(tmp_path, writer="w")
        for _ in range(3):
            tracer.emit("worker.heartbeat")
        tracer.close()
        events = read_events(tmp_path)
        out = tmp_path / "out" / "merged.jsonl"
        assert write_merged(events, out) == 3
        with out.open("r", encoding="utf-8") as handle:
            assert [json.loads(line) for line in handle] == events

    def test_read_events_on_missing_directory_is_empty(self, tmp_path):
        assert read_events(tmp_path / "nope") == []


def _writer_process(root: str, writer: str, count: int) -> None:
    tracer = Tracer(root, writer=writer)
    for index in range(count):
        tracer.emit("worker.heartbeat", worker=writer, index=index)
    tracer.close()


class TestConcurrentWriters:
    def test_merge_across_concurrent_writer_pids(self, tmp_path):
        """Three processes append concurrently; the merge loses nothing and
        preserves every writer's emit order."""
        count = 40
        processes = [
            multiprocessing.Process(
                target=_writer_process, args=(str(tmp_path), f"w{i}", count)
            )
            for i in range(3)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=30)
            assert process.exitcode == 0
        assert len(list(tmp_path.glob("events-*.jsonl"))) == 3

        events = read_events(tmp_path)
        assert len(events) == 3 * count
        assert len({r["pid"] for r in events}) == 3
        # Global order is non-decreasing in wall time...
        times = [r["t"] for r in events]
        assert times == sorted(times)
        # ...and each writer's records appear in emit (seq) order.
        for writer in ("w0", "w1", "w2"):
            seqs = [r["seq"] for r in events if r["writer"] == writer]
            assert seqs == list(range(count))


class TestTelemetryHandle:
    def test_telemetry_for_none_is_the_shared_null(self):
        assert telemetry_for(None) is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled
        assert NULL_TELEMETRY.tracer is NULL_TRACER

    def test_null_telemetry_never_writes(self, tmp_path):
        NULL_TELEMETRY.emit("execute", fingerprint="ff" * 32, duration=1.0)
        NULL_TELEMETRY.metrics.inc("anything")
        NULL_TELEMETRY.flush(force=True)
        assert NULL_TELEMETRY.metrics.counters == {}

    def test_enabled_telemetry_emits_and_snapshots(self, tmp_path):
        telemetry = telemetry_for(tmp_path, writer="me")
        assert telemetry.enabled
        telemetry.emit("enqueue", fingerprint="cd" * 32)
        telemetry.metrics.inc("spool.enqueued")
        telemetry.flush(force=True)
        telemetry.close()
        assert read_events(tmp_path)[0]["event"] == "enqueue"
        assert (tmp_path / "metrics-me.json").exists()
