"""Metrics: fixed-bucket histograms, snapshot files, cross-writer aggregation."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    aggregate_snapshots,
    read_metrics,
    read_snapshots,
)


class TestHistogram:
    def test_observations_land_in_their_buckets(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1, 1]  # last cell is overflow
        assert histogram.count == 5
        assert histogram.total == pytest.approx(56.05)
        assert histogram.max == 50.0
        assert histogram.mean() == pytest.approx(56.05 / 5)

    def test_quantiles_read_off_bucket_bounds(self):
        histogram = Histogram(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0  # 2nd of 4 obs is in the 1.0 bucket
        assert histogram.quantile(1.0) == 10.0
        histogram.observe(99.0)  # overflow bucket reports the observed max
        assert histogram.quantile(1.0) == 99.0
        assert Histogram().quantile(0.5) == 0.0

    def test_merge_is_elementwise_and_guards_boundaries(self):
        a, b = Histogram(), Histogram()
        a.observe(0.01)
        b.observe(0.02)
        b.observe(5.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(5.03)
        assert a.max == 5.0
        with pytest.raises(ValueError, match="bucket boundaries"):
            a.merge(Histogram(buckets=(1.0, 2.0)))

    def test_dict_round_trip(self):
        histogram = Histogram()
        for value in (0.003, 0.2, 7.5):
            histogram.observe(value)
        clone = Histogram.from_dict(histogram.as_dict())
        assert clone.buckets == DEFAULT_BUCKETS
        assert clone.counts == histogram.counts
        assert clone.count == histogram.count
        assert clone.total == pytest.approx(histogram.total)
        with pytest.raises(ValueError, match="length mismatch"):
            Histogram.from_dict({"buckets": [1.0], "counts": [1, 2, 3, 4],
                                 "count": 1, "sum": 0.5, "max": 0.5})


class TestRegistryAndSnapshots:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("jobs")
        registry.inc("jobs", 2.0)
        registry.gauge("depth", 7)
        registry.observe("latency", 0.02)
        assert registry.counters["jobs"] == 3.0
        assert registry.gauges["depth"][0] == 7.0
        assert registry.histograms["latency"].count == 1

    def test_snapshot_aggregate_round_trip(self, tmp_path):
        """Two writers publish; the aggregate sums counters and histogram
        buckets and keeps the freshest gauge sample."""
        first = MetricsRegistry()
        first.inc("worker.executed", 3)
        first.gauge("spool.queue_depth", 5)
        first.observe("execute_seconds", 0.2)
        first.write_snapshot(tmp_path, "w1")

        second = MetricsRegistry()
        second.inc("worker.executed", 4)
        second.gauge("spool.queue_depth", 2)  # written later => wins
        second.observe("execute_seconds", 0.4)
        second.observe("execute_seconds", 0.02)
        second.write_snapshot(tmp_path, "w2")

        aggregated = read_metrics(tmp_path)
        assert aggregated["writers"] == 2
        assert aggregated["counters"]["worker.executed"] == 7.0
        assert aggregated["gauges"]["spool.queue_depth"]["value"] == 2.0
        merged = aggregated["histograms"]["execute_seconds"]
        assert merged.count == 3
        assert merged.total == pytest.approx(0.62)

    def test_snapshot_overwrites_in_place(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("n")
        registry.write_snapshot(tmp_path, "w")
        registry.inc("n")
        registry.write_snapshot(tmp_path, "w")
        files = list(tmp_path.glob("metrics-*.json"))
        assert len(files) == 1  # atomic replace, no temp debris
        assert not list(tmp_path.glob("*.tmp"))
        (snapshot,) = read_snapshots(tmp_path)
        assert snapshot["counters"]["n"] == 2.0

    def test_torn_snapshot_is_skipped(self, tmp_path):
        MetricsRegistry().write_snapshot(tmp_path, "good")
        (tmp_path / "metrics-bad.json").write_text('{"cou', encoding="utf-8")
        snapshots = read_snapshots(tmp_path)
        assert len(snapshots) == 1
        assert snapshots[0]["writer"] == "good"

    def test_aggregate_of_nothing(self, tmp_path):
        assert aggregate_snapshots([]) == {
            "writers": 0, "counters": {}, "gauges": {}, "histograms": {},
        }
        assert read_metrics(tmp_path / "missing")["writers"] == 0

    def test_snapshot_payload_is_json_stable(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a")
        path = registry.write_snapshot(tmp_path, "w")
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert list(payload["counters"]) == ["a", "b"]  # sorted keys


class TestNullMetrics:
    def test_null_registry_stays_empty(self):
        NULL_METRICS.inc("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 0.5)
        assert NULL_METRICS.counters == {}
        assert NULL_METRICS.gauges == {}
        assert NULL_METRICS.histograms == {}

    def test_null_registry_never_snapshots(self, tmp_path):
        with pytest.raises(RuntimeError):
            NULL_METRICS.write_snapshot(tmp_path, "w")
