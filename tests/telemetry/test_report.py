"""Trace/status renderers on synthetic event streams and a real spool."""

from __future__ import annotations

from repro.service import Spool
from repro.telemetry import Telemetry
from repro.telemetry.report import (
    job_timelines,
    render_status,
    render_trace,
    trace_summary,
)

FP_A = "aa" * 32
FP_B = "bb" * 32


def _record(event, t, fp=None, writer="w", seq=0, **fields):
    record = {"event": event, "t": t, "m": t, "pid": 1, "writer": writer, "seq": seq}
    if fp is not None:
        record["fp"] = fp
        record["trace"] = fp[:16]
    record.update(fields)
    return record


def _happy_and_requeued_events():
    """Job A completes first try; job B loses its first worker mid-claim."""
    return [
        _record("worker.start", 0.0, worker="w1"),
        _record("worker.start", 0.0, worker="w2"),
        _record("submit", 0.1, fp=FP_A),
        _record("enqueue", 0.1, fp=FP_A),
        _record("submit", 0.1, fp=FP_B),
        _record("enqueue", 0.1, fp=FP_B),
        _record("claim", 0.2, fp=FP_A, worker="w1", queue_wait=0.1),
        _record("probe", 0.21, fp=FP_A, worker="w1", hit=False, duration=0.01),
        _record(
            "execute", 0.5, fp=FP_A, worker="w1", duration=0.3,
            profile={"phases": {"decision": 0.2, "transfer": 0.1}},
        ),
        _record("store", 0.55, fp=FP_A, worker="w1", duration=0.05),
        _record("complete", 0.6, fp=FP_A),
        _record("claim", 0.2, fp=FP_B, worker="w2", queue_wait=0.1),
        _record("requeue", 1.0, fp=FP_B, worker="w2", reason="dead-worker"),
        _record("claim", 1.1, fp=FP_B, worker="w1", queue_wait=0.9),
        _record("probe", 1.11, fp=FP_B, worker="w1", hit=False, duration=0.01),
        _record("execute", 1.4, fp=FP_B, worker="w1", duration=0.29),
        _record("store", 1.45, fp=FP_B, worker="w1", duration=0.05),
        _record("complete", 1.5, fp=FP_B),
    ]


class TestTraceSummary:
    def test_timelines_group_job_scoped_events_only(self):
        timelines = job_timelines(_happy_and_requeued_events())
        assert set(timelines) == {FP_A, FP_B}
        assert len(timelines[FP_A]) == 7
        assert len(timelines[FP_B]) == 9

    def test_summary_accounting(self):
        summary = trace_summary(_happy_and_requeued_events())
        assert summary["jobs"] == 2
        assert summary["completed"] == 2
        assert summary["workers"] == ["w1", "w2"]
        assert summary["event_counts"]["claim"] == 3
        assert summary["requeue_reasons"] == {"dead-worker": 1}
        assert summary["queue_wait"].count == 3
        assert summary["execute"].count == 2
        # Span decomposition: A spans 0.5s, B spans 1.4s.
        assert summary["span_total"] == 1.9
        assert summary["span_queue"] == 1.1
        assert summary["span_execute"] == 0.59
        assert summary["span_store"] == 0.1
        assert summary["span_slack"] > 0
        # The attached engine profile rolled up, largest phase first.
        assert list(summary["phase_seconds"]) == ["decision", "transfer"]

    def test_incomplete_jobs_do_not_count_as_completed(self):
        events = _happy_and_requeued_events()[:10]  # cut before A completes
        summary = trace_summary(events)
        assert summary["completed"] == 0
        assert summary["span_total"] == 0


class TestRenderTrace:
    def test_render_mentions_recovery_and_critical_path(self):
        text = render_trace(_happy_and_requeued_events())
        assert "2 jobs (2 completed)" in text
        assert "requeue[dead-worker] x1" in text
        assert "critical path" in text
        assert "engine phases" in text
        # Per-job timeline shows the re-queue attempt split.
        assert "2 attempts" in text
        assert "reason=dead-worker" in text

    def test_jobs_limit_truncates_timelines(self):
        text = render_trace(_happy_and_requeued_events(), jobs_limit=1)
        assert "first 1 of 2 jobs" in text

    def test_empty_trace_degrades_gracefully(self):
        assert "no events" in render_trace([])


class TestRenderStatus:
    def test_status_on_a_live_spool(self, tmp_path):
        spool_root = tmp_path / "spool"
        telemetry = Telemetry(tmp_path / "telemetry", writer="w1")
        spool = Spool(spool_root, telemetry=telemetry)
        spool.ensure_layout()
        spool.register_worker("w1", pid=4242)
        telemetry.metrics.inc("worker.executed", 3)
        telemetry.metrics.observe("execute_seconds", 0.1)
        telemetry.flush(force=True)
        telemetry.close()

        text = render_status(
            spool, telemetry_root=tmp_path / "telemetry", liveness_timeout=60.0
        )
        assert "queue depth: 0 pending, 0 in flight" in text
        assert "workers: 1 alive, 0 dead" in text
        assert "4242" in text
        assert "executed 3" in text
        assert "execute" in text

    def test_status_grace_marks_fresh_registration_alive(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.ensure_layout()
        spool.register_worker("young", pid=1)
        (spool.workers_dir / "young.alive").unlink()  # never heartbeated
        # Grace window (default 10s) keeps the fresh registration alive...
        assert "1 alive, 0 dead" in render_status(spool, liveness_timeout=0.0)
        # ...and grace 0 restores the strict reading.
        assert "0 alive, 1 dead" in render_status(
            spool, liveness_timeout=0.0, registration_grace=0.0
        )

    def test_status_without_telemetry_directory(self, tmp_path):
        spool = Spool(tmp_path / "spool")
        spool.ensure_layout()
        text = render_status(spool, telemetry_root=tmp_path / "nope")
        assert "no snapshots yet" in text
