"""Shared pytest fixtures.

All fixtures are deliberately tiny (smoke-scale) so the unit-test suite stays
fast; the benchmark harness under ``benchmarks/`` exercises the larger
configurations.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pra import PRAConfig
from repro.core.protocol import (
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    sort_s,
)
from repro.core.space import DesignSpace
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for policy-level tests."""
    return random.Random(12345)


@pytest.fixture
def smoke_sim_config() -> SimulationConfig:
    """A minimal simulation configuration for engine tests."""
    return SimulationConfig(n_peers=8, rounds=12)


@pytest.fixture
def smoke_pra_config() -> PRAConfig:
    """A minimal PRA configuration for tournament/study tests."""
    return PRAConfig(
        sim=SimulationConfig(n_peers=8, rounds=12),
        performance_runs=1,
        encounter_runs=1,
        seed=0,
    )


@pytest.fixture
def design_space() -> DesignSpace:
    """The full 3270-protocol design space (cheap to construct)."""
    return DesignSpace.default()


@pytest.fixture
def bt_behavior() -> PeerBehavior:
    """Reference-BitTorrent-like behaviour."""
    return bittorrent_reference().behavior


@pytest.fixture
def named_protocol_list():
    """The named protocols referenced throughout the paper."""
    return [bittorrent_reference(), birds_protocol(), loyal_when_needed(), sort_s()]
