"""End-to-end integration tests across the whole library.

These tests exercise the public API the way the examples and the benchmark
harness do: build a design space, run a small PRA study, compare the named
protocols in the cycle simulator and in the piece-level swarm, and check that
the two analyses tell a consistent story with the paper's qualitative claims.
"""

from __future__ import annotations

import math

import pytest

from repro.bittorrent import SwarmConfig, SwarmSimulation, reference_bittorrent as bt_client
from repro.bittorrent.variants import loyal_when_needed_client
from repro.core import (
    DesignSpace,
    PRAConfig,
    PRAStudy,
    bittorrent_reference,
    birds_protocol,
    loyal_when_needed,
    sort_s,
)
from repro.core.protocol import Protocol
from repro.gametheory import SwarmModel, piatek_classes
from repro.sim.bandwidth import ConstantBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig


class TestGameTheoryToSimulatorConsistency:
    """The analytical claim (Birds resists invasion by BT) should also show up
    in the agent-based substrate when bandwidth classes are explicit."""

    def test_birds_outperforms_bt_deviant_in_two_class_swarm(self):
        analytic = SwarmModel(piatek_classes(50), regular_unchoke_slots=4)
        assert analytic.bittorrent_deviant_in_birds_swarm(0).advantage < 0

    def test_cooperative_protocols_beat_freeriders_everywhere(self):
        config = SimulationConfig(n_peers=10, rounds=40, bandwidth=ConstantBandwidth(100.0))
        freerider = Protocol(
            PeerBehavior(stranger_policy="defect", stranger_count=1, allocation="freeride"),
            name="Freerider",
        )
        pra = PRAConfig(sim=config, performance_runs=1, encounter_runs=3, seed=1)
        PRAStudy.clear_memo()
        study = PRAStudy(
            [bittorrent_reference(), loyal_when_needed(), freerider], pra
        ).run()
        assert study.performance[freerider.key] < study.performance[bittorrent_reference().key]
        assert study.robustness[freerider.key] <= min(
            study.robustness[bittorrent_reference().key],
            study.robustness[loyal_when_needed().key],
        )


class TestDesignSpaceStudyPipeline:
    def test_sampled_study_end_to_end(self, tmp_path):
        space = DesignSpace.default()
        # 16 protocols keeps the Table 3 regression estimable (more
        # observations than design-matrix columns).
        protocols = space.sample(
            16, seed=5, include=[bittorrent_reference(), birds_protocol(), sort_s()]
        )
        config = PRAConfig(
            sim=SimulationConfig(n_peers=8, rounds=12),
            performance_runs=1,
            encounter_runs=1,
            seed=5,
        )
        PRAStudy.clear_memo()
        study = PRAStudy(protocols, config, cache_dir=tmp_path).run()

        # Every protocol is scored on all three measures, in [0, 1].
        assert len(study) == 16
        for key in study.keys():
            p, r, a = study.scores_of(key)
            assert 0.0 <= p <= 1.0 and 0.0 <= r <= 1.0 and 0.0 <= a <= 1.0

        # The result persists and reloads identically through the disk cache.
        PRAStudy.clear_memo()
        reloaded = PRAStudy(protocols, config, cache_dir=tmp_path).run()
        assert reloaded.performance == study.performance

        # The regression machinery runs on the study output.
        from repro.experiments.table3 import from_study

        fits = from_study(study)
        assert set(fits.fits) == {"performance", "robustness", "aggressiveness"}


class TestSwarmValidationPipeline:
    def test_loyal_when_needed_never_much_worse_than_bt(self):
        """A scaled-down version of the Figure 9(a) qualitative claim."""
        config = SwarmConfig(
            n_leechers=12, file_size_mb=1.0, max_ticks=1800,
            bandwidth=ConstantBandwidth(80.0),
        )
        mix = [loyal_when_needed_client()] * 6 + [bt_client()] * 6
        times_lwn, times_bt = [], []
        for seed in range(3):
            result = SwarmSimulation(config, mix, seed=seed).run()
            assert result.completion_fraction() == 1.0
            times_lwn.append(result.mean_download_time("Loyal-When-needed"))
            times_bt.append(result.mean_download_time("BitTorrent"))
        mean_lwn = sum(times_lwn) / len(times_lwn)
        mean_bt = sum(times_bt) / len(times_bt)
        # The DSA-discovered protocol should not be dramatically worse than the
        # reference client when they share a swarm (paper: it is never worse).
        assert mean_lwn <= mean_bt * 1.15

    def test_homogeneous_swarm_times_are_comparable_across_variants(self):
        config = SwarmConfig(
            n_leechers=10, file_size_mb=1.0, max_ticks=1800,
            bandwidth=ConstantBandwidth(80.0),
        )
        results = {}
        for variant in (bt_client(), loyal_when_needed_client()):
            result = SwarmSimulation(config, [variant], seed=7).run()
            assert result.completion_fraction() == 1.0
            results[variant.name] = result.mean_download_time()
        ratio = results["Loyal-When-needed"] / results["BitTorrent"]
        assert 0.5 < ratio < 2.0
