"""Tests for JSON serialization helpers."""

from __future__ import annotations

import dataclasses
from enum import Enum
from pathlib import Path

import numpy as np
import pytest

from repro.utils.serialization import dump_json, load_json, to_jsonable


class Colour(Enum):
    RED = "red"
    BLUE = "blue"


@dataclasses.dataclass
class Point:
    x: float
    y: float
    tags: list


class TestToJsonable:
    def test_primitives_unchanged(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_enum(self):
        assert to_jsonable(Colour.RED) == "red"

    def test_dataclass(self):
        assert to_jsonable(Point(1.0, 2.0, ["a"])) == {"x": 1.0, "y": 2.0, "tags": ["a"]}

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(0.5)) == 0.5
        assert to_jsonable(np.bool_(True)) is True

    def test_numpy_array(self):
        assert to_jsonable(np.array([1, 2, 3])) == [1, 2, 3]

    def test_nested_dict_keys_stringified(self):
        assert to_jsonable({1: {"a": np.float64(2.0)}}) == {"1": {"a": 2.0}}

    def test_sets_become_lists(self):
        assert sorted(to_jsonable({3, 1, 2})) == [1, 2, 3]

    def test_path_becomes_string(self, tmp_path):
        assert to_jsonable(tmp_path) == str(tmp_path)


class TestDumpLoad:
    def test_roundtrip(self, tmp_path):
        payload = {"scores": {"a": 0.5}, "values": [1, 2, 3]}
        path = dump_json(payload, tmp_path / "out" / "result.json")
        assert path.exists()
        assert load_json(path) == payload

    def test_dump_creates_parent_dirs(self, tmp_path):
        target = tmp_path / "deeply" / "nested" / "file.json"
        dump_json([1, 2], target)
        assert target.exists()

    def test_dump_returns_path_object(self, tmp_path):
        assert isinstance(dump_json({}, tmp_path / "x.json"), Path)
