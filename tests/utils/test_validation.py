"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import (
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "n") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "n")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.1, 1.1, 2])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")

    def test_fraction_alias(self):
        assert check_fraction(0.25, "f") == 0.25


class TestCheckIn:
    def test_accepts_member(self):
        assert check_in("b", ("a", "b"), "letter") == "b"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="letter"):
            check_in("z", ("a", "b"), "letter")
