"""Tests for deterministic seed derivation and the RNG factory."""

from __future__ import annotations

import pytest

from repro.utils.rng import RngFactory, coerce_rng, derive_seed, spawn_numpy_rng, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a/b") == derive_seed(42, "a/b")

    def test_different_paths_differ(self):
        assert derive_seed(42, "run-0") != derive_seed(42, "run-1")

    def test_different_master_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_range(self):
        for path in ("a", "b", "a/very/long/path/with/segments"):
            seed = derive_seed(7, path)
            assert 0 <= seed < 2**63

    def test_negative_master_seed_accepted(self):
        assert 0 <= derive_seed(-5, "x") < 2**63


class TestSpawnedGenerators:
    def test_spawn_rng_reproducible(self):
        a = spawn_rng(3, "p").random()
        b = spawn_rng(3, "p").random()
        assert a == b

    def test_spawn_numpy_rng_reproducible(self):
        a = spawn_numpy_rng(3, "p").random()
        b = spawn_numpy_rng(3, "p").random()
        assert a == b

    def test_spawned_streams_independent(self):
        values_a = [spawn_rng(3, "a").random() for _ in range(3)]
        values_b = [spawn_rng(3, "b").random() for _ in range(3)]
        assert values_a != values_b


class TestRngFactory:
    def test_same_path_same_stream(self):
        factory = RngFactory(11)
        assert factory.random("x").random() == factory.random("x").random()

    def test_seed_for_matches_derive(self):
        factory = RngFactory(11)
        assert factory.seed_for("x") == derive_seed(11, "x")

    def test_child_namespace(self):
        factory = RngFactory(11)
        child = factory.child("sub")
        assert child.master_seed == factory.seed_for("sub")
        assert child.seed_for("x") != factory.seed_for("x")

    def test_numpy_generator(self):
        factory = RngFactory(11)
        assert 0.0 <= factory.numpy("n").random() < 1.0

    def test_master_seed_property(self):
        assert RngFactory(99).master_seed == 99


class TestCoerceRng:
    def test_passthrough(self, rng):
        assert coerce_rng(rng) is rng

    def test_from_seed(self):
        assert coerce_rng(None, 5).random() == coerce_rng(None, 5).random()
