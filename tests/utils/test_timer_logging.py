"""Tests for the timer and logging helpers."""

from __future__ import annotations

import io
import logging

import pytest

from repro.utils.logging import configure_logging, get_logger
from repro.utils.timer import Timer


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as timer:
            sum(range(100))
        assert timer.elapsed >= 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_elapsed_while_running(self):
        timer = Timer().start()
        assert timer.elapsed >= 0.0
        timer.stop()

    def test_restart(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            sum(range(10))
        assert timer.elapsed >= 0.0
        assert first >= 0.0


class TestLogging:
    @pytest.fixture(autouse=True)
    def _detach_managed_handlers(self):
        """Remove handlers attached by configure_logging after each test.

        Otherwise later tests that log via the ``repro`` namespace would write
        to this test's (by then closed) StringIO stream.
        """
        yield
        logger = get_logger()
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_managed", False):
                logger.removeHandler(handler)

    def test_get_logger_namespaced(self):
        assert get_logger("core.pra").name == "repro.core.pra"
        assert get_logger().name == "repro"
        assert get_logger("repro.sim").name == "repro.sim"

    def test_configure_logging_attaches_single_handler(self):
        stream = io.StringIO()
        logger = configure_logging(level=logging.INFO, stream=stream)
        configure_logging(level=logging.INFO, stream=stream)
        managed = [h for h in logger.handlers if getattr(h, "_repro_managed", False)]
        assert len(managed) == 1

    def test_configured_logger_writes_to_stream(self):
        stream = io.StringIO()
        configure_logging(level=logging.INFO, stream=stream)
        get_logger("test").info("hello world")
        assert "hello world" in stream.getvalue()
