"""Piece-level BitTorrent swarm simulator (the Section 5 validation substrate).

The paper validates DSA-discovered protocols by modifying an instrumented
BitTorrent client and running cluster experiments: 1 seeder (128 KBps), 50
leechers with Piatek-style upload capacities, a 5 MB file, peers leaving on
completion, and average download times compared across protocol mixes
(Figures 9 and 10).  This sub-package reproduces that substrate as a
discrete-time simulator:

* :mod:`repro.bittorrent.torrent` / :mod:`repro.bittorrent.pieces` — torrent
  metadata, per-peer piece sets and local-rarest-first piece selection;
* :mod:`repro.bittorrent.tracker` — the (local) tracker handing out peer
  lists;
* :mod:`repro.bittorrent.rate` — sliding-window download-rate estimation, the
  signal BitTorrent's choker ranks on;
* :mod:`repro.bittorrent.variants` — client variants: reference BitTorrent,
  Birds, Loyal-When-needed, Sort-S and Random ranking;
* :mod:`repro.bittorrent.peer` / :mod:`repro.bittorrent.seeder` /
  :mod:`repro.bittorrent.choker` — leecher and seeder state plus the rechoke
  algorithm (regular unchokes + rotating optimistic unchoke);
* :mod:`repro.bittorrent.swarm` — the swarm driver measuring per-peer
  download completion times.
"""

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.events import NetworkEvent, NetworkState
from repro.bittorrent.pieces import PieceSet, select_piece_rarest_first
from repro.bittorrent.rate import RateEstimator, RateLimiter
from repro.bittorrent.scenario import (
    SwarmArrivalModel,
    SwarmChurnWindow,
    SwarmPeerPlan,
    SwarmScenarioConfig,
    SwarmShift,
)
from repro.bittorrent.swarm import SwarmPeerRecord, SwarmResult, SwarmSimulation
from repro.bittorrent.torrent import TorrentMetadata
from repro.bittorrent.tracker import Tracker
from repro.bittorrent.variants import (
    ClientVariant,
    birds_client,
    loyal_when_needed_client,
    random_client,
    reference_bittorrent,
    sort_s_client,
    variant_by_name,
    variant_from_behavior,
)

__all__ = [
    "SwarmConfig",
    "NetworkEvent",
    "NetworkState",
    "PieceSet",
    "select_piece_rarest_first",
    "RateEstimator",
    "RateLimiter",
    "SwarmArrivalModel",
    "SwarmChurnWindow",
    "SwarmPeerPlan",
    "SwarmScenarioConfig",
    "SwarmShift",
    "SwarmPeerRecord",
    "SwarmResult",
    "SwarmSimulation",
    "TorrentMetadata",
    "Tracker",
    "ClientVariant",
    "reference_bittorrent",
    "birds_client",
    "loyal_when_needed_client",
    "sort_s_client",
    "random_client",
    "variant_by_name",
    "variant_from_behavior",
]
