"""Torrent metadata.

A torrent is described, for the purposes of the swarm simulator, by its total
size and piece size, from which the number of pieces follows.  The Section 5
experiments download a 5 MB file; the default piece size of 256 KB matches
common BitTorrent practice for small torrents (and gives the 20 pieces the
swarm trades).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TorrentMetadata"]


@dataclass(frozen=True)
class TorrentMetadata:
    """Static description of the content being distributed.

    Parameters
    ----------
    total_size_kb:
        Total content size in kilobytes.
    piece_size_kb:
        Piece size in kilobytes.  The last piece may be smaller; the
        simulator treats all pieces as equal-sized, which only changes
        completion times by a sub-piece rounding amount.
    """

    total_size_kb: float
    piece_size_kb: float = 256.0

    def __post_init__(self) -> None:
        if self.total_size_kb <= 0:
            raise ValueError("total_size_kb must be positive")
        if self.piece_size_kb <= 0:
            raise ValueError("piece_size_kb must be positive")
        if self.piece_size_kb > self.total_size_kb:
            raise ValueError("piece_size_kb cannot exceed total_size_kb")

    @property
    def piece_count(self) -> int:
        """Number of pieces (rounded up)."""
        full, remainder = divmod(self.total_size_kb, self.piece_size_kb)
        return int(full) + (1 if remainder > 0 else 0)

    @classmethod
    def for_file(cls, size_mb: float = 5.0, piece_size_kb: float = 256.0) -> "TorrentMetadata":
        """Convenience constructor for a file of ``size_mb`` megabytes."""
        if size_mb <= 0:
            raise ValueError("size_mb must be positive")
        return cls(total_size_kb=size_mb * 1024.0, piece_size_kb=piece_size_kb)
