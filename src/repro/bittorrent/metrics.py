"""Metrics over swarm results: per-variant download-time summaries.

Figures 9 and 10 report average download times per client variant with 95%
confidence intervals over at least 10 runs.  :func:`summarize_by_variant`
pools the download times of repeated runs per variant and returns
:class:`~repro.stats.summary.SummaryStats` for each, which is what the
experiment drivers print.

Scenario-compiled swarms carry provenance labels per peer (behaviour group,
capacity class, arrival cohort), so the same pooling generalises:
:func:`summarize_by_class` and :func:`group_cohort_breakdown` line swarm
metrics up with the abstract engine's
:class:`~repro.sim.metrics.GroupCohortMetrics` — completion fraction plus
download-time summaries per (group, cohort) or per capacity class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bittorrent.swarm import SwarmResult
from repro.stats.summary import SummaryStats, summarize

__all__ = [
    "SwarmGroupMetrics",
    "censored_mean_download_time",
    "pooled_download_times",
    "summarize_by_variant",
    "summarize_by_class",
    "group_cohort_breakdown",
]


@dataclass(frozen=True)
class SwarmGroupMetrics:
    """Pooled download outcomes of one peer stratum across swarm runs.

    The swarm-side counterpart of the abstract engine's per-(group, cohort)
    metrics: ``peers`` counts every matching leecher over all runs,
    ``completion_fraction`` the share that finished before the horizon (or
    an early departure), and ``download_time`` summarises the finishers
    (``None`` when nobody completed).
    """

    peers: int
    completed: int
    download_time: Optional[SummaryStats]
    mean_downloaded_kb: float

    @property
    def completion_fraction(self) -> float:
        return self.completed / self.peers if self.peers else 0.0


def censored_mean_download_time(results: Iterable[SwarmResult]) -> float:
    """Mean download time with non-finishers censored at the run horizon.

    Peers that never completed (still downloading at ``max_ticks``, or
    departed early) count at their run's full horizon rather than being
    dropped — dropping them would *reward* a protocol for starving its
    slowest peers.  This is the swarm-side scalar used to rank protocols
    within a scenario; ``nan`` if there are no leechers at all.
    """
    total = 0.0
    peers = 0
    for result in results:
        horizon = float(result.config.max_ticks)
        for record in result.records:
            peers += 1
            time = record.download_time
            total += time if time is not None else horizon
    return total / peers if peers else float("nan")


def pooled_download_times(
    results: Iterable[SwarmResult], variant: Optional[str] = None
) -> List[float]:
    """Download times of completed leechers pooled across runs."""
    times: List[float] = []
    for result in results:
        times.extend(result.download_times(variant))
    return times


def summarize_by_variant(
    results: Iterable[SwarmResult], confidence: float = 0.95
) -> Dict[str, SummaryStats]:
    """Per-variant download-time summaries pooled across runs.

    Variants with no completed leechers are omitted (printing a mean of an
    empty sample would hide a failure; the completion fraction is reported
    separately by the experiment drivers).
    """
    results = list(results)
    variants = sorted({v for result in results for v in result.variants()})
    summaries: Dict[str, SummaryStats] = {}
    for variant in variants:
        times = pooled_download_times(results, variant)
        if times:
            summaries[variant] = summarize(times, confidence=confidence)
    return summaries


def _pool_stratum(
    results: List[SwarmResult], confidence: float, **filters: Optional[str]
) -> SwarmGroupMetrics:
    peers = 0
    completed = 0
    downloaded = 0.0
    times: List[float] = []
    for result in results:
        for record in result._select(**filters):
            peers += 1
            downloaded += record.downloaded_kb
            if record.download_time is not None:
                completed += 1
                times.append(record.download_time)
    return SwarmGroupMetrics(
        peers=peers,
        completed=completed,
        download_time=summarize(times, confidence=confidence) if times else None,
        mean_downloaded_kb=downloaded / peers if peers else 0.0,
    )


def summarize_by_class(
    results: Iterable[SwarmResult], confidence: float = 0.95
) -> Dict[str, SwarmGroupMetrics]:
    """Per-capacity-class download outcomes pooled across runs.

    Peers without a capacity class (default-distribution swarms) pool under
    the pseudo-class ``"unclassed"`` so nothing silently drops out.
    """
    results = list(results)
    classes = sorted({c for result in results for c in result.capacity_classes()})
    pooled = {
        cls: _pool_stratum(results, confidence, capacity_class=cls)
        for cls in classes
    }
    times: List[float] = []
    downloaded = 0.0
    peers = 0
    completed = 0
    for result in results:
        for record in result.records:
            if record.capacity_class is None:
                peers += 1
                downloaded += record.downloaded_kb
                if record.download_time is not None:
                    completed += 1
                    times.append(record.download_time)
    if peers:
        pooled["unclassed"] = SwarmGroupMetrics(
            peers=peers,
            completed=completed,
            download_time=summarize(times, confidence=confidence) if times else None,
            mean_downloaded_kb=downloaded / peers,
        )
    return pooled


def group_cohort_breakdown(
    results: Iterable[SwarmResult], confidence: float = 0.95
) -> Dict[Tuple[str, str], SwarmGroupMetrics]:
    """Per-(behaviour group, arrival cohort) outcomes pooled across runs.

    Keys mirror the abstract engine's group-cohort metrics so the atlas and
    cross-substrate reports can treat both substrates uniformly.
    """
    results = list(results)
    strata = sorted(
        {(r.group, r.cohort) for result in results for r in result.records}
    )
    return {
        (group, cohort): _pool_stratum(
            results, confidence, group=group, cohort=cohort
        )
        for group, cohort in strata
    }
