"""Metrics over swarm results: per-variant download-time summaries.

Figures 9 and 10 report average download times per client variant with 95%
confidence intervals over at least 10 runs.  :func:`summarize_by_variant`
pools the download times of repeated runs per variant and returns
:class:`~repro.stats.summary.SummaryStats` for each, which is what the
experiment drivers print.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.bittorrent.swarm import SwarmResult
from repro.stats.summary import SummaryStats, summarize

__all__ = ["pooled_download_times", "summarize_by_variant"]


def pooled_download_times(
    results: Iterable[SwarmResult], variant: Optional[str] = None
) -> List[float]:
    """Download times of completed leechers pooled across runs."""
    times: List[float] = []
    for result in results:
        times.extend(result.download_times(variant))
    return times


def summarize_by_variant(
    results: Iterable[SwarmResult], confidence: float = 0.95
) -> Dict[str, SummaryStats]:
    """Per-variant download-time summaries pooled across runs.

    Variants with no completed leechers are omitted (printing a mean of an
    empty sample would hide a failure; the completion fraction is reported
    separately by the experiment drivers).
    """
    results = list(results)
    variants = sorted({v for result in results for v in result.variants()})
    summaries: Dict[str, SummaryStats] = {}
    for variant in variants:
        times = pooled_download_times(results, variant)
        if times:
            summaries[variant] = summarize(times, confidence=confidence)
    return summaries
