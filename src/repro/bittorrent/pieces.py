"""Per-peer piece bookkeeping and rarest-first piece selection.

Every peer tracks which pieces it owns (:class:`PieceSet`).  When a leecher
is unchoked by a neighbour it must decide which missing piece to request;
BitTorrent's *local rarest first* policy picks the piece that the fewest of
the leecher's neighbours have, which keeps piece availability balanced and is
essential for swarm health.  :func:`select_piece_rarest_first` implements
that policy over the neighbours' piece sets (with random tie-breaking).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["PieceSet", "select_piece_rarest_first"]


class PieceSet:
    """The set of pieces a peer owns, out of ``piece_count`` total."""

    def __init__(self, piece_count: int, complete: bool = False):
        if piece_count < 1:
            raise ValueError("piece_count must be >= 1")
        self.piece_count = int(piece_count)
        self._owned: Set[int] = set(range(piece_count)) if complete else set()
        #: Bumped on every mutation; lets callers cache derived facts (e.g.
        #: pairwise interest) and invalidate exactly when a set changes.
        self.version = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, piece: int) -> None:
        """Mark ``piece`` as owned."""
        self._check(piece)
        if piece not in self._owned:
            self._owned.add(piece)
            self.version += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def has(self, piece: int) -> bool:
        """Whether ``piece`` is owned."""
        self._check(piece)
        return piece in self._owned

    def owned(self) -> Set[int]:
        """A copy of the owned piece indices."""
        return set(self._owned)

    def missing(self) -> Set[int]:
        """The piece indices not yet owned."""
        return set(range(self.piece_count)) - self._owned

    def owned_count(self) -> int:
        return len(self._owned)

    @property
    def is_complete(self) -> bool:
        """Whether every piece is owned."""
        return len(self._owned) == self.piece_count

    def interesting_pieces(self, other: "PieceSet") -> Set[int]:
        """Pieces ``other`` owns that this peer lacks (i.e. why ``other`` is interesting)."""
        return other._owned - self._owned

    def is_interested_in(self, other: "PieceSet") -> bool:
        """Whether this peer wants anything ``other`` has."""
        # Subset test instead of set difference: short-circuits and avoids
        # allocating a temporary set on the per-tick hot path.
        return not other._owned <= self._owned

    def _check(self, piece: int) -> None:
        if not 0 <= piece < self.piece_count:
            raise IndexError(f"piece {piece} out of range [0, {self.piece_count})")

    def __len__(self) -> int:
        return len(self._owned)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PieceSet({len(self._owned)}/{self.piece_count})"


def select_piece_rarest_first(
    downloader: PieceSet,
    uploader: PieceSet,
    neighbour_sets: Sequence[PieceSet],
    rng: random.Random,
    exclude: Optional[Iterable[int]] = None,
) -> Optional[int]:
    """Pick the next piece to request from ``uploader`` using local rarest first.

    Parameters
    ----------
    downloader:
        The requesting peer's pieces.
    uploader:
        The unchoking peer's pieces; only pieces it owns can be requested.
    neighbour_sets:
        Piece sets of the downloader's neighbours, used to estimate rarity.
    rng:
        Random generator for tie-breaking among equally rare pieces.
    exclude:
        Pieces to skip (e.g. already being fetched from another neighbour).
        If excluding everything leaves no choice, the exclusion is ignored
        (end-game behaviour: duplicate requests are preferable to idling).

    Returns
    -------
    int or None
        The chosen piece index, or ``None`` when the uploader has nothing the
        downloader wants.
    """
    wanted = downloader.interesting_pieces(uploader)
    if not wanted:
        return None
    excluded = set(exclude) if exclude is not None else set()
    candidates = wanted - excluded
    if not candidates:
        candidates = wanted  # end-game: allow duplicate in-flight pieces

    availability: Dict[int, int] = {piece: 0 for piece in candidates}
    for neighbour in neighbour_sets:
        for piece in candidates:
            if neighbour.has(piece):
                availability[piece] += 1

    rarest_count = min(availability.values())
    rarest = [piece for piece, count in availability.items() if count == rarest_count]
    return rng.choice(rarest)
