"""The tracker: peer registration and peer-list announcements.

The Section 5 experiments use a local tracker.  In the simulator the tracker
keeps the set of active swarm members and answers announces with a bounded
random subset of the other members, exactly like a real tracker's announce
response.  With 50 leechers the default response size covers the whole swarm,
matching the paper's fully-connected assumption, but the bound matters for
larger simulated swarms (and is unit tested).
"""

from __future__ import annotations

import random
from typing import List, Set

__all__ = ["Tracker"]


class Tracker:
    """A minimal BitTorrent tracker for the swarm simulator.

    Parameters
    ----------
    max_peers_per_announce:
        Maximum number of peer ids returned per announce (real trackers
        default to 50).
    """

    def __init__(self, max_peers_per_announce: int = 50):
        if max_peers_per_announce < 1:
            raise ValueError("max_peers_per_announce must be >= 1")
        self.max_peers_per_announce = int(max_peers_per_announce)
        self._members: Set[int] = set()

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def register(self, peer_id: int) -> None:
        """Add a peer to the swarm."""
        self._members.add(peer_id)

    def unregister(self, peer_id: int) -> None:
        """Remove a peer from the swarm (e.g. it completed and left)."""
        self._members.discard(peer_id)

    def members(self) -> Set[int]:
        """A copy of the current member set."""
        return set(self._members)

    @property
    def swarm_size(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------ #
    # announces
    # ------------------------------------------------------------------ #
    def announce(self, peer_id: int, rng: random.Random) -> List[int]:
        """Return a peer list for ``peer_id`` (never containing itself).

        The requesting peer is registered as a side effect, as with a real
        announce.
        """
        self.register(peer_id)
        others = [member for member in self._members if member != peer_id]
        if len(others) <= self.max_peers_per_announce:
            rng.shuffle(others)
            return others
        return rng.sample(others, self.max_peers_per_announce)
