"""Leecher state for the piece-level swarm simulator.

A :class:`Leecher` owns everything a simulated BitTorrent client tracks: its
piece set, the neighbours the tracker told it about, the download-rate
estimators feeding the choker, loyalty counters (for the Loyal-When-needed
variant), the set of peers it is currently unchoking, its optimistic-unchoke
target, and the in-flight piece it is fetching from each unchoking
neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.bittorrent.pieces import PieceSet
from repro.bittorrent.rate import RateEstimator, RateLimiter
from repro.bittorrent.variants import ClientVariant

__all__ = ["Leecher"]


@dataclass
class Leecher:
    """Mutable state of one leecher.

    Attributes
    ----------
    peer_id:
        Identity within the swarm (the seeder uses a separate id).
    upload_capacity:
        Upload bandwidth in KB per tick (KBps).
    variant:
        The client variant this leecher runs.
    pieces:
        Pieces owned so far.
    neighbours:
        Peer ids learned from the tracker (includes the seeder).
    rates:
        Sliding-window estimator of download rates received per neighbour.
    loyalty:
        Consecutive rechoke periods each neighbour kept uploading to us.
    received_this_period:
        KB received per neighbour since the last rechoke (feeds loyalty).
    unchoked:
        Neighbours currently receiving our regular unchokes.
    optimistic_target:
        Neighbour currently holding our optimistic-unchoke slot, if any.
    in_flight:
        For each unchoking neighbour, the piece currently being fetched from
        it.
    joined_tick / completion_tick:
        Arrival time and completion time (``None`` while incomplete).
    group / capacity_class / cohort:
        Scenario-compiled provenance labels (behaviour group, bandwidth
        class, arrival cohort); defaults describe a legacy static swarm.
    limiter:
        Optional token-bucket cap on per-tick uploads (scenario-compiled
        swarms attach one per bandwidth class; ``None`` means uncapped,
        i.e. legacy capacity-per-tick behaviour).
    """

    peer_id: int
    upload_capacity: float
    variant: ClientVariant
    pieces: PieceSet
    neighbours: Set[int] = field(default_factory=set)
    rates: RateEstimator = field(default_factory=RateEstimator)
    loyalty: Dict[int, int] = field(default_factory=dict)
    received_this_period: Dict[int, float] = field(default_factory=dict)
    unchoked: Set[int] = field(default_factory=set)
    optimistic_target: Optional[int] = None
    in_flight: Dict[int, int] = field(default_factory=dict)
    piece_progress: Dict[int, float] = field(default_factory=dict)
    joined_tick: int = 0
    completion_tick: Optional[int] = None
    departed_tick: Optional[int] = None
    group: str = "default"
    capacity_class: Optional[str] = None
    cohort: str = "initial"
    limiter: Optional[RateLimiter] = None
    downloaded_kb: float = 0.0
    uploaded_kb: float = 0.0

    def __post_init__(self) -> None:
        if self.upload_capacity <= 0:
            raise ValueError("upload_capacity must be positive")

    # ------------------------------------------------------------------ #
    # status
    # ------------------------------------------------------------------ #
    @property
    def is_complete(self) -> bool:
        """Whether the leecher has every piece."""
        return self.pieces.is_complete

    @property
    def is_active(self) -> bool:
        """Whether the leecher is still in the swarm (not yet completed)."""
        return self.completion_tick is None

    @property
    def download_time(self) -> Optional[float]:
        """Seconds from joining to completion, or ``None`` if incomplete."""
        if self.completion_tick is None:
            return None
        return float(self.completion_tick - self.joined_tick)

    def per_slot_rate(self, default_slots: int) -> float:
        """Own upload capacity per unchoke slot (the Birds proximity reference)."""
        slots = self.variant.effective_slots(default_slots) + 1
        return self.upload_capacity / slots

    # ------------------------------------------------------------------ #
    # transfer bookkeeping
    # ------------------------------------------------------------------ #
    def record_received(self, sender: int, tick: int, amount_kb: float) -> None:
        """Record bytes received from ``sender`` at ``tick``."""
        self.rates.record(sender, tick, amount_kb)
        self.received_this_period[sender] = (
            self.received_this_period.get(sender, 0.0) + amount_kb
        )

    def update_loyalty_period(self) -> None:
        """Advance loyalty counters at a rechoke boundary and reset the period."""
        givers = {n for n, amount in self.received_this_period.items() if amount > 0}
        for neighbour in givers:
            self.loyalty[neighbour] = self.loyalty.get(neighbour, 0) + 1
        for neighbour in list(self.loyalty.keys()):
            if neighbour not in givers:
                self.loyalty[neighbour] = 0
        self.received_this_period.clear()

    def forget_neighbour(self, neighbour: int) -> None:
        """Remove all state about a departed neighbour."""
        self.neighbours.discard(neighbour)
        self.unchoked.discard(neighbour)
        self.in_flight.pop(neighbour, None)
        self.loyalty.pop(neighbour, None)
        self.received_this_period.pop(neighbour, None)
        self.rates.forget(neighbour)
        if self.optimistic_target == neighbour:
            self.optimistic_target = None

    def currently_unchoked(self) -> Set[int]:
        """Regular unchokes plus the optimistic target (if any)."""
        targets = set(self.unchoked)
        if self.optimistic_target is not None:
            targets.add(self.optimistic_target)
        return targets

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Leecher(id={self.peer_id}, variant={self.variant.name}, "
            f"pieces={self.pieces.owned_count()}/{self.pieces.piece_count})"
        )
