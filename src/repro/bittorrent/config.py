"""Configuration of a swarm experiment.

The defaults follow the experimental setup of Section 5: 50 leechers, one
seeder with 128 KBps upload, a local tracker, a 5 MB file, peers leaving upon
completion and upload capacities from the Piatek-style distribution.  Reduced
presets are provided for tests and benchmarks; the scale actually used per
experiment is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.sim.bandwidth import BandwidthDistribution, piatek_distribution

__all__ = ["SwarmConfig"]


@dataclass(frozen=True)
class SwarmConfig:
    """Parameters of one piece-level swarm simulation.

    Parameters
    ----------
    n_leechers:
        Number of leechers joining at time zero (a flash crowd, as in the
        paper's cluster runs).
    seeder_upload_kbps:
        Upload capacity of the single initial seeder.
    file_size_mb, piece_size_kb:
        Content size and piece size.
    rechoke_interval:
        Seconds between choker evaluations (the reference client uses 10 s).
    optimistic_interval:
        Seconds between optimistic-unchoke rotations (reference: 30 s).
    regular_slots:
        Number of regular (reciprocating) unchoke slots per leecher.
    seeder_slots:
        Number of peers the seeder unchokes at a time (uniformly rotated).
    max_ticks:
        Simulation horizon in seconds; leechers that have not finished by
        then are reported as incomplete.
    bandwidth:
        Upload-capacity distribution of the leechers; ``None`` selects the
        Piatek-style default.
    """

    n_leechers: int = 50
    seeder_upload_kbps: float = 128.0
    file_size_mb: float = 5.0
    piece_size_kb: float = 256.0
    rechoke_interval: int = 10
    optimistic_interval: int = 30
    regular_slots: int = 3
    seeder_slots: int = 4
    max_ticks: int = 3600
    bandwidth: Optional[BandwidthDistribution] = None

    def __post_init__(self) -> None:
        if self.n_leechers < 2:
            raise ValueError("n_leechers must be at least 2")
        if self.seeder_upload_kbps <= 0:
            raise ValueError("seeder_upload_kbps must be positive")
        if self.file_size_mb <= 0:
            raise ValueError("file_size_mb must be positive")
        if self.piece_size_kb <= 0:
            raise ValueError("piece_size_kb must be positive")
        if self.rechoke_interval < 1:
            raise ValueError("rechoke_interval must be >= 1")
        if self.optimistic_interval < self.rechoke_interval:
            raise ValueError("optimistic_interval must be >= rechoke_interval")
        if self.regular_slots < 1:
            raise ValueError("regular_slots must be >= 1")
        if self.seeder_slots < 1:
            raise ValueError("seeder_slots must be >= 1")
        if self.max_ticks < self.rechoke_interval:
            raise ValueError("max_ticks must cover at least one rechoke interval")

    def distribution(self) -> BandwidthDistribution:
        """The effective leecher bandwidth distribution."""
        return self.bandwidth if self.bandwidth is not None else piatek_distribution()

    def with_(self, **changes) -> "SwarmConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls) -> "SwarmConfig":
        """The Section 5 setup (50 leechers, 1 seeder @ 128 KBps, 5 MB file)."""
        return cls()

    @classmethod
    def small(cls) -> "SwarmConfig":
        """Benchmark-scale swarm: fewer leechers, smaller file."""
        return cls(n_leechers=20, file_size_mb=2.0, max_ticks=2400)

    @classmethod
    def smoke(cls) -> "SwarmConfig":
        """Minimal swarm for unit tests."""
        return cls(n_leechers=6, file_size_mb=1.0, max_ticks=1800)
