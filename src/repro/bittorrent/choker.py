"""The leecher choking algorithm.

At every rechoke interval a leecher re-evaluates which interested neighbours
to unchoke:

* the **regular slots** go to the top-ranked interested neighbours, where the
  ranking is the client variant's (fastest-first for the reference client,
  proximity for Birds, loyalty for Loyal-When-needed, slowest for Sort-S,
  random for the Random variant);
* the **optimistic slot** depends on the variant's policy: the reference
  client rotates it over random interested choked neighbours every optimistic
  interval, Loyal-When-needed only opens it when it has fewer interested
  candidates than regular slots, and Sort-S never opens it.

The choker is a pure function of the leecher's state plus the candidate list,
which makes it independently testable.
"""

from __future__ import annotations

import random
from typing import Dict, Sequence

from repro.bittorrent.peer import Leecher

__all__ = ["run_rechoke"]


def run_rechoke(
    leecher: Leecher,
    interested: Sequence[int],
    tick: int,
    default_slots: int,
    optimistic_rotation_due: bool,
    rng: random.Random,
) -> None:
    """Re-evaluate the leecher's unchoke set in place.

    Parameters
    ----------
    leecher:
        The choking leecher.
    interested:
        Active neighbours currently interested in the leecher's pieces.
    tick:
        Current simulation tick (used for rate lookups).
    default_slots:
        Swarm-wide default number of regular slots (a variant may override).
    optimistic_rotation_due:
        Whether this rechoke coincides with an optimistic-unchoke rotation
        boundary (every ``optimistic_interval`` seconds).
    rng:
        Random generator for ranking tie-breaks and optimistic selection.
    """
    variant = leecher.variant
    slots = variant.effective_slots(default_slots)

    rates: Dict[int, float] = {
        neighbour: leecher.rates.rate(neighbour, tick) for neighbour in interested
    }
    ranked = variant.rank(
        interested,
        rates,
        leecher.loyalty,
        leecher.per_slot_rate(default_slots),
        rng,
    )
    leecher.unchoked = set(ranked[:slots])

    _update_optimistic(leecher, ranked, slots, optimistic_rotation_due, rng)


def _update_optimistic(
    leecher: Leecher,
    ranked: Sequence[int],
    slots: int,
    rotation_due: bool,
    rng: random.Random,
) -> None:
    """Apply the variant's optimistic-unchoke policy."""
    variant = leecher.variant
    policy = variant.optimistic_policy

    if policy == "never":
        leecher.optimistic_target = None
        return

    # Candidates for the optimistic slot: interested neighbours not already
    # holding a regular slot.
    candidates = [n for n in ranked if n not in leecher.unchoked]

    if policy == "when_needed":
        if len(leecher.unchoked) >= slots or not candidates:
            leecher.optimistic_target = None
        else:
            leecher.optimistic_target = rng.choice(candidates)
        return

    # Periodic policy (reference client): keep the current target between
    # rotations as long as it is still a valid candidate; rotate to a random
    # candidate when the rotation is due or the target became invalid.
    if not candidates:
        leecher.optimistic_target = None
        return
    target_invalid = (
        leecher.optimistic_target is None or leecher.optimistic_target not in candidates
    )
    if rotation_due or target_invalid:
        leecher.optimistic_target = rng.choice(candidates)
