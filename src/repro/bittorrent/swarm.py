"""The swarm driver: discrete-time simulation of a BitTorrent download.

:class:`SwarmSimulation` wires together the tracker, the seeder, the leechers
and the choker, advancing time in one-second ticks:

* every ``rechoke_interval`` ticks each leecher (and the seeder) re-evaluates
  its unchoke set; loyalty counters advance at the same boundary;
* every tick each uploader divides its upload capacity equally over its
  unchoked, interested, still-active neighbours; the receiving peer
  accumulates the bytes towards a piece chosen by local rarest first;
* a leecher that completes all pieces leaves the swarm at the end of the tick
  (the Section 5 setup has peers leave upon completing their download);
* the run ends when every leecher has finished or the time horizon is hit.

The result records each leecher's download time, which is the quantity
Figures 9 and 10 compare across protocol mixes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.bittorrent.choker import run_rechoke
from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.peer import Leecher
from repro.bittorrent.pieces import PieceSet, select_piece_rarest_first
from repro.bittorrent.seeder import Seeder
from repro.bittorrent.torrent import TorrentMetadata
from repro.bittorrent.tracker import Tracker
from repro.bittorrent.variants import ClientVariant

__all__ = ["SwarmPeerRecord", "SwarmResult", "SwarmSimulation"]


@dataclass(frozen=True)
class SwarmPeerRecord:
    """Per-leecher outcome of a swarm run."""

    peer_id: int
    variant: str
    upload_capacity: float
    download_time: Optional[float]

    @property
    def completed(self) -> bool:
        return self.download_time is not None


@dataclass
class SwarmResult:
    """Outcome of one swarm simulation."""

    config: SwarmConfig
    records: List[SwarmPeerRecord]
    ticks_executed: int

    def variants(self) -> List[str]:
        """Distinct variant names present, sorted."""
        return sorted({r.variant for r in self.records})

    def download_times(self, variant: Optional[str] = None) -> List[float]:
        """Download times of completed leechers (optionally one variant only)."""
        return [
            r.download_time
            for r in self.records
            if r.download_time is not None and (variant is None or r.variant == variant)
        ]

    def mean_download_time(self, variant: Optional[str] = None) -> float:
        """Average download time of completed leechers (``nan`` if none completed)."""
        times = self.download_times(variant)
        if not times:
            return float("nan")
        return sum(times) / len(times)

    def completion_fraction(self, variant: Optional[str] = None) -> float:
        """Fraction of leechers (of the given variant) that completed in time."""
        relevant = [
            r for r in self.records if variant is None or r.variant == variant
        ]
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.completed) / len(relevant)


class SwarmSimulation:
    """One piece-level swarm run.

    Parameters
    ----------
    config:
        Swarm parameters (size, file, choker timings, ...).
    variants:
        Client variant per leecher, or a single variant broadcast to all.
    seed:
        Seed of the run's private random generator.
    """

    def __init__(
        self,
        config: SwarmConfig,
        variants: Sequence[ClientVariant],
        seed: Optional[int] = None,
    ):
        self.config = config
        self._rng = random.Random(seed)
        self.torrent = TorrentMetadata(
            total_size_kb=config.file_size_mb * 1024.0,
            piece_size_kb=config.piece_size_kb,
        )

        variants = list(variants)
        if len(variants) == 1:
            variants = variants * config.n_leechers
        if len(variants) != config.n_leechers:
            raise ValueError(
                f"expected 1 or {config.n_leechers} variants, got {len(variants)}"
            )

        piece_count = self.torrent.piece_count
        distribution = config.distribution()

        self.seeder_id = config.n_leechers
        self.tracker = Tracker(max_peers_per_announce=max(50, config.n_leechers))
        self.seeder = Seeder(
            peer_id=self.seeder_id,
            upload_capacity=config.seeder_upload_kbps,
            pieces=PieceSet(piece_count, complete=True),
            slots=config.seeder_slots,
        )
        self.tracker.register(self.seeder_id)

        self.leechers: Dict[int, Leecher] = {}
        for peer_id in range(config.n_leechers):
            self.tracker.register(peer_id)
            self.leechers[peer_id] = Leecher(
                peer_id=peer_id,
                upload_capacity=distribution.sample(self._rng),
                variant=variants[peer_id],
                pieces=PieceSet(piece_count),
            )

        # Everyone announces once the swarm is fully registered; the seeder is
        # always added so the swarm is guaranteed to be bootstrappable.
        for leecher in self.leechers.values():
            neighbours = set(self.tracker.announce(leecher.peer_id, self._rng))
            neighbours.add(self.seeder_id)
            neighbours.discard(leecher.peer_id)
            leecher.neighbours = neighbours

        self._active: Set[int] = set(self.leechers.keys())
        self._ticks_executed = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _pieces_of(self, peer_id: int) -> PieceSet:
        if peer_id == self.seeder_id:
            return self.seeder.pieces
        return self.leechers[peer_id].pieces

    def _interested_in(self, owner_pieces: PieceSet, peer_ids: Sequence[int]) -> List[int]:
        """Active leechers among ``peer_ids`` that want something from ``owner_pieces``."""
        interested = []
        for peer_id in peer_ids:
            if peer_id == self.seeder_id or peer_id not in self._active:
                continue
            if self.leechers[peer_id].pieces.is_interested_in(owner_pieces):
                interested.append(peer_id)
        return interested

    def _rechoke_all(self, tick: int) -> None:
        config = self.config
        rotation_due = tick % config.optimistic_interval == 0
        for peer_id in sorted(self._active):
            leecher = self.leechers[peer_id]
            if tick > 0:
                leecher.update_loyalty_period()
            interested = self._interested_in(leecher.pieces, sorted(leecher.neighbours))
            run_rechoke(
                leecher,
                interested,
                tick,
                config.regular_slots,
                rotation_due,
                self._rng,
            )
        seeder_interested = self._interested_in(
            self.seeder.pieces, sorted(self._active)
        )
        self.seeder.rechoke(seeder_interested, self._rng)

    def _transfer(
        self,
        uploader_id: int,
        uploader_pieces: PieceSet,
        target: Leecher,
        amount_kb: float,
        tick: int,
    ) -> None:
        """Deliver ``amount_kb`` from ``uploader_id`` to ``target`` this tick."""
        piece = target.in_flight.get(uploader_id)
        if piece is None or target.pieces.has(piece) or not uploader_pieces.has(piece):
            neighbour_sets = [
                self._pieces_of(n)
                for n in target.neighbours
                if n == self.seeder_id or n in self._active
            ]
            piece = select_piece_rarest_first(
                target.pieces,
                uploader_pieces,
                neighbour_sets,
                self._rng,
                exclude=target.in_flight.values(),
            )
            if piece is None:
                return
            target.in_flight[uploader_id] = piece

        target.record_received(uploader_id, tick, amount_kb)
        progress = target.piece_progress.get(piece, 0.0) + amount_kb
        if progress >= self.torrent.piece_size_kb:
            target.pieces.add(piece)
            target.piece_progress.pop(piece, None)
            # Drop every in-flight entry pointing at the finished piece.
            for neighbour, in_flight_piece in list(target.in_flight.items()):
                if in_flight_piece == piece:
                    del target.in_flight[neighbour]
        else:
            target.piece_progress[piece] = progress

    def _upload_from(self, uploader_id: int, tick: int) -> None:
        """Run one tick of uploads from ``uploader_id`` to its unchoked targets."""
        if uploader_id == self.seeder_id:
            capacity = self.seeder.upload_capacity
            unchoked = self.seeder.unchoked
            uploader_pieces = self.seeder.pieces
        else:
            leecher = self.leechers[uploader_id]
            capacity = leecher.upload_capacity
            unchoked = leecher.currently_unchoked()
            uploader_pieces = leecher.pieces

        targets = [
            t
            for t in unchoked
            if t in self._active
            and self.leechers[t].pieces.is_interested_in(uploader_pieces)
        ]
        if not targets:
            return
        per_target = capacity / len(targets)
        for target_id in sorted(targets):
            self._transfer(
                uploader_id, uploader_pieces, self.leechers[target_id], per_target, tick
            )

    def _handle_completions(self, tick: int) -> None:
        finished = [pid for pid in self._active if self.leechers[pid].is_complete]
        for peer_id in finished:
            leecher = self.leechers[peer_id]
            leecher.completion_tick = tick + 1
            self._active.discard(peer_id)
            self.tracker.unregister(peer_id)
            self.seeder.forget_neighbour(peer_id)
            for other_id in self._active:
                self.leechers[other_id].forget_neighbour(peer_id)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SwarmResult:
        """Execute the swarm until everyone finishes or the horizon is reached."""
        config = self.config
        for tick in range(config.max_ticks):
            self._ticks_executed = tick + 1
            if not self._active:
                break
            if tick % config.rechoke_interval == 0:
                self._rechoke_all(tick)
            self._upload_from(self.seeder_id, tick)
            for uploader_id in sorted(self._active):
                self._upload_from(uploader_id, tick)
            self._handle_completions(tick)
            if not self._active:
                break

        records = [
            SwarmPeerRecord(
                peer_id=leecher.peer_id,
                variant=leecher.variant.name,
                upload_capacity=leecher.upload_capacity,
                download_time=leecher.download_time,
            )
            for leecher in self.leechers.values()
        ]
        return SwarmResult(
            config=config, records=records, ticks_executed=self._ticks_executed
        )
