"""The swarm driver: discrete-time simulation of a BitTorrent download.

:class:`SwarmSimulation` wires together the tracker, the seeder, the leechers
and the choker, advancing time in one-second ticks:

* every ``rechoke_interval`` ticks each leecher (and the seeder) re-evaluates
  its unchoke set; loyalty counters advance at the same boundary;
* every tick each uploader divides its upload budget equally over its
  unchoked, interested, still-active neighbours; the receiving peer
  accumulates the bytes towards a piece chosen by local rarest first;
* a leecher that completes all pieces leaves the swarm at the end of the tick
  (the Section 5 setup has peers leave upon completing their download);
* the run ends when every leecher has finished or the time horizon is hit.

The simulation runs in one of two modes.  The legacy mode — ``config`` plus
a variant list — reproduces the original static swarm bit-for-bit.  Passing
``scenario=`` (a compiled :class:`~repro.bittorrent.scenario.SwarmScenarioConfig`)
enables the scenario substrate: mid-run arrivals and departures through the
tracker, per-bandwidth-class rate limits, behaviour shifts at round
boundaries and injected network events (link degradation, partition/heal).

Pairwise interest ("does A want anything B has?") dominates the per-tick
cost of large swarms; it is memoised against :class:`PieceSet` version
counters so the O(peers × neighbours) transfer loop recomputes it only when
one of the two piece sets actually changed.

The result records each leecher's download time, which is the quantity
Figures 9 and 10 compare across protocol mixes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bittorrent.choker import run_rechoke
from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.events import NetworkState
from repro.bittorrent.peer import Leecher
from repro.bittorrent.pieces import PieceSet, select_piece_rarest_first
from repro.bittorrent.rate import RateLimiter
from repro.bittorrent.scenario import (
    SwarmChurnWindow,
    SwarmPeerPlan,
    SwarmScenarioConfig,
    SwarmShift,
)
from repro.bittorrent.seeder import Seeder
from repro.bittorrent.torrent import TorrentMetadata
from repro.bittorrent.tracker import Tracker
from repro.bittorrent.variants import ClientVariant

__all__ = ["SwarmPeerRecord", "SwarmResult", "SwarmSimulation"]


def _poisson(rng: random.Random, lam: float) -> int:
    """Knuth's Poisson sampler (rates here are a handful per round at most)."""
    if lam <= 0.0:
        return 0
    threshold = math.exp(-lam)
    count, product = 0, 1.0
    while True:
        product *= rng.random()
        if product <= threshold:
            return count
        count += 1


@dataclass(frozen=True)
class SwarmPeerRecord:
    """Per-leecher outcome of a swarm run.

    The scenario fields default to the values a legacy static swarm implies:
    every peer is an ``"initial"``-cohort member of group ``"default"`` with
    no capacity class, joining at tick 0 and never departing early.
    """

    peer_id: int
    variant: str
    upload_capacity: float
    download_time: Optional[float]
    group: str = "default"
    capacity_class: Optional[str] = None
    cohort: str = "initial"
    joined_tick: int = 0
    departed_tick: Optional[int] = None
    downloaded_kb: float = 0.0

    @property
    def completed(self) -> bool:
        return self.download_time is not None


@dataclass
class SwarmResult:
    """Outcome of one swarm simulation."""

    config: SwarmConfig
    records: List[SwarmPeerRecord]
    ticks_executed: int
    total_transferred_kb: float = 0.0
    arrivals: int = 0
    departures: int = 0
    peak_active: int = 0

    def variants(self) -> List[str]:
        """Distinct variant names present, sorted."""
        return sorted({r.variant for r in self.records})

    def groups(self) -> List[str]:
        """Distinct behaviour-group labels present, sorted."""
        return sorted({r.group for r in self.records})

    def capacity_classes(self) -> List[str]:
        """Distinct capacity-class labels present (unclassed peers excluded)."""
        return sorted({r.capacity_class for r in self.records if r.capacity_class})

    def _select(
        self,
        variant: Optional[str] = None,
        group: Optional[str] = None,
        capacity_class: Optional[str] = None,
        cohort: Optional[str] = None,
    ) -> List[SwarmPeerRecord]:
        return [
            r
            for r in self.records
            if (variant is None or r.variant == variant)
            and (group is None or r.group == group)
            and (capacity_class is None or r.capacity_class == capacity_class)
            and (cohort is None or r.cohort == cohort)
        ]

    def download_times(
        self,
        variant: Optional[str] = None,
        group: Optional[str] = None,
        capacity_class: Optional[str] = None,
        cohort: Optional[str] = None,
    ) -> List[float]:
        """Download times of completed leechers matching the given filters."""
        return [
            r.download_time
            for r in self._select(variant, group, capacity_class, cohort)
            if r.download_time is not None
        ]

    def mean_download_time(
        self,
        variant: Optional[str] = None,
        group: Optional[str] = None,
        capacity_class: Optional[str] = None,
        cohort: Optional[str] = None,
    ) -> float:
        """Average download time of completed leechers (``nan`` if none completed)."""
        times = self.download_times(variant, group, capacity_class, cohort)
        if not times:
            return float("nan")
        return sum(times) / len(times)

    def completion_fraction(
        self,
        variant: Optional[str] = None,
        group: Optional[str] = None,
        capacity_class: Optional[str] = None,
        cohort: Optional[str] = None,
    ) -> float:
        """Fraction of matching leechers that completed in time."""
        relevant = self._select(variant, group, capacity_class, cohort)
        if not relevant:
            return 0.0
        return sum(1 for r in relevant if r.completed) / len(relevant)


class SwarmSimulation:
    """One piece-level swarm run.

    Parameters
    ----------
    config:
        Swarm parameters (size, file, choker timings, ...).  Required unless
        ``scenario`` is given.
    variants:
        Client variant per leecher, or a single variant broadcast to all.
        Required unless ``scenario`` is given.
    seed:
        Seed of the run's private random generator.
    scenario:
        A compiled swarm scenario; mutually exclusive with
        ``config``/``variants`` (the scenario's ``base`` supplies the config
        and its peer plans supply variants, capacities and rate limits).
    """

    def __init__(
        self,
        config: Optional[SwarmConfig] = None,
        variants: Optional[Sequence[ClientVariant]] = None,
        seed: Optional[int] = None,
        *,
        scenario: Optional[SwarmScenarioConfig] = None,
    ):
        if scenario is not None:
            if config is not None or variants is not None:
                raise ValueError(
                    "pass either (config, variants) or scenario=, not both"
                )
            config = scenario.base
        elif config is None or variants is None:
            raise ValueError("config and variants are required without a scenario")

        self.config = config
        self.scenario = scenario
        self._rng = random.Random(seed)
        self.torrent = TorrentMetadata(
            total_size_kb=config.file_size_mb * 1024.0,
            piece_size_kb=config.piece_size_kb,
        )

        piece_count = self.torrent.piece_count
        self._distribution = config.distribution()

        self.seeder_id = config.n_leechers
        self.tracker = Tracker(max_peers_per_announce=max(50, config.n_leechers))
        self.seeder = Seeder(
            peer_id=self.seeder_id,
            upload_capacity=config.seeder_upload_kbps,
            pieces=PieceSet(piece_count, complete=True),
            slots=config.seeder_slots,
        )
        self.tracker.register(self.seeder_id)

        self.leechers: Dict[int, Leecher] = {}
        #: downloader id -> uploader id -> (dl version, ul version, interested)
        self._interest_cache: Dict[int, Dict[int, Tuple[int, int, bool]]] = {}
        #: current plan per active peer (replacements/rejoins inherit it)
        self._plan_of: Dict[int, SwarmPeerPlan] = {}
        #: slot lineage for behaviour shifts (slot -> occupant and back)
        self._slot_peer: Dict[int, int] = {}
        self._peer_slot: Dict[int, int] = {}
        self._next_peer_id = self.seeder_id + 1
        self.arrivals = 0
        self.departures = 0
        self.total_transferred_kb = 0.0
        #: KB delivered per executed tick (byte-conservation invariant hook)
        self.tick_transferred: List[float] = []
        self._network = (
            NetworkState(scenario.events, self.seeder_id)
            if scenario is not None and scenario.events
            else None
        )

        if scenario is None:
            variants = list(variants)
            if len(variants) == 1:
                variants = variants * config.n_leechers
            if len(variants) != config.n_leechers:
                raise ValueError(
                    f"expected 1 or {config.n_leechers} variants, got {len(variants)}"
                )
            for peer_id in range(config.n_leechers):
                self.tracker.register(peer_id)
                self.leechers[peer_id] = Leecher(
                    peer_id=peer_id,
                    upload_capacity=self._distribution.sample(self._rng),
                    variant=variants[peer_id],
                    pieces=PieceSet(piece_count),
                )
        else:
            for slot, plan in enumerate(scenario.plans):
                self.tracker.register(slot)
                capacity = (
                    plan.capacity
                    if plan.capacity is not None
                    else self._distribution.sample(self._rng)
                )
                self.leechers[slot] = Leecher(
                    peer_id=slot,
                    upload_capacity=capacity,
                    variant=plan.variant,
                    pieces=PieceSet(piece_count),
                    group=plan.group,
                    capacity_class=plan.capacity_class,
                    cohort="initial",
                    limiter=RateLimiter(0.0 if plan.free_rider else capacity),
                )
                self._plan_of[slot] = plan
                self._slot_peer[slot] = slot
                self._peer_slot[slot] = slot

        # Everyone announces once the swarm is fully registered; the seeder is
        # always added so the swarm is guaranteed to be bootstrappable.
        for leecher in self.leechers.values():
            neighbours = set(self.tracker.announce(leecher.peer_id, self._rng))
            neighbours.add(self.seeder_id)
            neighbours.discard(leecher.peer_id)
            leecher.neighbours = neighbours

        self._active: Set[int] = set(self.leechers.keys())
        self.peak_active = len(self._active)
        self._ticks_executed = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _pieces_of(self, peer_id: int) -> PieceSet:
        if peer_id == self.seeder_id:
            return self.seeder.pieces
        return self.leechers[peer_id].pieces

    def _is_interested(
        self, downloader: Leecher, uploader_id: int, uploader_pieces: PieceSet
    ) -> bool:
        """Memoised ``downloader wants something uploader has`` test."""
        if uploader_id == self.seeder_id:
            # The seeder owns everything: interest == not yet complete.
            return not downloader.pieces.is_complete
        cache = self._interest_cache.setdefault(downloader.peer_id, {})
        down_version = downloader.pieces.version
        up_version = uploader_pieces.version
        entry = cache.get(uploader_id)
        if entry is not None and entry[0] == down_version and entry[1] == up_version:
            return entry[2]
        interested = downloader.pieces.is_interested_in(uploader_pieces)
        cache[uploader_id] = (down_version, up_version, interested)
        return interested

    def _interested_in(
        self, owner_id: int, owner_pieces: PieceSet, peer_ids: Sequence[int]
    ) -> List[int]:
        """Active leechers among ``peer_ids`` that want something from the owner."""
        interested = []
        for peer_id in peer_ids:
            if peer_id == self.seeder_id or peer_id not in self._active:
                continue
            if self._is_interested(self.leechers[peer_id], owner_id, owner_pieces):
                interested.append(peer_id)
        return interested

    def _rechoke_all(self, tick: int) -> None:
        config = self.config
        rotation_due = tick % config.optimistic_interval == 0
        for peer_id in sorted(self._active):
            leecher = self.leechers[peer_id]
            if tick > 0:
                leecher.update_loyalty_period()
            interested = self._interested_in(
                peer_id, leecher.pieces, sorted(leecher.neighbours)
            )
            run_rechoke(
                leecher,
                interested,
                tick,
                config.regular_slots,
                rotation_due,
                self._rng,
            )
        seeder_interested = self._interested_in(
            self.seeder_id, self.seeder.pieces, sorted(self._active)
        )
        self.seeder.rechoke(seeder_interested, self._rng)

    def _transfer(
        self,
        uploader_id: int,
        uploader_pieces: PieceSet,
        target: Leecher,
        amount_kb: float,
        tick: int,
    ) -> float:
        """Deliver ``amount_kb`` from ``uploader_id`` to ``target``; return KB delivered."""
        piece = target.in_flight.get(uploader_id)
        if piece is None or target.pieces.has(piece) or not uploader_pieces.has(piece):
            neighbour_sets = [
                self._pieces_of(n)
                for n in target.neighbours
                if n == self.seeder_id or n in self._active
            ]
            piece = select_piece_rarest_first(
                target.pieces,
                uploader_pieces,
                neighbour_sets,
                self._rng,
                exclude=target.in_flight.values(),
            )
            if piece is None:
                return 0.0
            target.in_flight[uploader_id] = piece

        target.record_received(uploader_id, tick, amount_kb)
        target.downloaded_kb += amount_kb
        progress = target.piece_progress.get(piece, 0.0) + amount_kb
        if progress >= self.torrent.piece_size_kb:
            target.pieces.add(piece)
            target.piece_progress.pop(piece, None)
            # Drop every in-flight entry pointing at the finished piece.
            for neighbour, in_flight_piece in list(target.in_flight.items()):
                if in_flight_piece == piece:
                    del target.in_flight[neighbour]
        else:
            target.piece_progress[piece] = progress
        return amount_kb

    def _upload_from(self, uploader_id: int, tick: int) -> float:
        """Run one tick of uploads from ``uploader_id``; return KB delivered."""
        if uploader_id == self.seeder_id:
            capacity = self.seeder.upload_capacity
            unchoked = self.seeder.unchoked
            uploader_pieces = self.seeder.pieces
            limiter = None
        else:
            leecher = self.leechers[uploader_id]
            capacity = leecher.upload_capacity
            unchoked = leecher.currently_unchoked()
            uploader_pieces = leecher.pieces
            limiter = leecher.limiter

        network = self._network
        if network is not None and uploader_id != self.seeder_id:
            capacity *= network.capacity_factor(uploader_id)
        if limiter is not None:
            capacity = min(capacity, limiter.available(tick))
        if capacity <= 0:
            return 0.0

        targets = [
            t
            for t in unchoked
            if t in self._active
            and self._is_interested(self.leechers[t], uploader_id, uploader_pieces)
            and (network is None or not network.blocked(uploader_id, t))
        ]
        if not targets:
            return 0.0
        per_target = capacity / len(targets)
        delivered = 0.0
        for target_id in sorted(targets):
            delivered += self._transfer(
                uploader_id, uploader_pieces, self.leechers[target_id], per_target, tick
            )
        if limiter is not None and delivered > 0:
            limiter.consume(delivered)
        if uploader_id != self.seeder_id and delivered > 0:
            self.leechers[uploader_id].uploaded_kb += delivered
        return delivered

    def _forget_everywhere(self, peer_id: int) -> None:
        """Purge a leaving peer from every remaining member's state."""
        self.tracker.unregister(peer_id)
        self.seeder.forget_neighbour(peer_id)
        for other_id in self._active:
            self.leechers[other_id].forget_neighbour(peer_id)
        self._interest_cache.pop(peer_id, None)
        slot = self._peer_slot.pop(peer_id, None)
        if slot is not None and self._slot_peer.get(slot) == peer_id:
            self._slot_peer.pop(slot, None)
        self._plan_of.pop(peer_id, None)

    def _handle_completions(self, tick: int) -> None:
        finished = [pid for pid in self._active if self.leechers[pid].is_complete]
        for peer_id in finished:
            leecher = self.leechers[peer_id]
            leecher.completion_tick = tick + 1
            self._active.discard(peer_id)
            self._forget_everywhere(peer_id)

    # ------------------------------------------------------------------ #
    # scenario dynamics (round boundaries)
    # ------------------------------------------------------------------ #
    def _depart(self, peer_id: int, tick: int) -> SwarmPeerPlan:
        """Remove an active peer early (churn); return its plan for reuse."""
        leecher = self.leechers[peer_id]
        plan = self._plan_of.get(
            peer_id,
            SwarmPeerPlan(
                variant=leecher.variant,
                group=leecher.group,
                capacity_class=leecher.capacity_class,
            ),
        )
        leecher.departed_tick = tick
        self._active.discard(peer_id)
        self._forget_everywhere(peer_id)
        self.departures += 1
        return plan

    def _join(
        self,
        plan: SwarmPeerPlan,
        tick: int,
        cohort: str,
        slot: Optional[int] = None,
    ) -> int:
        """Admit a fresh identity running ``plan``; returns the new peer id."""
        peer_id = self._next_peer_id
        self._next_peer_id += 1
        capacity = (
            plan.capacity
            if plan.capacity is not None
            else self._distribution.sample(self._rng)
        )
        leecher = Leecher(
            peer_id=peer_id,
            upload_capacity=capacity,
            variant=plan.variant,
            pieces=PieceSet(self.torrent.piece_count),
            joined_tick=tick,
            group=plan.group,
            capacity_class=plan.capacity_class,
            cohort=cohort,
            limiter=RateLimiter(0.0 if plan.free_rider else capacity),
        )
        neighbours = set(self.tracker.announce(peer_id, self._rng))
        neighbours.add(self.seeder_id)
        neighbours.discard(peer_id)
        leecher.neighbours = neighbours
        # Connections are bidirectional: announced peers learn of the
        # newcomer when it connects to them.
        for other_id in neighbours:
            if other_id != self.seeder_id and other_id in self._active:
                self.leechers[other_id].neighbours.add(peer_id)
        self.leechers[peer_id] = leecher
        self._active.add(peer_id)
        self._plan_of[peer_id] = plan
        if slot is not None:
            self._peer_slot[peer_id] = slot
            self._slot_peer[slot] = peer_id
        self.arrivals += 1
        self.peak_active = max(self.peak_active, len(self._active))
        return peer_id

    def _apply_shift(self, shift: SwarmShift) -> None:
        for slot in shift.slot_ids:
            peer_id = self._slot_peer.get(slot)
            if peer_id is None or peer_id not in self._active:
                continue
            leecher = self.leechers[peer_id]
            leecher.variant = shift.variant
            if shift.group is not None:
                leecher.group = shift.group
            if shift.free_rider:
                leecher.limiter = RateLimiter(0.0)
            old_plan = self._plan_of.get(peer_id)
            if old_plan is not None:
                # Future replacements of this slot inherit the shifted plan.
                self._plan_of[peer_id] = replace(
                    old_plan,
                    variant=shift.variant,
                    free_rider=shift.free_rider or old_plan.free_rider,
                    group=shift.group if shift.group is not None else old_plan.group,
                )

    def _process_round_boundary(self, tick: int) -> None:
        scenario = self.scenario
        round_index = tick // scenario.round_ticks
        if round_index >= scenario.rounds:
            return
        for shift in scenario.shifts:
            if shift.round == round_index:
                self._apply_shift(shift)
        for wave in scenario.waves:
            if wave.correlated and wave.start_round <= round_index < wave.end_round:
                self._correlated_wave(wave, tick)
        model = scenario.arrivals
        extra = sum(
            wave.intensity
            for wave in scenario.waves
            if not wave.correlated and wave.start_round <= round_index < wave.end_round
        )
        base_rate = model.churn_rate + extra
        if base_rate > 0.0 or model.target_churn > 0.0:
            targeted = set(model.target_groups)
            for peer_id in sorted(self._active):
                rate = base_rate
                if model.target_churn and self.leechers[peer_id].group in targeted:
                    rate += model.target_churn
                if rate > 0.0 and self._rng.random() < min(rate, 1.0):
                    self._churn_departure(peer_id, tick)
        if model.kind == "poisson" and round_index >= model.arrival_start_round:
            for _ in range(_poisson(self._rng, model.arrival_rate)):
                if model.max_active and len(self._active) >= model.max_active:
                    break
                self._join(model.arrival_plan, tick, cohort="arrival")

    def _correlated_wave(self, wave: SwarmChurnWindow, tick: int) -> None:
        """Replace an exact fraction of the active swarm with fresh arrivals."""
        active = sorted(self._active)
        if not active:
            return
        count = min(len(active), max(1, round(wave.intensity * len(active))))
        for peer_id in sorted(self._rng.sample(active, count)):
            slot = self._peer_slot.get(peer_id)
            plan = self._depart(peer_id, tick)
            self._join(plan, tick, cohort="arrival", slot=slot)

    def _churn_departure(self, peer_id: int, tick: int) -> None:
        model = self.scenario.arrivals
        group = self.leechers[peer_id].group
        slot = self._peer_slot.get(peer_id)
        plan = self._depart(peer_id, tick)
        if model.kind == "replacement":
            self._join(plan, tick, cohort="churn", slot=slot)
        elif model.kind == "whitewash":
            eligible = not model.target_groups or group in model.target_groups
            if eligible and self._rng.random() < model.rejoin_prob:
                # A fresh identity shedding all progress and reputation.
                self._join(plan, tick, cohort="whitewash")

    def _growth_possible(self, tick: int) -> bool:
        """Whether new peers can still appear after this tick (empty-swarm check)."""
        if self.scenario is None:
            return False
        model = self.scenario.arrivals
        if model.kind != "poisson":
            # Replacement and whitewash arrivals are triggered by departures
            # of active peers: an empty swarm stays empty.
            return False
        next_round = tick // self.scenario.round_ticks + 1
        return (
            next_round < self.scenario.rounds
            and self.scenario.rounds - 1 >= model.arrival_start_round
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> SwarmResult:
        """Execute the swarm until everyone finishes or the horizon is reached."""
        config = self.config
        scenario = self.scenario
        for tick in range(config.max_ticks):
            if scenario is not None and tick > 0 and tick % scenario.round_ticks == 0:
                self._process_round_boundary(tick)
            if not self._active and not self._growth_possible(tick):
                break
            # Counted only once the tick actually transfers, so
            # ``ticks_executed`` always equals ``len(tick_transferred)``.
            self._ticks_executed = tick + 1
            if self._network is not None:
                self._network.advance(tick, self._active, self._rng)
            if tick % config.rechoke_interval == 0:
                self._rechoke_all(tick)
            delivered = self._upload_from(self.seeder_id, tick)
            for uploader_id in sorted(self._active):
                delivered += self._upload_from(uploader_id, tick)
            self.tick_transferred.append(delivered)
            self.total_transferred_kb += delivered
            self._handle_completions(tick)
            if not self._active and not self._growth_possible(tick):
                break

        records = [
            SwarmPeerRecord(
                peer_id=leecher.peer_id,
                variant=leecher.variant.name,
                upload_capacity=leecher.upload_capacity,
                download_time=leecher.download_time,
                group=leecher.group,
                capacity_class=leecher.capacity_class,
                cohort=leecher.cohort,
                joined_tick=leecher.joined_tick,
                departed_tick=leecher.departed_tick,
                downloaded_kb=leecher.downloaded_kb,
            )
            for leecher in self.leechers.values()
        ]
        return SwarmResult(
            config=config,
            records=records,
            ticks_executed=self._ticks_executed,
            total_transferred_kb=self.total_transferred_kb,
            arrivals=self.arrivals,
            departures=self.departures,
            peak_active=self.peak_active,
        )
