"""Seeder state and unchoking.

The Section 5 setup uses a single seeder with 128 KBps upload.  Following the
paper's modelling assumption (after Chow et al.) that "seeders interact
uniformly with all peers", the simulated seeder rotates its unchoke slots
uniformly at random over the interested leechers at every rechoke interval.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Sequence, Set

from repro.bittorrent.pieces import PieceSet

__all__ = ["Seeder"]


@dataclass
class Seeder:
    """The initial seeder: owns every piece and uploads uniformly at random."""

    peer_id: int
    upload_capacity: float
    pieces: PieceSet
    slots: int = 4
    unchoked: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.upload_capacity <= 0:
            raise ValueError("upload_capacity must be positive")
        if self.slots < 1:
            raise ValueError("slots must be >= 1")
        if not self.pieces.is_complete:
            raise ValueError("a seeder must own every piece")

    def rechoke(self, interested: Sequence[int], rng: random.Random) -> Set[int]:
        """Pick a fresh uniform random set of up to ``slots`` interested leechers."""
        pool = list(interested)
        if len(pool) <= self.slots:
            self.unchoked = set(pool)
        else:
            self.unchoked = set(rng.sample(pool, self.slots))
        return set(self.unchoked)

    def forget_neighbour(self, neighbour: int) -> None:
        """Drop a departed leecher from the unchoke set."""
        self.unchoked.discard(neighbour)
