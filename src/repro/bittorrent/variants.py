"""BitTorrent client variants (the protocols compared in Section 5).

A :class:`ClientVariant` captures the two knobs the paper modifies in the
instrumented client:

* the **ranking** used by the regular unchokes (fastest = reference
  BitTorrent, proximity = Birds, loyal = Loyal-When-needed, slowest = Sort-S,
  random = the Random protocol of Figure 10), and
* the **optimistic-unchoke policy** (periodic rotation for the reference
  client and Birds; only-when-needed for Loyal-When-needed; never for
  Sort-S, which "always defects on strangers").

plus the number of regular unchoke slots (Sort-S maintains a single partner).
The named constructors build the five variants evaluated in Figures 9 and 10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ClientVariant",
    "reference_bittorrent",
    "birds_client",
    "loyal_when_needed_client",
    "sort_s_client",
    "random_client",
    "variant_by_name",
    "variant_from_behavior",
]

_RANKINGS = ("fastest", "slowest", "proximity", "loyal", "random")
_OPTIMISTIC_POLICIES = ("periodic", "when_needed", "never")


@dataclass(frozen=True)
class ClientVariant:
    """A BitTorrent client behaviour variant.

    Parameters
    ----------
    name:
        Display name used in experiment output.
    ranking:
        Ranking applied to interested neighbours at every rechoke.
    optimistic_policy:
        When the optimistic-unchoke slot is used: ``"periodic"`` (rotate on
        the optimistic interval), ``"when_needed"`` (only when fewer
        interested candidates than regular slots) or ``"never"``.
    regular_slots:
        Number of regular unchoke slots; ``None`` means "use the swarm
        configuration default".
    """

    name: str
    ranking: str = "fastest"
    optimistic_policy: str = "periodic"
    regular_slots: Optional[int] = None

    def __post_init__(self) -> None:
        if self.ranking not in _RANKINGS:
            raise ValueError(f"unknown ranking {self.ranking!r}; expected one of {_RANKINGS}")
        if self.optimistic_policy not in _OPTIMISTIC_POLICIES:
            raise ValueError(
                f"unknown optimistic_policy {self.optimistic_policy!r}; "
                f"expected one of {_OPTIMISTIC_POLICIES}"
            )
        if self.regular_slots is not None and self.regular_slots < 1:
            raise ValueError("regular_slots must be >= 1 when given")

    def effective_slots(self, default_slots: int) -> int:
        """The number of regular unchoke slots to use."""
        return self.regular_slots if self.regular_slots is not None else default_slots

    # ------------------------------------------------------------------ #
    # ranking
    # ------------------------------------------------------------------ #
    def rank(
        self,
        candidates: Sequence[int],
        rates: Dict[int, float],
        loyalty: Dict[int, int],
        own_per_slot_rate: float,
        rng: random.Random,
    ) -> List[int]:
        """Order ``candidates`` best-first according to this variant's ranking.

        Parameters
        ----------
        candidates:
            Interested, active neighbour ids.
        rates:
            Recent download rate observed from each candidate (KB/s).
        loyalty:
            Consecutive rechoke periods each candidate has kept uploading.
        own_per_slot_rate:
            The ranking peer's own upload capacity per unchoke slot (the
            proximity reference point of the Birds selection policy).
        rng:
            Random generator for tie-breaking / the random ranking.
        """
        pool = list(candidates)
        rng.shuffle(pool)
        if self.ranking == "random":
            return pool
        if self.ranking == "fastest":
            pool.sort(key=lambda c: rates.get(c, 0.0), reverse=True)
        elif self.ranking == "slowest":
            pool.sort(key=lambda c: rates.get(c, 0.0))
        elif self.ranking == "proximity":
            pool.sort(key=lambda c: abs(rates.get(c, 0.0) - own_per_slot_rate))
        elif self.ranking == "loyal":
            pool.sort(key=lambda c: (-loyalty.get(c, 0), -rates.get(c, 0.0)))
        else:  # pragma: no cover - guarded in __post_init__
            raise ValueError(f"unknown ranking {self.ranking!r}")
        return pool


# ---------------------------------------------------------------------- #
# the five variants of Figures 9 and 10
# ---------------------------------------------------------------------- #
def reference_bittorrent() -> ClientVariant:
    """The reference BitTorrent client: fastest-first unchoking, periodic optimistic unchoke."""
    return ClientVariant(name="BitTorrent", ranking="fastest", optimistic_policy="periodic")


def birds_client() -> ClientVariant:
    """Birds: reciprocate with peers closest to one's own upload bandwidth."""
    return ClientVariant(name="Birds", ranking="proximity", optimistic_policy="periodic")


def loyal_when_needed_client() -> ClientVariant:
    """Loyal-When-needed: Sort Loyal ranking, optimistic unchoke only when short of partners."""
    return ClientVariant(
        name="Loyal-When-needed", ranking="loyal", optimistic_policy="when_needed"
    )


def sort_s_client() -> ClientVariant:
    """Sort-S: slowest-first ranking, a single regular slot, never optimistically unchokes."""
    return ClientVariant(
        name="Sort-S", ranking="slowest", optimistic_policy="never", regular_slots=1
    )


def random_client() -> ClientVariant:
    """Random ranking with otherwise reference behaviour (Figure 10's 'Random')."""
    return ClientVariant(name="Random", ranking="random", optimistic_policy="periodic")


def variant_by_name(name: str) -> ClientVariant:
    """Look up one of the named variants by its display name (case-insensitive)."""
    variants = {
        v.name.lower(): v
        for v in (
            reference_bittorrent(),
            birds_client(),
            loyal_when_needed_client(),
            sort_s_client(),
            random_client(),
        )
    }
    try:
        return variants[name.lower()]
    except KeyError as exc:
        raise KeyError(
            f"unknown variant {name!r}; known: {sorted(variants)}"
        ) from exc


# ---------------------------------------------------------------------- #
# abstract-engine behaviour -> swarm variant compilation
# ---------------------------------------------------------------------- #
_BEHAVIOR_RANKINGS = {
    "fastest": "fastest",
    "slowest": "slowest",
    "proximity": "proximity",
    # The abstract engine's adaptive ranking tunes toward bandwidth-matched
    # partners; proximity is the packet-level analogue.
    "adaptive": "proximity",
    "loyal": "loyal",
    "random": "random",
}

_STRANGER_POLICIES = {
    "periodic": "periodic",
    "when_needed": "when_needed",
    # "none" never gives to strangers; "defect" accepts but never reciprocates.
    # Neither maps to an optimistic unchoke, so both compile to "never".
    "none": "never",
    "defect": "never",
}


def variant_from_behavior(behavior: "object") -> ClientVariant:
    """Compile a :class:`~repro.sim.behavior.PeerBehavior` to a swarm variant.

    Only the choker-visible axes translate: the ranking, the stranger
    (optimistic-unchoke) policy, and the partner count.  Allocation policy
    is not a swarm knob — free-riding is expressed by the rate limiter the
    scenario compiler attaches, not by the variant.  Accepts any object
    with ``ranking``, ``stranger_policy``, ``partner_count`` and ``label()``
    to avoid importing the sim layer here.
    """
    ranking = _BEHAVIOR_RANKINGS.get(getattr(behavior, "ranking"))
    if ranking is None:
        raise ValueError(f"no swarm ranking for behaviour ranking {behavior.ranking!r}")
    policy = _STRANGER_POLICIES.get(getattr(behavior, "stranger_policy"))
    if policy is None:
        raise ValueError(
            f"no swarm optimistic policy for stranger_policy {behavior.stranger_policy!r}"
        )
    return ClientVariant(
        name=behavior.label(),
        ranking=ranking,
        optimistic_policy=policy,
        regular_slots=max(1, int(behavior.partner_count)),
    )
