"""Sliding-window transfer-rate estimation and upload rate limiting.

BitTorrent's choker ranks neighbours by the download rate recently received
from them (the reference client averages over a ~20 second window).  The
simulator needs the same signal, so :class:`RateEstimator` records the bytes
received from each neighbour per tick and reports the average rate over a
configurable window.  The same estimator doubles as the "observed upload
bandwidth" signal used by the Birds proximity ranking.

:class:`RateLimiter` is the sending-side complement: a token bucket capping
how many KB a peer may upload per tick.  Scenario-compiled swarms give every
leecher a limiter derived from its :class:`~repro.scenarios.spec.BandwidthClass`
capacity (free-riders get a zero-rate limiter), and network-event degradation
scales the per-tick budget without touching the choker's capacity signal.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

__all__ = ["RateEstimator", "RateLimiter"]


class RateLimiter:
    """Token-bucket cap on per-tick upload volume.

    Parameters
    ----------
    rate_kb_per_tick:
        Sustained budget refilled every tick (KB); 0 forbids uploading
        entirely (the free-rider limiter).
    burst_ticks:
        Bucket depth as a multiple of the per-tick rate.  The default of 1
        makes the limiter exactly reproduce the unlimited engine's
        "capacity per tick" behaviour when ``rate == capacity``, while
        still capping accumulated credit for bursty senders.
    """

    def __init__(self, rate_kb_per_tick: float, burst_ticks: float = 1.0):
        if rate_kb_per_tick < 0:
            raise ValueError("rate_kb_per_tick must be >= 0")
        if burst_ticks < 1.0:
            raise ValueError("burst_ticks must be >= 1")
        self.rate_kb_per_tick = float(rate_kb_per_tick)
        self.burst_kb = self.rate_kb_per_tick * float(burst_ticks)
        self._tokens = self.burst_kb
        self._last_tick: Optional[int] = None

    def available(self, tick: int) -> float:
        """KB this peer may still send during ``tick`` (refills the bucket)."""
        if self._last_tick is None:
            self._tokens = self.burst_kb
        elif tick > self._last_tick:
            self._tokens = min(
                self.burst_kb,
                self._tokens + self.rate_kb_per_tick * (tick - self._last_tick),
            )
        self._last_tick = tick
        return self._tokens

    def consume(self, amount_kb: float) -> None:
        """Spend ``amount_kb`` of the current budget."""
        if amount_kb < 0:
            raise ValueError("amount_kb must be >= 0")
        self._tokens = max(0.0, self._tokens - amount_kb)


class RateEstimator:
    """Per-neighbour sliding-window rate estimation.

    Parameters
    ----------
    window_ticks:
        Length of the averaging window, in simulation ticks (seconds).
    """

    def __init__(self, window_ticks: int = 20):
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        self.window_ticks = int(window_ticks)
        #: per neighbour: deque of (tick, amount_kb)
        self._samples: Dict[int, Deque[Tuple[int, float]]] = {}

    def record(self, neighbour: int, tick: int, amount_kb: float) -> None:
        """Record ``amount_kb`` received from ``neighbour`` during ``tick``."""
        if amount_kb < 0:
            raise ValueError("amount_kb must be >= 0")
        samples = self._samples.setdefault(neighbour, deque())
        samples.append((tick, float(amount_kb)))

    def _prune(self, neighbour: int, current_tick: int) -> None:
        samples = self._samples.get(neighbour)
        if not samples:
            return
        cutoff = current_tick - self.window_ticks
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def rate(self, neighbour: int, current_tick: int) -> float:
        """Average KB/s received from ``neighbour`` over the window ending now."""
        self._prune(neighbour, current_tick)
        samples = self._samples.get(neighbour)
        if not samples:
            return 0.0
        total = sum(amount for _tick, amount in samples)
        return total / self.window_ticks

    def total_received(self, neighbour: int) -> float:
        """Total KB currently remembered from ``neighbour`` (within the window)."""
        samples = self._samples.get(neighbour)
        if not samples:
            return 0.0
        return sum(amount for _tick, amount in samples)

    def known_neighbours(self) -> Dict[int, float]:
        """Mapping of neighbour id to remembered received volume."""
        return {n: self.total_received(n) for n in self._samples}

    def forget(self, neighbour: int) -> None:
        """Drop all samples for ``neighbour`` (it left the swarm)."""
        self._samples.pop(neighbour, None)
