"""Sliding-window transfer-rate estimation.

BitTorrent's choker ranks neighbours by the download rate recently received
from them (the reference client averages over a ~20 second window).  The
simulator needs the same signal, so :class:`RateEstimator` records the bytes
received from each neighbour per tick and reports the average rate over a
configurable window.  The same estimator doubles as the "observed upload
bandwidth" signal used by the Birds proximity ranking.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Tuple

__all__ = ["RateEstimator"]


class RateEstimator:
    """Per-neighbour sliding-window rate estimation.

    Parameters
    ----------
    window_ticks:
        Length of the averaging window, in simulation ticks (seconds).
    """

    def __init__(self, window_ticks: int = 20):
        if window_ticks < 1:
            raise ValueError("window_ticks must be >= 1")
        self.window_ticks = int(window_ticks)
        #: per neighbour: deque of (tick, amount_kb)
        self._samples: Dict[int, Deque[Tuple[int, float]]] = {}

    def record(self, neighbour: int, tick: int, amount_kb: float) -> None:
        """Record ``amount_kb`` received from ``neighbour`` during ``tick``."""
        if amount_kb < 0:
            raise ValueError("amount_kb must be >= 0")
        samples = self._samples.setdefault(neighbour, deque())
        samples.append((tick, float(amount_kb)))

    def _prune(self, neighbour: int, current_tick: int) -> None:
        samples = self._samples.get(neighbour)
        if not samples:
            return
        cutoff = current_tick - self.window_ticks
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def rate(self, neighbour: int, current_tick: int) -> float:
        """Average KB/s received from ``neighbour`` over the window ending now."""
        self._prune(neighbour, current_tick)
        samples = self._samples.get(neighbour)
        if not samples:
            return 0.0
        total = sum(amount for _tick, amount in samples)
        return total / self.window_ticks

    def total_received(self, neighbour: int) -> float:
        """Total KB currently remembered from ``neighbour`` (within the window)."""
        samples = self._samples.get(neighbour)
        if not samples:
            return 0.0
        return sum(amount for _tick, amount in samples)

    def known_neighbours(self) -> Dict[int, float]:
        """Mapping of neighbour id to remembered received volume."""
        return {n: self.total_received(n) for n in self._samples}

    def forget(self, neighbour: int) -> None:
        """Drop all samples for ``neighbour`` (it left the swarm)."""
        self._samples.pop(neighbour, None)
