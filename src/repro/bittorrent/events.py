"""Network-event injection for packet-level swarm scenarios.

Scenario specs can declare *network events* — link degradation windows and
partition/heal cycles — that the swarm substrate injects per tick.  This is
the survivability-under-failure framing: the abstract round engine can only
approximate such faults as churn, while the swarm substrate models them as
what they are (reduced transfer budgets, unreachable peer pairs) without
destroying any peer state.

Two event kinds are supported:

``degrade``
    A sampled fraction of active leechers has its upload budget scaled by
    ``1 - severity`` for the duration of the window.
``partition``
    A sampled fraction of active leechers is split off from the rest of the
    swarm: transfers across the cut are blocked in both directions until the
    window ends (the *heal*).  Choking/interest state is left untouched —
    the connections stall rather than reset, so recovery is immediate.

The seeder is never sampled into an event (a dead seed trivially stalls the
swarm and measures nothing about the protocols under test).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Set

__all__ = ["NetworkEvent", "NetworkState"]

_EVENT_KINDS = ("degrade", "partition")


@dataclass(frozen=True)
class NetworkEvent:
    """One scheduled network fault, in tick units.

    Parameters
    ----------
    kind:
        ``"degrade"`` or ``"partition"``.
    start:
        First tick of the fault window.
    duration:
        Window length in ticks; the fault heals at ``start + duration``.
    fraction:
        Fraction of active leechers affected (sampled once at ``start``).
    severity:
        For ``degrade``: the capacity reduction factor (0.5 → half rate).
        Ignored for ``partition``.
    """

    kind: str
    start: int
    duration: int
    fraction: float
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KINDS:
            raise ValueError(f"kind must be one of {_EVENT_KINDS}, got {self.kind!r}")
        if self.start < 0:
            raise ValueError("start must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    @property
    def end(self) -> int:
        """First tick at which the fault has healed."""
        return self.start + self.duration


class NetworkState:
    """Tracks which faults are live and which peers they touch.

    Call :meth:`advance` once per tick before any transfers; then consult
    :meth:`capacity_factor` and :meth:`blocked` from the transfer loop.
    Affected peers are sampled when an event's window opens and the sample
    is frozen for the window's duration — peers arriving mid-window are
    unaffected, and departing peers simply drop out of the sample.
    """

    def __init__(self, events: Sequence[NetworkEvent], seeder_id: int):
        self._events = tuple(sorted(events, key=lambda e: (e.start, e.kind)))
        self._seeder_id = seeder_id
        #: event index -> frozen sample of affected peer ids.  Keyed by
        #: index, not by the (value-equal) event itself, so two identical
        #: declared events still sample and compound independently.
        self._samples: Dict[int, Set[int]] = {}
        self._degraded: Dict[int, float] = {}
        self._partitioned: Set[int] = set()

    @property
    def events(self) -> Sequence[NetworkEvent]:
        return self._events

    def advance(self, tick: int, active_ids: Iterable[int], rng: random.Random) -> None:
        """Open/close event windows and rebuild the per-tick fault maps."""
        for index, event in enumerate(self._events):
            if event.start == tick and index not in self._samples:
                pool = sorted(pid for pid in active_ids if pid != self._seeder_id)
                count = min(len(pool), max(1, round(event.fraction * len(pool)))) if pool else 0
                self._samples[index] = set(rng.sample(pool, count)) if count else set()

        self._degraded = {}
        self._partitioned = set()
        for index, sample in self._samples.items():
            event = self._events[index]
            if not event.start <= tick < event.end:
                continue
            if event.kind == "degrade":
                factor = 1.0 - event.severity
                for pid in sample:
                    # Overlapping degradations compound multiplicatively.
                    self._degraded[pid] = self._degraded.get(pid, 1.0) * factor
            else:
                self._partitioned |= sample

    def capacity_factor(self, peer_id: int) -> float:
        """Multiplier on ``peer_id``'s upload budget this tick (1.0 = healthy)."""
        return self._degraded.get(peer_id, 1.0)

    def blocked(self, a: int, b: int) -> bool:
        """Whether a transfer between ``a`` and ``b`` crosses a partition cut."""
        return (a in self._partitioned) != (b in self._partitioned)

    @property
    def partitioned(self) -> Set[int]:
        """The minority side of the current partition (empty when healed)."""
        return set(self._partitioned)
