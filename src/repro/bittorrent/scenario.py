"""Compiled scenario plans for the packet-level swarm substrate.

The scenario layer (:mod:`repro.scenarios`) is substrate-agnostic: a
:class:`~repro.scenarios.spec.ScenarioSpec` *compiles* either to abstract
round-engine primitives or — via :mod:`repro.scenarios.substrate` — to the
:class:`SwarmScenarioConfig` defined here.  This module deliberately holds
plain data only (no compilation logic) so ``repro.bittorrent`` never imports
the scenario layer: the dependency points one way, scenarios → bittorrent.

The plan vocabulary mirrors the abstract engine's, translated to swarm
terms.  One scenario *round* spans one rechoke interval of ticks, so wave
timing, shifts and network events compiled from run-fraction declarations
land on rechoke boundaries exactly like their round-engine counterparts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.events import NetworkEvent
from repro.bittorrent.variants import ClientVariant

__all__ = [
    "SwarmPeerPlan",
    "SwarmChurnWindow",
    "SwarmShift",
    "SwarmArrivalModel",
    "SwarmScenarioConfig",
]

#: Arrival-model kinds: fixed-population identity replacement (steady /
#: flash-crowd / burst-churn scenarios), a genuine Poisson arrival stream,
#: or whitewashing departures that may rejoin under fresh identities.
SWARM_ARRIVAL_KINDS = ("replacement", "poisson", "whitewash")


@dataclass(frozen=True)
class SwarmPeerPlan:
    """How one (initial or arriving) leecher is configured.

    ``capacity`` pins the upload capacity (bandwidth classes); ``None``
    samples from the swarm config's distribution at join time.
    ``free_rider`` peers get a zero-rate upload limiter — they accept data
    but never reciprocate, the packet-level reading of an allocation policy
    that uploads nothing.
    """

    variant: ClientVariant
    capacity: Optional[float] = None
    group: str = "default"
    capacity_class: Optional[str] = None
    free_rider: bool = False

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity <= 0:
            raise ValueError("pinned capacity must be positive")
        if not self.group:
            raise ValueError("a peer plan needs a group label")


@dataclass(frozen=True)
class SwarmChurnWindow:
    """A churn wave in round units (the swarm analogue of ``ChurnWave``).

    ``correlated`` windows replace an exact ``intensity`` fraction of the
    active swarm per wave round; independent windows add ``intensity`` to
    each peer's per-round departure probability.
    """

    start_round: int
    rounds: int = 1
    intensity: float = 0.1
    correlated: bool = False

    def __post_init__(self) -> None:
        if self.start_round < 0:
            raise ValueError("start_round must be >= 0")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")

    @property
    def end_round(self) -> int:
        return self.start_round + self.rounds


@dataclass(frozen=True)
class SwarmShift:
    """A behaviour shift applied at a round boundary.

    ``slot_ids`` address *initial-population slots* (0..n-1), matching the
    abstract engine where replacements inherit the slot of the peer they
    replace — the shift hits whichever identity currently occupies the slot.
    """

    round: int
    slot_ids: Tuple[int, ...]
    variant: ClientVariant
    free_rider: bool = False
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if not self.slot_ids:
            raise ValueError("a shift needs at least one slot id")


@dataclass(frozen=True)
class SwarmArrivalModel:
    """The compiled arrival/departure process of a swarm scenario.

    Parameters
    ----------
    kind:
        ``"replacement"`` — churn departures are replaced by fresh
        identities running the departed peer's plan (fixed population);
        ``"poisson"`` — a Poisson stream of genuine newcomers while
        departures shrink the swarm; ``"whitewash"`` — true departures that
        rejoin under fresh identities with probability ``rejoin_prob``.
    churn_rate:
        Base per-peer per-round departure probability.
    arrival_rate / arrival_start_round:
        Poisson only: expected arrivals per round, and the round the stream
        opens.
    arrival_plan:
        Plan given to Poisson newcomers (defaults to the population's
        default plan; ``None`` is only legal for non-Poisson kinds).
    rejoin_prob:
        Whitewash only: probability a churn departure rejoins fresh.
    target_groups / target_churn:
        Extra per-round departure probability for the named behaviour
        groups; with whitewash and non-empty ``target_groups``, rejoining
        is restricted to departures from those groups.
    max_active:
        Cap on concurrently active leechers (0 = unbounded).
    """

    kind: str = "replacement"
    churn_rate: float = 0.0
    arrival_rate: float = 0.0
    arrival_start_round: int = 0
    arrival_plan: Optional[SwarmPeerPlan] = None
    rejoin_prob: float = 0.0
    target_groups: Tuple[str, ...] = ()
    target_churn: float = 0.0
    max_active: int = 0

    def __post_init__(self) -> None:
        if self.kind not in SWARM_ARRIVAL_KINDS:
            raise ValueError(
                f"kind must be one of {SWARM_ARRIVAL_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")
        if self.kind == "poisson":
            if self.arrival_rate <= 0.0:
                raise ValueError("poisson arrivals need arrival_rate > 0")
            if self.arrival_plan is None:
                raise ValueError("poisson arrivals need an arrival_plan")
        if self.kind == "whitewash" and not 0.0 < self.rejoin_prob <= 1.0:
            raise ValueError("whitewash needs rejoin_prob in (0, 1]")
        if self.target_churn < 0.0 or self.churn_rate + self.target_churn >= 1.0:
            raise ValueError("target_churn must keep the departure rate in [0, 1)")
        if self.max_active < 0:
            raise ValueError("max_active must be >= 0")


@dataclass(frozen=True)
class SwarmScenarioConfig:
    """A fully compiled swarm scenario, ready for ``SwarmSimulation``.

    ``base`` fixes the static swarm parameters (file, choker timings,
    capacity distribution, horizon); ``plans`` configures the initial
    population (one entry per initial leecher); the remaining fields drive
    the per-round dynamics.  ``rounds × base.rechoke_interval`` must fit in
    ``base.max_ticks``.
    """

    base: SwarmConfig
    plans: Tuple[SwarmPeerPlan, ...]
    rounds: int
    arrivals: SwarmArrivalModel = SwarmArrivalModel()
    waves: Tuple[SwarmChurnWindow, ...] = ()
    shifts: Tuple[SwarmShift, ...] = ()
    events: Tuple[NetworkEvent, ...] = ()

    def __post_init__(self) -> None:
        if len(self.plans) != self.base.n_leechers:
            raise ValueError(
                f"expected {self.base.n_leechers} peer plans, got {len(self.plans)}"
            )
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        if self.rounds * self.base.rechoke_interval > self.base.max_ticks:
            raise ValueError(
                "rounds * rechoke_interval exceeds the max_ticks horizon"
            )
        for shift in self.shifts:
            if shift.round >= self.rounds:
                raise ValueError(f"shift at round {shift.round} is past the run")
            bad = [s for s in shift.slot_ids if not 0 <= s < len(self.plans)]
            if bad:
                raise ValueError(f"shift addresses unknown slots {bad}")

    @property
    def round_ticks(self) -> int:
        """Ticks per scenario round (one rechoke interval)."""
        return self.base.rechoke_interval
