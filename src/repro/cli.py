"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure2 --scale bench
    python -m repro.cli run table3 --scale smoke --seed 7
    python -m repro.cli run figure5 --scale bench --jobs 4 --cache-dir .repro-cache
    python -m repro.cli all --scale smoke

Each experiment prints the plain-text rows/series corresponding to the
paper's table or figure; the scale argument selects the run budget (see
:mod:`repro.experiments.base` and EXPERIMENTS.md).  ``--jobs`` fans the
underlying simulations out over worker processes and ``--cache-dir`` reuses
results across invocations via the content-addressed result cache
(:mod:`repro.runner`); neither changes any number that is printed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.runner import ENV_CACHE_DIR, jobs_from_env

from repro.experiments import (
    base,
    churn_check,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    robustness_split_check,
    section2_analytic,
    table2,
    table3,
)
from repro.utils.logging import configure_logging

__all__ = ["main", "EXPERIMENTS"]

Runner = Callable[[str, int], str]


def _scaled(module) -> Runner:
    def runner(scale: str, seed: int) -> str:
        return module.render(module.run(scale=scale, seed=seed))

    return runner


def _unscaled(module) -> Runner:
    def runner(scale: str, seed: int) -> str:  # scale/seed intentionally unused
        return module.render(module.run())

    return runner


#: Experiment name -> (description, runner).
EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "figure1": ("BitTorrent Dilemma and Birds payoff matrices", _unscaled(figure1)),
    "section2": ("Analytical expected-win model and Nash verdicts", _unscaled(section2_analytic)),
    "table2": ("Existing systems mapped to the generic design space", _unscaled(table2)),
    "figure2": ("Robustness vs Performance scatter", _scaled(figure2)),
    "figure3": ("Performance vs number of partners", _scaled(figure3)),
    "figure4": ("Robustness vs number of partners", _scaled(figure4)),
    "figure5": ("Robustness CCDF per stranger policy", _scaled(figure5)),
    "figure6": ("Robustness per resource-allocation policy", _scaled(figure6)),
    "figure7": ("Robustness per ranking function", _scaled(figure7)),
    "figure8": ("Robustness vs Aggressiveness correlation", _scaled(figure8)),
    "table3": ("Regression of PRA measures on design dimensions", _scaled(table3)),
    "split-check": ("50/50 vs 90/10 robustness consistency", _scaled(robustness_split_check)),
    "churn-check": ("Performance under churn", _scaled(churn_check)),
    "figure9": ("Swarm encounters between client variants", _scaled(figure9)),
    "figure10": ("Homogeneous-swarm client performance", _scaled(figure10)),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the DSA paper (SIGCOMM 2011).",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="enable progress logging"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--scale", default="bench", choices=("smoke", "bench", "paper"),
        help="run budget (default: bench)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")
    _add_runner_arguments(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "bench", "paper"),
        help="run budget (default: smoke)",
    )
    all_parser.add_argument("--seed", type=int, default=0, help="master seed")
    _add_runner_arguments(all_parser)
    return parser


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel simulation worker processes (1 = serial, 0 = all cores; "
             "default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed simulation result cache shared across "
             "invocations (default: REPRO_CACHE_DIR or disabled)",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.verbose:
        configure_logging()

    if getattr(args, "jobs", None) is not None or getattr(args, "cache_dir", None):
        if args.jobs is not None and args.jobs < 0:
            parser.error(f"--jobs must be >= 0, got {args.jobs}")
        # A flag that was not given keeps its environment-variable default,
        # so e.g. REPRO_JOBS=8 plus --cache-dir still runs parallel.
        if args.jobs is not None:
            jobs = args.jobs
        else:
            try:
                jobs = jobs_from_env()
            except ValueError as error:
                parser.error(str(error))
        cache_dir = args.cache_dir or os.environ.get(ENV_CACHE_DIR) or None
        base.configure_runner(jobs=jobs, cache_dir=cache_dir)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _runner = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        _description, runner = EXPERIMENTS[args.experiment]
        print(runner(args.scale, args.seed))
        return 0

    if args.command == "all":
        for name in sorted(EXPERIMENTS):
            _description, runner = EXPERIMENTS[name]
            print(f"===== {name} =====")
            print(runner(args.scale, args.seed))
            print()
        return 0

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
