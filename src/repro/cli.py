"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro.cli list
    python -m repro.cli run figure2 --scale bench
    python -m repro.cli run table3 --scale smoke --seed 7
    python -m repro.cli run figure5 --scale bench --jobs 4 --cache-dir .repro-cache
    python -m repro.cli all --scale smoke
    python -m repro.cli scenario --list
    python -m repro.cli scenario flash-crowd --scale smoke --jobs 0 --cache-dir .repro-cache
    python -m repro atlas --scenarios baseline,whitewash-churn,colluding-whitewash
    python -m repro atlas --protocol-axes "ranking=I1,I5;allocation=R1,R2" --csv atlas.csv
    python -m repro serve --root .repro-service --workers 4
    python -m repro submit --root .repro-service --scenarios baseline,colluders
    python -m repro serve --root .repro-service --stop
    python -m repro serve --root .repro-service --telemetry .repro-service/telemetry
    python -m repro status --root .repro-service --telemetry .repro-service/telemetry
    python -m repro trace --telemetry .repro-service/telemetry

(``python -m repro`` is a shorthand for ``python -m repro.cli``.)

Each experiment prints the plain-text rows/series corresponding to the
paper's table or figure; the scale argument selects the run budget (see
:mod:`repro.experiments.base` and EXPERIMENTS.md).  ``--jobs`` fans the
underlying simulations out over worker processes and ``--cache-dir`` reuses
results across invocations via the content-addressed result cache
(:mod:`repro.runner`); neither changes any number that is printed.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.runner.runner import ENV_CACHE_DIR, ENV_JOBS, jobs_from_env
from repro.scenarios import SUBSTRATE_CHOICES, get_scenario, all_scenarios
from repro.sim.engine import (
    ENGINE_CHOICES,
    ENV_ENGINE,
    default_engine,
    set_default_engine,
)

from repro.experiments import (
    atlas as atlas_experiment,
    base,
    churn_check,
    cross_substrate,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    robustness_split_check,
    scenario_sweep,
    section2_analytic,
    table2,
    table3,
)
from repro.utils.logging import configure_logging, configure_progress_logging

__all__ = ["main", "EXPERIMENTS"]

Runner = Callable[[str, int], str]


def _scaled(module) -> Runner:
    def runner(scale: str, seed: int) -> str:
        return module.render(module.run(scale=scale, seed=seed))

    return runner


def _unscaled(module) -> Runner:
    def runner(scale: str, seed: int) -> str:  # scale/seed intentionally unused
        return module.render(module.run())

    return runner


#: Experiment name -> (description, runner).
EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "figure1": ("BitTorrent Dilemma and Birds payoff matrices", _unscaled(figure1)),
    "section2": ("Analytical expected-win model and Nash verdicts", _unscaled(section2_analytic)),
    "table2": ("Existing systems mapped to the generic design space", _unscaled(table2)),
    "figure2": ("Robustness vs Performance scatter", _scaled(figure2)),
    "figure3": ("Performance vs number of partners", _scaled(figure3)),
    "figure4": ("Robustness vs number of partners", _scaled(figure4)),
    "figure5": ("Robustness CCDF per stranger policy", _scaled(figure5)),
    "figure6": ("Robustness per resource-allocation policy", _scaled(figure6)),
    "figure7": ("Robustness per ranking function", _scaled(figure7)),
    "figure8": ("Robustness vs Aggressiveness correlation", _scaled(figure8)),
    "table3": ("Regression of PRA measures on design dimensions", _scaled(table3)),
    "split-check": ("50/50 vs 90/10 robustness consistency", _scaled(robustness_split_check)),
    "churn-check": ("Performance under churn", _scaled(churn_check)),
    "figure9": ("Swarm encounters between client variants", _scaled(figure9)),
    "figure10": ("Homogeneous-swarm client performance", _scaled(figure10)),
    "scenarios": ("Named workload scenarios side by side", _scaled(scenario_sweep)),
    "atlas": ("Protocol x workload robustness atlas", _scaled(atlas_experiment)),
    "cross-substrate": (
        "Protocol rankings compared across the rounds and swarm substrates",
        _scaled(cross_substrate),
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the DSA paper (SIGCOMM 2011).",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="enable progress logging"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument(
        "--scale", default="bench", choices=("smoke", "bench", "paper"),
        help="run budget (default: bench)",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="master seed")
    _add_runner_arguments(run_parser)

    all_parser = subparsers.add_parser("all", help="run every experiment")
    all_parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "bench", "paper"),
        help="run budget (default: smoke)",
    )
    all_parser.add_argument("--seed", type=int, default=0, help="master seed")
    _add_runner_arguments(all_parser)

    scenario_parser = subparsers.add_parser(
        "scenario", help="run one named workload scenario (or list the registry)"
    )
    scenario_parser.add_argument(
        "name", nargs="?", default=None,
        help="registered scenario name (omit with --list)",
    )
    scenario_parser.add_argument(
        "--list", action="store_true", dest="list_scenarios",
        help="list the registered scenarios and exit",
    )
    scenario_parser.add_argument(
        "--scale", default="bench", choices=("smoke", "bench", "paper"),
        help="run budget (default: bench)",
    )
    scenario_parser.add_argument("--seed", type=int, default=0, help="master seed")
    scenario_parser.add_argument(
        "--reps", type=int, default=None, metavar="N",
        help="independent repetitions (default: per-scale)",
    )
    scenario_parser.add_argument(
        "--substrate", default="rounds", choices=SUBSTRATE_CHOICES,
        help="execution substrate: 'rounds' compiles the scenario onto the "
             "abstract round engines, 'swarm' onto the packet-level "
             "BitTorrent simulator (default: rounds)",
    )
    scenario_parser.add_argument(
        "--profile", action="store_true",
        help="run one profiled simulation of the scenario and print "
             "per-phase (churn/decision/allocation/transfer/metrics) round "
             "timings instead of the sweep; the vec engine adds dotted "
             "sub-phase attribution, the fixed fast engine reports coarse "
             "fused buckets",
    )
    _add_runner_arguments(scenario_parser)

    atlas_parser = subparsers.add_parser(
        "atlas",
        help="sweep protocol axes across workload scenarios and print the "
             "robustness ranking and heat maps",
    )
    atlas_parser.add_argument(
        "--protocol-axes", default=None, metavar="AXES",
        help="swept behaviour axes, e.g. 'ranking=I1,I5;allocation=R1,R2' "
             "(field values and paper codes mix freely; default: the micro "
             "ranking x allocation axes)",
    )
    atlas_parser.add_argument(
        "--scenarios", default=None, metavar="NAMES",
        help="comma-separated registered scenario names "
             "(default: the adversarial column set)",
    )
    atlas_parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "bench", "paper"),
        help="run budget per cell (default: smoke)",
    )
    atlas_parser.add_argument("--seed", type=int, default=0, help="master seed")
    atlas_parser.add_argument(
        "--reps", type=int, default=None, metavar="N",
        help="independent repetitions per cell (default: per-scale)",
    )
    atlas_parser.add_argument(
        "--substrate", default="rounds", choices=SUBSTRATE_CHOICES,
        help="execution substrate for every grid cell (default: rounds)",
    )
    atlas_parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the long-form CSV heat map to FILE",
    )
    atlas_parser.add_argument(
        "--profile", action="store_true",
        help="additionally run one profiled repetition per grid cell "
             "(serially, bypassing the cache) and append the per-cell and "
             "aggregated per-phase breakdown to the report",
    )
    _add_runner_arguments(atlas_parser)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run persistent service workers against a spool directory "
             "(the worker half of atlas-as-a-service)",
    )
    _add_service_arguments(serve_parser)
    serve_parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="persistent worker processes to run (default: 2)",
    )
    serve_parser.add_argument(
        "--max-idle", type=float, default=None, metavar="SEC",
        help="exit after the queue has been empty this long "
             "(default: serve until stopped)",
    )
    serve_parser.add_argument(
        "--stats-interval", type=float, default=2.0, metavar="SEC",
        help="seconds between service status lines (default: 2)",
    )
    serve_parser.add_argument(
        "--stop", action="store_true",
        help="raise the stop sentinel for every worker on this spool "
             "and exit (stops a running serve)",
    )
    serve_parser.add_argument(
        "--compact-interval", type=float, default=None, metavar="SEC",
        help="garbage-collect spool debris (stale heartbeat files, orphaned "
             "claim dirs, consumed stop sentinels, old error files) every "
             "SEC seconds (default: no compaction)",
    )
    serve_parser.add_argument(
        "--engine", default=None, choices=ENGINE_CHOICES,
        help="simulation engine the workers execute with "
             "(default: REPRO_SIM_ENGINE or fast)",
    )

    submit_parser = subparsers.add_parser(
        "submit",
        help="submit an atlas grid to the service and stream the report "
             "progressively as cells complete",
    )
    _add_service_arguments(submit_parser)
    submit_parser.add_argument(
        "--protocol-axes", default=None, metavar="AXES",
        help="swept behaviour axes, e.g. 'ranking=I1,I5;allocation=R1,R2' "
             "(default: the micro ranking x allocation axes)",
    )
    submit_parser.add_argument(
        "--scenarios", default=None, metavar="NAMES",
        help="comma-separated registered scenario names "
             "(default: the adversarial column set)",
    )
    submit_parser.add_argument(
        "--scale", default="smoke", choices=("smoke", "bench", "paper"),
        help="run budget per cell (default: smoke)",
    )
    submit_parser.add_argument("--seed", type=int, default=0, help="master seed")
    submit_parser.add_argument(
        "--reps", type=int, default=None, metavar="N",
        help="independent repetitions per cell (default: per-scale)",
    )
    submit_parser.add_argument(
        "--substrate", default="rounds", choices=SUBSTRATE_CHOICES,
        help="execution substrate for every grid cell (default: rounds)",
    )
    submit_parser.add_argument(
        "--csv", default=None, metavar="FILE",
        help="also write the long-form CSV heat map to FILE",
    )
    submit_parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="spawn N ephemeral local workers for this submission "
             "(default: 0 — rely on a running `repro serve`)",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=None, metavar="SEC",
        help="fail the submission if not complete within SEC "
             "(default: wait indefinitely)",
    )
    submit_parser.add_argument(
        "--engine", default=None, choices=ENGINE_CHOICES,
        help="simulation engine for ephemeral --workers (a running serve "
             "keeps its own; default: REPRO_SIM_ENGINE or fast)",
    )

    status_parser = subparsers.add_parser(
        "status",
        help="print a live view of a service spool: workers and heartbeat "
             "ages, queue depth, and aggregated telemetry metrics",
    )
    _add_service_arguments(status_parser)
    status_parser.add_argument(
        "--liveness-timeout", type=float, default=5.0, metavar="SEC",
        help="heartbeat age beyond which a worker reads as dead (default: 5)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="render per-job timelines and a critical-path summary from a "
             "telemetry directory's merged event log",
    )
    trace_parser.add_argument(
        "--telemetry", default=None, metavar="DIR", required=True,
        help="telemetry directory the traced serve/submit wrote "
             "(their --telemetry argument)",
    )
    trace_parser.add_argument(
        "--jobs-limit", type=int, default=20, metavar="N",
        help="render at most N per-job timelines, 0 for all (default: 20)",
    )
    trace_parser.add_argument(
        "--jsonl", default=None, metavar="FILE",
        help="also write the merged, time-ordered event log to FILE "
             "(one JSON record per line — the CI artifact format)",
    )
    return parser


def _add_service_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", default=".repro-service", metavar="DIR",
        help="service spool directory shared by workers and submitters "
             "(default: .repro-service)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="sqlite-indexed shared result store "
             "(default: <root>/cache)",
    )
    parser.add_argument(
        "--telemetry", default=None, metavar="DIR",
        help="enable structured job tracing + metrics, written to DIR "
             "(read back with `repro status`/`repro trace`; default: off)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress routine progress output (stats ticker, per-cell "
             "progress lines); warnings and the final report still print",
    )


def _add_runner_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel simulation worker processes (1 = serial, 0 = all cores; "
             "default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed simulation result cache shared across "
             "invocations (default: REPRO_CACHE_DIR or disabled)",
    )
    parser.add_argument(
        "--engine", default=None, choices=ENGINE_CHOICES,
        help="simulation engine: fast and reference are bit-identical "
             "replicas; vec is the numpy batch engine for large swarms, "
             "statistically equivalent but not draw-for-draw identical "
             "(default: REPRO_SIM_ENGINE or fast)",
    )


def _profile_scenario(parser, spec, scale: str, seed: int) -> int:
    """Run one profiled simulation of ``spec`` and print per-phase timings.

    Variable-population scenarios profile the selected population engine;
    fixed-population scenarios profile the optimised fixed engine with its
    coarse buckets (the decision and transfer phases are fused with a
    history window of three or more rounds, so the ``decision`` bucket
    includes the transfer application and ``transfer`` covers only the
    end-of-round bookkeeping).  The vec engine profiles both shapes with
    one implementation and dotted sub-phase attribution.
    """
    from repro.sim.engine import (
        FUSED_HISTORY_MIN,
        Simulation,
        profiled_simulation,
    )
    from repro.sim.profiling import profile_seconds_of, render_phases

    job = spec.compile(scale=scale, seed=seed)
    engine = default_engine()
    variable = job.config.is_variable_population
    try:
        simulation = profiled_simulation(
            job.config,
            list(job.behaviors),
            groups=list(job.groups) if job.groups is not None else None,
            seed=job.seed,
        )
    except ValueError:
        parser.error(
            "--profile on a fixed-population scenario needs the "
            "optimised engine; the frozen reference implementation "
            "has no profile hooks (drop --engine reference)"
        )
    result = simulation.run()
    rounds = result.rounds_executed
    print(
        f"profile: scenario {spec.name} (scale {scale}, seed {seed}, "
        f"engine {engine})"
    )
    if variable:
        print(
            f"rounds: {rounds}  peers: {job.config.n_peers} -> "
            f"{result.final_active_count}  arrivals: {result.total_arrivals}  "
            f"departures: {result.total_departures}"
        )
    else:
        fused = (
            type(simulation) is Simulation
            and job.config.history_rounds >= FUSED_HISTORY_MIN
        )
        print(
            f"rounds: {rounds}  peers: {job.config.n_peers} (fixed)  "
            f"churn events: {result.churn_events}"
            + ("  [fused decision+transfer]" if fused else "")
        )
    print(render_phases(profile_seconds_of(simulation), rounds=rounds))
    return 0


def _service_paths(args) -> Tuple[str, str]:
    """(spool root, cache dir) for the service commands."""
    root = args.root
    cache_dir = args.cache_dir or os.path.join(root, "cache")
    return root, cache_dir


def _serve(parser, args) -> int:
    """Run (or stop) persistent service workers on a spool directory."""
    import time

    from repro.service import Scheduler, Spool, WorkerPool
    from repro.telemetry import telemetry_for
    from repro.utils.logging import get_progress_logger

    progress = get_progress_logger("serve")
    root, cache_dir = _service_paths(args)
    spool = Spool(root)
    if args.stop:
        spool.request_stop()
        print(f"stop requested for workers on {root}")
        return 0
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.stats_interval <= 0:
        parser.error("--stats-interval must be > 0")
    if args.compact_interval is not None and args.compact_interval <= 0:
        parser.error("--compact-interval must be > 0")
    telemetry = telemetry_for(args.telemetry)
    scheduler = Scheduler(root, cache_dir=cache_dir, telemetry=telemetry)
    pool = WorkerPool(
        root, cache_dir, workers=args.workers, telemetry_dir=args.telemetry
    )
    pool.start()
    progress.info(
        "serving %d workers on %s (store: %s); stop with "
        "`repro serve --root %s --stop`",
        args.workers, root, cache_dir, root,
    )
    config = scheduler.config
    idle_since = time.time()
    last_compact = time.time()
    try:
        while True:
            stats = scheduler.service_stats()
            progress.info("serve: %s", stats.render())
            if spool.stop_requested():
                break
            if (
                args.compact_interval is not None
                and time.time() - last_compact > args.compact_interval
            ):
                last_compact = time.time()
                removed = spool.compact(
                    liveness_timeout=config.liveness_timeout
                )
                total = sum(removed.values())
                if total:
                    progress.info(
                        "compacted spool: removed %d stale entries (%s)",
                        total,
                        ", ".join(
                            f"{k}={v}" for k, v in removed.items() if v
                        ),
                    )
            if stats.queue_depth or stats.in_flight:
                idle_since = time.time()
            elif args.max_idle is not None and time.time() - idle_since > args.max_idle:
                progress.info("idle for %.1fs; shutting down", args.max_idle)
                break
            time.sleep(args.stats_interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        progress.warning("interrupted; shutting down")
    finally:
        pool.stop()
        telemetry.close()
    return 0


def _submit(parser, args) -> int:
    """Submit an atlas grid through the service, streaming cell completions."""
    from contextlib import ExitStack

    from repro.core.design_space import parse_axes
    from repro.service import Scheduler, ServiceError, WorkerPool
    from repro.service.atlas import run_atlas_service
    from repro.telemetry import telemetry_for
    from repro.utils.logging import get_progress_logger

    axes = None
    if args.protocol_axes is not None:
        try:
            axes = parse_axes(args.protocol_axes)
        except ValueError as error:
            parser.error(str(error))
    scenarios = None
    if args.scenarios is not None:
        scenarios = [
            name.strip() for name in args.scenarios.split(",") if name.strip()
        ]
        if not scenarios:
            parser.error("--scenarios names no scenarios")
    if args.reps is not None and args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")
    if args.workers < 0:
        parser.error(f"--workers must be >= 0, got {args.workers}")
    try:
        spec = atlas_experiment.make_spec(
            scale=args.scale,
            seed=args.seed,
            scenarios=scenarios,
            axes=axes,
            repetitions=args.reps,
        )
    except KeyError as error:
        parser.error(str(error.args[0]))
    except ValueError as error:
        parser.error(str(error))

    root, cache_dir = _service_paths(args)
    telemetry = telemetry_for(args.telemetry)
    scheduler = Scheduler(root, cache_dir=cache_dir, telemetry=telemetry)
    cells = len(spec.cells())
    progress = get_progress_logger("submit")
    progress.info(
        "submitting %d cells x %d reps to %s (store: %s)",
        cells, spec.repetitions, root, cache_dir,
    )
    with ExitStack() as stack:
        stack.callback(telemetry.close)
        if args.workers:
            pool = WorkerPool(
                root,
                cache_dir,
                workers=args.workers,
                telemetry_dir=args.telemetry,
            )
            stack.enter_context(pool)
        try:
            outcome = run_atlas_service(
                spec,
                scheduler,
                substrate=args.substrate,
                timeout=args.timeout,
            )
        except ServiceError as error:
            print(f"submission failed: {error}", flush=True)
            return 1
    if args.substrate == "swarm":
        print(atlas_experiment.render_swarm(outcome))
    else:
        print(atlas_experiment.render(outcome))
    if args.csv is not None:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(outcome.csv())
        print(f"wrote {args.csv}")
    return 0


def _status(parser, args) -> int:
    """Print a live view of a service spool (workers, queue, metrics)."""
    from repro.service import IndexedResultStore, Spool
    from repro.telemetry.report import render_status

    root, cache_dir = _service_paths(args)
    if not os.path.isdir(root):
        parser.error(f"no spool directory at {root}")
    store = IndexedResultStore(cache_dir) if os.path.isdir(cache_dir) else None
    try:
        print(
            render_status(
                Spool(root),
                store=store,
                telemetry_root=args.telemetry,
                liveness_timeout=args.liveness_timeout,
            )
        )
    finally:
        if store is not None:
            store.close()
    return 0


def _trace(parser, args) -> int:
    """Render job timelines + critical path from a telemetry directory."""
    from repro.telemetry import read_events, write_merged
    from repro.telemetry.report import render_trace

    if not os.path.isdir(args.telemetry):
        parser.error(f"no telemetry directory at {args.telemetry}")
    if args.jobs_limit < 0:
        parser.error(f"--jobs-limit must be >= 0, got {args.jobs_limit}")
    events = read_events(args.telemetry)
    jobs_limit = args.jobs_limit if args.jobs_limit else None
    print(render_trace(events, jobs_limit=jobs_limit))
    if args.jsonl is not None:
        count = write_merged(events, args.jsonl)
        print(f"wrote {count} merged events to {args.jsonl}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.verbose:
        configure_logging()
    # Progress lines (stats ticker, per-cell completions) are routed
    # through the repro.progress logger; --quiet raises its level.
    configure_progress_logging(quiet=getattr(args, "quiet", False))

    engine = getattr(args, "engine", None)
    if engine is not None:
        # Govern this process and any worker processes the runner spawns.
        set_default_engine(engine)
        os.environ[ENV_ENGINE] = engine
    else:
        # Surface a bad REPRO_SIM_ENGINE as a CLI error up front instead of
        # a traceback from deep inside the run (or from every worker).
        try:
            default_engine()
        except ValueError as error:
            parser.error(str(error))

    flag_jobs = getattr(args, "jobs", None)
    flag_cache_dir = getattr(args, "cache_dir", None)
    # Configure the runner whenever parallelism/caching is requested via a
    # flag *or* the environment: REPRO_JOBS/REPRO_CACHE_DIR alone must not
    # silently fall through to the lazy default path (which a library call
    # may already have initialised by the time experiments run).
    if (
        flag_jobs is not None
        or flag_cache_dir
        or os.environ.get(ENV_JOBS)
        or os.environ.get(ENV_CACHE_DIR)
    ):
        if flag_jobs is not None and flag_jobs < 0:
            parser.error(f"--jobs must be >= 0, got {flag_jobs}")
        # A flag that was not given keeps its environment-variable default,
        # so e.g. REPRO_JOBS=8 plus --cache-dir still runs parallel.
        if flag_jobs is not None:
            jobs = flag_jobs
        else:
            try:
                jobs = jobs_from_env()
            except ValueError as error:
                parser.error(str(error))
        cache_dir = flag_cache_dir or os.environ.get(ENV_CACHE_DIR) or None
        base.configure_runner(jobs=jobs, cache_dir=cache_dir)

    if args.command == "list":
        width = max(len(name) for name in EXPERIMENTS)
        for name in sorted(EXPERIMENTS):
            description, _runner = EXPERIMENTS[name]
            print(f"{name.ljust(width)}  {description}")
        return 0

    if args.command == "run":
        _description, runner = EXPERIMENTS[args.experiment]
        print(runner(args.scale, args.seed))
        return 0

    if args.command == "all":
        for name in sorted(EXPERIMENTS):
            _description, runner = EXPERIMENTS[name]
            print(f"===== {name} =====")
            print(runner(args.scale, args.seed))
            print()
        return 0

    if args.command == "scenario":
        if args.list_scenarios or args.name is None:
            width = max(len(spec.name) for spec in all_scenarios())
            for spec in all_scenarios():
                print(f"{spec.name.ljust(width)}  {spec.description}")
            return 0
        try:
            spec = get_scenario(args.name)
        except KeyError as error:
            parser.error(str(error.args[0]))
        if args.reps is not None and args.reps < 1:
            parser.error(f"--reps must be >= 1, got {args.reps}")
        if args.profile:
            if args.substrate != "rounds":
                parser.error(
                    "--profile is a round-engine instrument; drop "
                    "--substrate swarm"
                )
            return _profile_scenario(parser, spec, args.scale, args.seed)
        if args.substrate == "swarm":
            swarm_result = scenario_sweep.run_swarm(
                scale=args.scale,
                seed=args.seed,
                scenarios=[args.name],
                repetitions=args.reps,
            )
            print(scenario_sweep.render_swarm(swarm_result))
        else:
            result = scenario_sweep.run(
                scale=args.scale,
                seed=args.seed,
                scenarios=[args.name],
                repetitions=args.reps,
            )
            print(scenario_sweep.render(result))
        runner_stats = base.experiment_runner()
        if runner_stats.cache is not None:
            print(
                f"cache: {runner_stats.cache_hits} hits, "
                f"{runner_stats.cache_misses} misses "
                f"({runner_stats.jobs_executed} simulated)"
            )
        return 0

    if args.command == "atlas":
        from repro.core.design_space import parse_axes

        axes = None
        if args.protocol_axes is not None:
            try:
                axes = parse_axes(args.protocol_axes)
            except ValueError as error:
                parser.error(str(error))
        scenarios = None
        if args.scenarios is not None:
            scenarios = [
                name.strip() for name in args.scenarios.split(",") if name.strip()
            ]
            if not scenarios:
                parser.error("--scenarios names no scenarios")
        if args.reps is not None and args.reps < 1:
            parser.error(f"--reps must be >= 1, got {args.reps}")
        # Resolve the whole declaration up front: unknown scenarios and grid
        # validation problems are usage errors, while failures inside the
        # run itself keep their tracebacks.
        try:
            spec = atlas_experiment.make_spec(
                scale=args.scale,
                seed=args.seed,
                scenarios=scenarios,
                axes=axes,
                repetitions=args.reps,
            )
        except KeyError as error:
            parser.error(str(error.args[0]))
        except ValueError as error:
            parser.error(str(error))
        if args.substrate == "swarm":
            if args.profile:
                parser.error(
                    "--profile is a round-engine instrument; drop "
                    "--substrate swarm"
                )
            outcome = atlas_experiment.run_swarm(spec=spec)
            print(atlas_experiment.render_swarm(outcome))
        else:
            outcome = atlas_experiment.run(spec=spec, profile=args.profile)
            print(atlas_experiment.render(outcome))
        if args.csv is not None:
            with open(args.csv, "w", encoding="utf-8") as handle:
                handle.write(outcome.csv())
            print(f"wrote {args.csv}")
        return 0

    if args.command == "serve":
        return _serve(parser, args)

    if args.command == "submit":
        return _submit(parser, args)

    if args.command == "status":
        return _status(parser, args)

    if args.command == "trace":
        return _trace(parser, args)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
