"""Condensing an atlas run into robustness rankings and heat maps.

The paper's design-space analysis ends in an *ordering*: which protocols
stay good when the workload turns hostile.  :func:`build_report` reduces an
:class:`~repro.atlas.grid.AtlasResult` the same way:

* every (protocol, scenario) cell is summarised by its **download per
  peer-round of presence** — the scale-free PRA performance figure that is
  comparable across fixed and variable populations — pooled over the
  cell's repetitions;
* within each scenario the cell values are normalised by the best protocol
  (**relative score** in [0, 1]), so hostile workloads with depressed
  absolute throughput still separate protocols;
* each protocol is ranked by its **worst-case** relative score across the
  swept workloads (ties broken by the mean) — the paper's robustness
  ordering generalised from one hostile mix to a whole scenario column;
* each cell also carries its per-(group, cohort) PRA split
  (:class:`~repro.sim.metrics.GroupCohortMetrics`, pooled across
  repetitions), which is what the per-group heat map prints: who wins
  *inside* a flash crowd or a colluder clique.

Rendering goes through :mod:`repro.stats.tables` — aligned plain text for
the CLI, CSV (long/tidy form) for machine consumption and CI artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Sequence, Tuple

from repro.atlas.grid import AtlasResult
from repro.sim.engine import SimulationResult
from repro.stats.tables import format_csv, format_table

__all__ = [
    "GroupCell",
    "CellSummary",
    "ProtocolRanking",
    "AtlasReport",
    "build_report",
    "render_ranking",
    "render_heatmap",
    "render_group_heatmap",
    "heatmap_csv",
    "render_report",
]


@dataclass(frozen=True)
class GroupCell:
    """Pooled per-(group, cohort) figures of one atlas cell."""

    group: str
    cohort: str
    peer_count: int
    peer_rounds: int
    downloaded_per_peer_round: float
    download_share: float
    departure_rate: float


@dataclass(frozen=True)
class CellSummary:
    """One (protocol, scenario) cell, pooled over its repetitions."""

    protocol: str
    scenario: str
    repetitions: int
    download_per_peer_round: float
    #: Relative score: this cell's value over the scenario's best protocol.
    score: float
    groups: Tuple[GroupCell, ...]

    def group_download(self, group: str) -> float:
        """Pooled download per peer-round of one behaviour group (all cohorts).

        Cohorts are pooled by exposure — ``sum(download) / sum(peer-rounds)``
        — so a short-lived whitewash rejoin weighs what it actually lived,
        not the same as a founder present for the whole run.
        """
        cells = [g for g in self.groups if g.group == group]
        if not cells:
            raise KeyError(group)
        total = sum(g.downloaded_per_peer_round * g.peer_rounds for g in cells)
        exposure = sum(g.peer_rounds for g in cells)
        return total / exposure if exposure else 0.0


@dataclass(frozen=True)
class ProtocolRanking:
    """One protocol's robustness standing across the scenario columns."""

    rank: int
    protocol: str
    worst_score: float
    mean_score: float
    worst_scenario: str


@dataclass
class AtlasReport:
    """The condensed atlas: ranked protocols plus per-cell summaries."""

    protocols: List[str]
    scenarios: List[str]
    rankings: List[ProtocolRanking]
    cells: Dict[Tuple[str, str], CellSummary]

    def cell(self, protocol: str, scenario: str) -> CellSummary:
        return self.cells[(protocol, scenario)]


def _pool_cell(
    results: Sequence[SimulationResult],
) -> Tuple[float, Tuple[GroupCell, ...]]:
    """Pool one cell's repetitions into its summary figures.

    Pooling sums transfers and peer-rounds across repetitions before
    dividing — a cohort that only materialises in some repetitions (e.g.
    whitewash rejoins under light churn) is weighted by its actual
    exposure instead of averaging rates over runs where it never existed.
    """
    total_down = 0.0
    total_rounds = 0
    pooled: Dict[Tuple[str, str], Dict[str, float]] = {}
    for result in results:
        for key, metrics in result.group_cohort_metrics().items():
            bucket = pooled.setdefault(
                key,
                {"down": 0.0, "peer_rounds": 0.0, "peers": 0.0, "departed": 0.0},
            )
            bucket["down"] += metrics.total_downloaded
            bucket["peer_rounds"] += metrics.peer_rounds
            bucket["peers"] += metrics.peer_count
            bucket["departed"] += metrics.departures
            total_down += metrics.total_downloaded
            total_rounds += metrics.peer_rounds
    groups = tuple(
        GroupCell(
            group=group,
            cohort=cohort,
            peer_count=int(bucket["peers"]),
            peer_rounds=int(bucket["peer_rounds"]),
            downloaded_per_peer_round=(
                bucket["down"] / bucket["peer_rounds"]
                if bucket["peer_rounds"]
                else 0.0
            ),
            download_share=bucket["down"] / total_down if total_down else 0.0,
            departure_rate=(
                bucket["departed"] / bucket["peers"] if bucket["peers"] else 0.0
            ),
        )
        for (group, cohort), bucket in sorted(pooled.items())
    )
    value = total_down / total_rounds if total_rounds else 0.0
    return value, groups


def build_report(result: AtlasResult) -> AtlasReport:
    """Reduce an atlas run to its report (deterministic per grid + seed)."""
    protocols = [p.label for p in result.spec.protocols()]
    scenarios = list(result.spec.scenarios)

    raw: Dict[Tuple[str, str], Tuple[float, Tuple[GroupCell, ...]]] = {}
    for cell in result.cells:
        raw[cell.key] = _pool_cell(result.cell_results(cell))

    cells: Dict[Tuple[str, str], CellSummary] = {}
    for scenario in scenarios:
        best = max(raw[(protocol, scenario)][0] for protocol in protocols)
        for protocol in protocols:
            value, groups = raw[(protocol, scenario)]
            cells[(protocol, scenario)] = CellSummary(
                protocol=protocol,
                scenario=scenario,
                repetitions=result.spec.repetitions,
                download_per_peer_round=value,
                score=value / best if best > 0 else 0.0,
                groups=groups,
            )

    standings = []
    for protocol in protocols:
        scores = {s: cells[(protocol, s)].score for s in scenarios}
        worst_scenario = min(scenarios, key=lambda s: (scores[s], s))
        standings.append(
            (
                protocol,
                scores[worst_scenario],
                mean(scores.values()),
                worst_scenario,
            )
        )
    # The robustness ordering: worst case first, mean as tie-break.
    standings.sort(key=lambda row: (-row[1], -row[2], row[0]))
    rankings = [
        ProtocolRanking(
            rank=rank,
            protocol=protocol,
            worst_score=worst,
            mean_score=mean_score,
            worst_scenario=worst_scenario,
        )
        for rank, (protocol, worst, mean_score, worst_scenario) in enumerate(
            standings, start=1
        )
    ]
    return AtlasReport(
        protocols=protocols, scenarios=scenarios, rankings=rankings, cells=cells
    )


# ---------------------------------------------------------------------- #
# rendering
# ---------------------------------------------------------------------- #
def render_ranking(report: AtlasReport) -> str:
    """The protocol-ranked robustness table."""
    rows = [
        [
            ranking.rank,
            ranking.protocol,
            ranking.worst_score,
            ranking.mean_score,
            ranking.worst_scenario,
        ]
        for ranking in report.rankings
    ]
    return format_table(
        ("rank", "protocol", "worst", "mean", "worst scenario"),
        rows,
        title="robustness ranking (relative score; worst case across workloads)",
    )


def render_heatmap(report: AtlasReport) -> str:
    """Protocol × scenario heat map of relative scores."""
    rows = [
        [protocol]
        + [report.cell(protocol, scenario).score for scenario in report.scenarios]
        for protocol in report.protocols
    ]
    return format_table(
        ("protocol", *report.scenarios),
        rows,
        title="protocol x workload heat map (download/peer-round, relative to "
        "the scenario's best)",
    )


def render_group_heatmap(report: AtlasReport) -> str:
    """Per-group PRA heat map: download per peer-round by scenario × group.

    Columns only appear for (scenario, group) pairs that exist, so a grid
    without adversarial scenarios collapses to the plain per-scenario view.
    """
    columns: List[Tuple[str, str]] = []
    for scenario in report.scenarios:
        groups: List[str] = []
        for protocol in report.protocols:
            for cell in report.cell(protocol, scenario).groups:
                if cell.group not in groups:
                    groups.append(cell.group)
        columns.extend((scenario, group) for group in sorted(groups))

    rows = []
    for protocol in report.protocols:
        row: List[object] = [protocol]
        for scenario, group in columns:
            try:
                row.append(report.cell(protocol, scenario).group_download(group))
            except KeyError:
                row.append("-")
        rows.append(row)
    return format_table(
        ("protocol", *(f"{scenario}:{group}" for scenario, group in columns)),
        rows,
        digits=1,
        title="per-group PRA heat map (download/peer-round by behaviour group)",
    )


def heatmap_csv(report: AtlasReport) -> str:
    """The atlas in long/tidy CSV: one row per (protocol, scenario, group, cohort)."""
    rows = []
    for protocol in report.protocols:
        for scenario in report.scenarios:
            cell = report.cell(protocol, scenario)
            for group in cell.groups:
                rows.append(
                    [
                        protocol,
                        scenario,
                        group.group,
                        group.cohort,
                        group.peer_count,
                        group.peer_rounds,
                        group.downloaded_per_peer_round,
                        group.download_share,
                        group.departure_rate,
                        cell.download_per_peer_round,
                        cell.score,
                    ]
                )
    return format_csv(
        (
            "protocol",
            "scenario",
            "group",
            "cohort",
            "peers",
            "peer_rounds",
            "download_per_peer_round",
            "download_share",
            "departure_rate",
            "cell_download_per_peer_round",
            "cell_score",
        ),
        rows,
    )


def render_report(report: AtlasReport) -> str:
    """The full plain-text report: ranking, score heat map, per-group split."""
    return "\n\n".join(
        (
            render_ranking(report),
            render_heatmap(report),
            render_group_heatmap(report),
        )
    )
