"""The atlas grid: a declarative protocol × workload × seed sweep.

An :class:`AtlasSpec` names what to cross —

* **protocol axes**: behaviour-field axes from
  :data:`repro.core.design_space.BEHAVIOR_AXES` with the values to sweep
  (``{"ranking": ("fastest", "loyal"), "allocation": ("equal_split",)}``),
  applied onto a base behaviour; every combination is coerced to a
  *coherent* design point (e.g. the ``"none"`` stranger policy forces
  ``h = 0``) and duplicates collapse, exactly as the enumerated design
  space treats its degenerate points;
* **scenarios**: registered workload names from :mod:`repro.scenarios`;
  each cell injects the protocol under test as the scenario population's
  *default* behaviour, leaving declared sub-populations (capacity classes,
  adversarial behaviour groups, shift targets) untouched;
* **seeds**: ``repetitions`` independent runs per cell with seeds derived
  deterministically per (scenario × protocol, master seed, repetition).

:meth:`AtlasSpec.jobs` compiles the grid to plain
:class:`~repro.runner.jobs.SimulationJob`\\ s and :func:`run_atlas`
executes them as **one flat batch** on the (possibly parallel, possibly
cached) :class:`~repro.runner.runner.ExperimentRunner`.  Because every job
is content-addressed, a *grown* grid — more protocols, more scenarios,
more repetitions — re-simulates only its new cells when pointed at the
same cache; the :class:`~repro.runner.runner.RunnerStats` delta in the
result proves it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.design_space import BEHAVIOR_AXES
from repro.core.protocol import Protocol
from repro.runner.jobs import SimulationJob
from repro.runner.runner import ExperimentRunner, RunnerStats, get_default_runner
from repro.scenarios import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.sim.behavior import PeerBehavior
from repro.sim.engine import SimulationResult

__all__ = [
    "DEFAULT_AXES",
    "DEFAULT_SCENARIOS",
    "AtlasSpec",
    "AtlasCell",
    "AtlasResult",
    "coherent_behavior",
    "run_atlas",
]

#: Micro axes swept when a grid declares none: the rankings the paper keeps
#: contrasting (Sort Fastest vs Sort Loyal vs Random) crossed with the two
#: reciprocative allocation policies — 6 protocols.
DEFAULT_AXES: Tuple[Tuple[str, Tuple[object, ...]], ...] = (
    ("ranking", ("fastest", "loyal", "random")),
    ("allocation", ("equal_split", "prop_share")),
)

#: Default workload column set: the static baseline plus the adversarial
#: scenarios the robustness ordering is about.
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "baseline",
    "flash-crowd",
    "free-rider-wave",
    "colluders",
    "whitewash-churn",
    "colluding-whitewash",
)


def coherent_behavior(base: PeerBehavior, assignment: Mapping[str, object]) -> PeerBehavior:
    """``base`` with ``assignment`` applied, coerced to a coherent point.

    Axis combinations can name incoherent corners of the hypercube (the
    ``"none"`` stranger policy with ``h > 0``, ``"periodic"`` with
    ``h == 0``); rather than erroring out mid-sweep they are projected onto
    the nearest coherent design point, mirroring how the enumerated space
    canonicalises its degenerate selections.
    """
    fields = dict(assignment)
    policy = fields.get("stranger_policy", base.stranger_policy)
    count = fields.get("stranger_count", base.stranger_count)
    if policy == "none":
        fields["stranger_count"] = 0
    elif policy in ("periodic", "when_needed") and count == 0:
        fields["stranger_count"] = 1
    return base.with_(**fields)


@dataclass(frozen=True)
class AtlasCell:
    """One (protocol, scenario) cell of the grid."""

    protocol: Protocol
    scenario: str

    @property
    def key(self) -> Tuple[str, str]:
        return (self.protocol.label, self.scenario)


@dataclass(frozen=True)
class AtlasSpec:
    """A declarative robustness-atlas grid.

    Parameters
    ----------
    axes:
        Protocol axes as ``(axis name, swept values)`` pairs (mappings are
        normalised); names and values are validated against
        :data:`~repro.core.design_space.BEHAVIOR_AXES`.
    scenarios:
        Registered scenario names (resolved at compile time, so a grid can
        be declared before runtime registrations happen).
    scale:
        Run budget per cell (``smoke`` / ``bench`` / ``paper``).
    master_seed:
        Master seed the per-cell repetition seeds derive from.
    repetitions:
        Independent runs per cell.
    base:
        The behaviour the axis assignments are applied onto (the reference
        BitTorrent actualization by default).
    """

    axes: Tuple[Tuple[str, Tuple[object, ...]], ...] = DEFAULT_AXES
    scenarios: Tuple[str, ...] = DEFAULT_SCENARIOS
    scale: str = "smoke"
    master_seed: int = 0
    repetitions: int = 2
    base: PeerBehavior = field(default_factory=PeerBehavior)

    def __post_init__(self) -> None:
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        axes = tuple((name, tuple(values)) for name, values in axes)
        object.__setattr__(self, "axes", axes)
        if not axes:
            raise ValueError("an atlas needs at least one protocol axis")
        seen = set()
        for name, values in axes:
            if name not in BEHAVIOR_AXES:
                raise ValueError(
                    f"unknown protocol axis {name!r}; "
                    f"expected one of {tuple(BEHAVIOR_AXES)}"
                )
            if name in seen:
                raise ValueError(f"axis {name!r} declared twice")
            seen.add(name)
            if not values:
                raise ValueError(f"axis {name!r} sweeps no values")
            for value in values:
                if value not in BEHAVIOR_AXES[name]:
                    raise ValueError(
                        f"value {value!r} is not admissible for axis {name!r}"
                    )
        if not isinstance(self.scenarios, tuple):
            object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError("an atlas needs at least one scenario")
        if len(set(self.scenarios)) != len(self.scenarios):
            raise ValueError("scenario names must be distinct")
        if self.repetitions < 1:
            raise ValueError("repetitions must be >= 1")

    # ------------------------------------------------------------------ #
    # grid enumeration
    # ------------------------------------------------------------------ #
    def protocols(self) -> List[Protocol]:
        """The swept protocols: coherent axis combinations, deduplicated.

        Combinations are enumerated axis-major in declaration order and
        labelled with their compact dimension-code label; combinations that
        project onto the same coherent design point collapse to one entry.
        """
        names = [name for name, _values in self.axes]
        value_lists = [values for _name, values in self.axes]
        protocols: List[Protocol] = []
        seen = set()
        for combo in product(*value_lists):
            behavior = coherent_behavior(self.base, dict(zip(names, combo)))
            label = behavior.label()
            if label in seen:
                continue
            seen.add(label)
            protocols.append(Protocol(behavior=behavior, name=label))
        return protocols

    def cells(self) -> List[AtlasCell]:
        """Every (protocol, scenario) cell, scenario-major per protocol."""
        return [
            AtlasCell(protocol=protocol, scenario=name)
            for protocol in self.protocols()
            for name in self.scenarios
        ]

    def cell_spec(self, cell: AtlasCell) -> ScenarioSpec:
        """The scenario of ``cell`` with its protocol injected as default."""
        return get_scenario(cell.scenario).with_default_behavior(
            cell.protocol.behavior
        )

    def jobs(self) -> List[Tuple[AtlasCell, List[SimulationJob]]]:
        """Compile the full grid to its per-cell simulation jobs.

        Each cell's repetition seeds derive from the protocol-injected
        scenario's fingerprint, so they are stable under grid growth: adding
        protocols, scenarios or repetitions never changes the jobs (and
        therefore the cache entries) of the existing cells.
        """
        return [
            (
                cell,
                self.cell_spec(cell).jobs(
                    self.scale,
                    master_seed=self.master_seed,
                    repetitions=self.repetitions,
                ),
            )
            for cell in self.cells()
        ]

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-stable description of the declared grid."""
        return {
            "axes": [[name, list(values)] for name, values in self.axes],
            "scenarios": list(self.scenarios),
            "scale": self.scale,
            "master_seed": self.master_seed,
            "repetitions": self.repetitions,
            "base": self.base.as_dict(),
        }

    def fingerprint(self) -> str:
        """Content hash of the grid declaration."""
        blob = json.dumps(self.as_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


@dataclass
class AtlasResult:
    """Outcome of one atlas run: per-cell results plus execution accounting.

    ``stats`` is the runner-counter *delta* of exactly this invocation:
    ``stats.executed`` says how many unique jobs were actually simulated —
    on a warm cache over an unchanged grid it is 0, and on a grown grid it
    counts only the new cells.
    """

    spec: AtlasSpec
    cells: List[AtlasCell]
    results: Dict[Tuple[str, str], List[SimulationResult]]
    jobs_total: int
    stats: RunnerStats

    def cell_results(self, cell: AtlasCell) -> List[SimulationResult]:
        return self.results[cell.key]


def run_atlas(
    spec: AtlasSpec, runner: Optional[ExperimentRunner] = None
) -> AtlasResult:
    """Execute the grid as one flat batch and gather per-cell results."""
    if runner is None:
        runner = get_default_runner()
    compiled = spec.jobs()
    flat = [job for _cell, batch in compiled for job in batch]
    before = runner.stats()
    results = runner.run(flat)
    stats = runner.stats() - before

    by_cell: Dict[Tuple[str, str], List[SimulationResult]] = {}
    cursor = 0
    for cell, batch in compiled:
        by_cell[cell.key] = results[cursor : cursor + len(batch)]
        cursor += len(batch)
    return AtlasResult(
        spec=spec,
        cells=[cell for cell, _batch in compiled],
        results=by_cell,
        jobs_total=len(flat),
        stats=stats,
    )
