"""The robustness atlas: protocol design space × workload scenarios.

The paper's headline artifact is *design space analysis* — enumerating a
combinatorial protocol space and asking which design points stay robust as
the workload turns hostile.  This package crosses the two halves the
library already has: the actualized protocol axes of
:mod:`repro.core.design_space` and the named workload registry of
:mod:`repro.scenarios`.

* :mod:`repro.atlas.grid` — the declarative :class:`AtlasSpec` (protocol
  axes × scenario names × seeds) that compiles to deduplicated, cached
  simulation jobs and executes them through the experiment runner; thanks
  to content-addressed job fingerprints, re-running a *grown* grid only
  simulates the new cells.
* :mod:`repro.atlas.report` — condensation of a grid run into
  protocol-ranked robustness scores (mean and worst case across workloads,
  after the paper's robustness ordering) and plain-text / CSV heat maps,
  including the per-(group, cohort) PRA split that says who wins *inside*
  an adversarial workload.
"""

from repro.atlas.grid import AtlasCell, AtlasResult, AtlasSpec, run_atlas
from repro.atlas.report import (
    AtlasReport,
    build_report,
    render_group_heatmap,
    render_heatmap,
    render_ranking,
)

__all__ = [
    "AtlasCell",
    "AtlasResult",
    "AtlasSpec",
    "run_atlas",
    "AtlasReport",
    "build_report",
    "render_ranking",
    "render_heatmap",
    "render_group_heatmap",
]
