"""Figure 2: scatter of Robustness against Performance over the design space.

Every protocol in the swept space becomes one point (robustness, performance),
with marginal histograms of both scores.  The paper's observations read off
this figure — the freerider clusters at low performance/robustness, the
protocols above 0.99 robustness, the handful of protocols that score above
0.8 on both — are exposed as structured fields so the tests and EXPERIMENTS.md
can check them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.distribution import normalized_histogram
from repro.stats.tables import format_table

__all__ = ["Figure2Result", "run", "render", "from_study"]


@dataclass
class Figure2Result:
    """Scatter points and marginal histograms of Figure 2."""

    points: List[Dict[str, object]]
    performance_hist_edges: List[float]
    performance_hist: List[float]
    robustness_hist_edges: List[float]
    robustness_hist: List[float]
    n_protocols: int
    best_both: List[Dict[str, object]]
    freerider_max_performance: float

    def performance_values(self) -> List[float]:
        return [float(p["performance"]) for p in self.points]

    def robustness_values(self) -> List[float]:
        return [float(p["robustness"]) for p in self.points]


def from_study(study: PRAStudyResult, both_threshold: float = 0.8) -> Figure2Result:
    """Derive the Figure 2 data from an existing PRA study."""
    points = study.rows()
    performance = [float(p["performance"]) for p in points]
    robustness = [float(p["robustness"]) for p in points]
    perf_edges, perf_hist = normalized_histogram(performance, bins=10)
    rob_edges, rob_hist = normalized_histogram(robustness, bins=10)

    best_both = [
        p
        for p in points
        if p["performance"] >= both_threshold and p["robustness"] >= both_threshold
    ]
    freerider_performance = [
        float(p["performance"]) for p in points if p["allocation"] == "R3"
    ]
    return Figure2Result(
        points=points,
        performance_hist_edges=[float(x) for x in perf_edges],
        performance_hist=[float(x) for x in perf_hist],
        robustness_hist_edges=[float(x) for x in rob_edges],
        robustness_hist=[float(x) for x in rob_hist],
        n_protocols=len(points),
        best_both=best_both,
        freerider_max_performance=(
            max(freerider_performance) if freerider_performance else float("nan")
        ),
    )


def run(scale: str = "bench", seed: int = 0) -> Figure2Result:
    """Run (or reuse) the shared PRA sweep and derive the Figure 2 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: Figure2Result, max_points: int = 20) -> str:
    """Plain-text rendering: marginal histograms plus the highest-scoring points."""
    lines: List[str] = [
        f"Figure 2 — Robustness vs Performance scatter over {result.n_protocols} protocols"
    ]
    lines.append("")
    hist_rows = []
    for i in range(len(result.performance_hist)):
        lo = result.performance_hist_edges[i]
        hi = result.performance_hist_edges[i + 1]
        hist_rows.append(
            (f"[{lo:.1f},{hi:.1f})", result.performance_hist[i], result.robustness_hist[i])
        )
    lines.append(
        format_table(
            ("score interval", "performance freq", "robustness freq"),
            hist_rows,
            title="Marginal histograms",
        )
    )
    lines.append("")
    ranked = sorted(
        result.points,
        key=lambda p: (float(p["robustness"]) + float(p["performance"])),
        reverse=True,
    )[:max_points]
    lines.append(
        format_table(
            ("protocol", "performance", "robustness", "aggressiveness"),
            [
                (p["label"], p["performance"], p["robustness"], p["aggressiveness"])
                for p in ranked
            ],
            title=f"Top {len(ranked)} protocols by performance + robustness",
        )
    )
    lines.append("")
    lines.append(
        f"protocols with performance and robustness both >= 0.8: {len(result.best_both)}"
    )
    lines.append(
        f"highest performance achieved by a freerider (R3): "
        f"{result.freerider_max_performance:.3f}"
    )
    return "\n".join(lines)
