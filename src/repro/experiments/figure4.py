"""Figure 4: Robustness histograms for different numbers of partners.

Same construction as Figure 3 but with robustness on the score axis; the
paper observes the trend reverses — the most robust protocols maintain many
partners.
"""

from __future__ import annotations

from repro.core.results import PRAStudyResult
from repro.experiments.figure3 import PartnerHistogramResult, _build, render
from repro.experiments.pra_study import shared_pra_study

__all__ = ["PartnerHistogramResult", "run", "render", "from_study"]


def from_study(study: PRAStudyResult) -> PartnerHistogramResult:
    """Derive the Figure 4 matrix (robustness vs partners) from a study."""
    return _build(study, "robustness")


def run(scale: str = "bench", seed: int = 0) -> PartnerHistogramResult:
    """Run (or reuse) the shared PRA sweep and derive the Figure 4 data."""
    return from_study(shared_pra_study(scale, seed=seed))
