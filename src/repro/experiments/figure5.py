"""Figure 5: complementary CDFs of Robustness per stranger policy.

The paper plots ``P(X > x)`` of the robustness score separately for the
Periodic, When-needed and Defect stranger policies and observes that only
When-needed protocols reach the highest robustness levels while Defect
protocols dominate the low end.  This driver groups the shared PRA sweep by
stranger policy and computes each group's CCDF plus a few tail statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.distribution import ccdf
from repro.stats.tables import format_table

__all__ = ["Figure5Result", "run", "render", "from_study"]

#: Paper names of the stranger-policy codes (B0 is this reproduction's extra
#: "no strangers" policy, reported for completeness).
POLICY_NAMES = {
    "B1": "Periodic",
    "B2": "When needed",
    "B3": "Defect",
    "B0": "No strangers",
}


@dataclass
class Figure5Result:
    """Per-stranger-policy robustness CCDFs and tail statistics."""

    curves: Dict[str, Dict[str, List[float]]]
    group_sizes: Dict[str, int]
    group_means: Dict[str, float]
    group_maxima: Dict[str, float]


def from_study(study: PRAStudyResult) -> Figure5Result:
    """Group the study by stranger policy and compute the CCDF curves."""
    rows = study.rows()
    groups: Dict[str, List[float]] = {}
    for row in rows:
        groups.setdefault(str(row["stranger"]), []).append(float(row["robustness"]))

    curves: Dict[str, Dict[str, List[float]]] = {}
    sizes: Dict[str, int] = {}
    means: Dict[str, float] = {}
    maxima: Dict[str, float] = {}
    for code, values in sorted(groups.items()):
        xs, probs = ccdf(values)
        curves[code] = {"x": [float(v) for v in xs], "ccdf": [float(p) for p in probs]}
        sizes[code] = len(values)
        means[code] = float(np.mean(values))
        maxima[code] = float(np.max(values))
    return Figure5Result(
        curves=curves, group_sizes=sizes, group_means=means, group_maxima=maxima
    )


def run(scale: str = "bench", seed: int = 0) -> Figure5Result:
    """Run (or reuse) the shared PRA sweep and derive the Figure 5 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: Figure5Result) -> str:
    """Plain-text rendering: CCDF sampled at fixed thresholds plus tail stats."""
    thresholds = [0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95]
    rows = []
    for code, curve in sorted(result.curves.items()):
        xs = np.asarray(curve["x"])
        probs = np.asarray(curve["ccdf"])
        sampled = []
        for threshold in thresholds:
            above = probs[xs > threshold]
            # P(X > t): fraction of observations strictly above the threshold.
            sampled.append(float(np.sum(xs > threshold)) / len(xs))
        rows.append(
            [POLICY_NAMES.get(code, code), result.group_sizes[code]]
            + [f"{v:.2f}" for v in sampled]
            + [f"{result.group_means[code]:.2f}", f"{result.group_maxima[code]:.2f}"]
        )
    headers = (
        ["stranger policy", "n"]
        + [f"P(R>{t:g})" for t in thresholds]
        + ["mean", "max"]
    )
    return format_table(
        headers, rows, title="Figure 5 — robustness CCDF per stranger policy"
    )
