"""Cross-substrate validation: do the two simulators rank protocols alike?

The repo carries two executable models of the same system: the abstract
round engine (the paper's PRA methodology) and the packet-level BitTorrent
swarm.  Their scores are incommensurable — download volume per peer-round
versus censored download time in ticks — so agreement is measured where it
matters: the *within-scenario relative ordering* of protocol variants.  For
each scenario, five ranking-axis protocols (the five swarm client rankings)
are injected as the population's default behaviour and run on both
substrates with shared per-(scenario, repetition) seed streams; the report
is the Spearman rank correlation between the two orderings per scenario.

A high correlation is evidence that the abstract engine's design-space
conclusions are not artefacts of its abstraction level; a low one flags the
scenarios where the packet-level mechanics (piece availability, choking
slots, rate limits) change which protocol wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bittorrent.metrics import censored_mean_download_time
from repro.experiments import base
from repro.scenarios import get_scenario, get_substrate
from repro.sim.behavior import PeerBehavior
from repro.stats.correlation import spearman_rank_correlation
from repro.stats.tables import format_table

__all__ = [
    "CrossSubstrateResult",
    "DEFAULT_SCENARIOS",
    "PROTOCOL_RANKINGS",
    "repetitions_for",
    "run",
    "render",
]

#: The compared protocols: one per ranking function both substrates model
#: natively (the five swarm client variants map onto exactly these).
PROTOCOL_RANKINGS: Tuple[str, ...] = (
    "fastest",
    "slowest",
    "proximity",
    "loyal",
    "random",
)

#: Default scenario columns: the static baseline plus the dynamics the
#: swarm substrate models mechanically (churn, shifts, adversaries).
DEFAULT_SCENARIOS: Tuple[str, ...] = (
    "baseline",
    "flash-crowd",
    "free-rider-wave",
    "colluders",
)

#: Independent repetitions (distinct derived seeds) per cell, by scale.
REPETITIONS = {"smoke": 2, "bench": 3, "paper": 10}


def repetitions_for(scale: str) -> int:
    """Number of repetitions each (scenario, protocol) cell runs at ``scale``."""
    base.check_scale(scale)
    return REPETITIONS[scale]


@dataclass
class CrossSubstrateResult:
    """Outcome of one cross-substrate comparison.

    Scores are keyed (scenario, ranking); both are oriented so *higher is
    better* (the swarm score is the negated censored mean download time),
    which makes the per-scenario orderings directly comparable.
    """

    scale: str
    seed: int
    scenarios: Tuple[str, ...]
    protocols: Tuple[str, ...]
    repetitions: int
    rounds_scores: Dict[Tuple[str, str], float]
    swarm_scores: Dict[Tuple[str, str], float]
    correlations: Dict[str, float]
    jobs_run: int

    @property
    def mean_correlation(self) -> float:
        return mean(self.correlations.values())

    def ordering(self, scenario: str, substrate: str) -> List[str]:
        """Protocol labels best-first under ``substrate`` in ``scenario``."""
        scores = self.rounds_scores if substrate == "rounds" else self.swarm_scores
        return sorted(
            self.protocols, key=lambda p: scores[(scenario, p)], reverse=True
        )

    def csv(self) -> str:
        """Long-form CSV of both score columns (CI artifact format)."""
        lines = ["scenario,protocol,rounds_score,swarm_score"]
        for scenario in self.scenarios:
            for protocol in self.protocols:
                rounds = self.rounds_scores[(scenario, protocol)]
                swarm = self.swarm_scores[(scenario, protocol)]
                lines.append(f"{scenario},{protocol},{rounds:.4f},{swarm:.4f}")
        return "\n".join(lines) + "\n"


def run(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    repetitions: Optional[int] = None,
) -> CrossSubstrateResult:
    """Run every (scenario, protocol) cell on both substrates and correlate.

    Rounds jobs and swarm jobs form **one** mixed flat batch on the cached,
    parallel experiment runner — the executors dispatch on ``job.execute()``
    and the cache keys on fingerprints, which carry a substrate
    discriminator, so both substrates share a runner and a cache directory.
    Per-cell seeds derive from the protocol-injected spec's fingerprint, so
    the two substrates see the same seed stream per (scenario, repetition).
    """
    base.check_scale(scale)
    names = tuple(scenarios) if scenarios is not None else DEFAULT_SCENARIOS
    if repetitions is None:
        repetitions = repetitions_for(scale)

    rounds_substrate = get_substrate("rounds")
    swarm_substrate = get_substrate("swarm")
    cells = []
    flat: List[object] = []
    for name in names:
        for ranking in PROTOCOL_RANKINGS:
            spec = get_scenario(name).with_default_behavior(
                PeerBehavior().with_(ranking=ranking)
            )
            rounds_batch = rounds_substrate.jobs(
                spec, scale, master_seed=seed, repetitions=repetitions
            )
            swarm_batch = swarm_substrate.jobs(
                spec, scale, master_seed=seed, repetitions=repetitions
            )
            cells.append((name, ranking, len(rounds_batch), len(swarm_batch)))
            flat.extend(rounds_batch)
            flat.extend(swarm_batch)
    results = base.experiment_runner().run(flat)

    rounds_scores: Dict[Tuple[str, str], float] = {}
    swarm_scores: Dict[Tuple[str, str], float] = {}
    cursor = 0
    for name, ranking, n_rounds, n_swarm in cells:
        rounds_chunk = results[cursor : cursor + n_rounds]
        cursor += n_rounds
        swarm_chunk = results[cursor : cursor + n_swarm]
        cursor += n_swarm
        rounds_scores[(name, ranking)] = mean(r.throughput for r in rounds_chunk)
        swarm_scores[(name, ranking)] = -censored_mean_download_time(swarm_chunk)

    correlations = {
        name: spearman_rank_correlation(
            [rounds_scores[(name, p)] for p in PROTOCOL_RANKINGS],
            [swarm_scores[(name, p)] for p in PROTOCOL_RANKINGS],
        )
        for name in names
    }
    return CrossSubstrateResult(
        scale=scale,
        seed=seed,
        scenarios=names,
        protocols=PROTOCOL_RANKINGS,
        repetitions=repetitions,
        rounds_scores=rounds_scores,
        swarm_scores=swarm_scores,
        correlations=correlations,
        jobs_run=len(flat),
    )


def render(result: CrossSubstrateResult) -> str:
    """Per-scenario rank-correlation table plus the headline mean."""
    rows = []
    for scenario in result.scenarios:
        rows.append(
            [
                scenario,
                result.correlations[scenario],
                " > ".join(result.ordering(scenario, "rounds")),
                " > ".join(result.ordering(scenario, "swarm")),
            ]
        )
    table = format_table(
        ("scenario", "spearman", "rounds ranking (best first)", "swarm ranking (best first)"),
        rows,
        title=(
            f"cross-substrate protocol rankings — {result.scale} scale, "
            f"seed {result.seed}, {result.repetitions} reps"
        ),
    )
    return "\n".join(
        [
            table,
            "",
            f"mean Spearman over {len(result.scenarios)} scenarios: "
            f"{result.mean_correlation:.3f}  ({result.jobs_run} jobs)",
        ]
    )
