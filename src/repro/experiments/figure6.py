"""Figure 6: Robustness per resource-allocation policy.

The paper plots every protocol's robustness grouped by its resource-allocation
policy (circle size = performance) and observes that Equal Split does well
but only Prop Share protocols reach the very top robustness values, while
Freeride is uniformly poor.  This driver produces the grouped values and
summary statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.tables import format_table

__all__ = ["GroupedRobustnessResult", "run", "render", "from_study", "group_by"]

ALLOCATION_NAMES = {"R1": "Equal Split", "R2": "Prop Share", "R3": "Freeride"}


@dataclass
class GroupedRobustnessResult:
    """Robustness (and performance) of every protocol grouped by one dimension."""

    dimension: str
    group_names: Dict[str, str]
    points: Dict[str, List[Dict[str, float]]]
    group_means: Dict[str, float]
    group_maxima: Dict[str, float]


def group_by(
    study: PRAStudyResult, dimension: str, names: Dict[str, str]
) -> GroupedRobustnessResult:
    """Group the study's robustness/performance points by a categorical dimension."""
    rows = study.rows()
    points: Dict[str, List[Dict[str, float]]] = {}
    for row in rows:
        code = str(row[dimension])
        points.setdefault(code, []).append(
            {
                "robustness": float(row["robustness"]),
                "performance": float(row["performance"]),
            }
        )
    means = {
        code: float(np.mean([p["robustness"] for p in values]))
        for code, values in points.items()
    }
    maxima = {
        code: float(np.max([p["robustness"] for p in values]))
        for code, values in points.items()
    }
    return GroupedRobustnessResult(
        dimension=dimension,
        group_names=names,
        points=points,
        group_means=means,
        group_maxima=maxima,
    )


def from_study(study: PRAStudyResult) -> GroupedRobustnessResult:
    """Figure 6 grouping: robustness by resource-allocation policy."""
    return group_by(study, "allocation", ALLOCATION_NAMES)


def run(scale: str = "bench", seed: int = 0) -> GroupedRobustnessResult:
    """Run (or reuse) the shared PRA sweep and derive the Figure 6 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: GroupedRobustnessResult, figure_name: str = "Figure 6") -> str:
    """Plain-text per-group robustness summary."""
    rows = []
    for code in sorted(result.points):
        values = result.points[code]
        robustness = [p["robustness"] for p in values]
        performance = [p["performance"] for p in values]
        rows.append(
            (
                result.group_names.get(code, code),
                len(values),
                float(np.mean(robustness)),
                float(np.max(robustness)),
                float(np.mean(performance)),
            )
        )
    return format_table(
        ("group", "n", "mean robustness", "max robustness", "mean performance"),
        rows,
        title=f"{figure_name} — robustness by {result.dimension}",
    )
