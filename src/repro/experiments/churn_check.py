"""The §4.4 churn check: do the performance conclusions survive churn?

The paper re-runs the performance sweep under per-round churn rates of 0.01
and 0.1 and reports that protocols with a low number of partners remain the
top performers.  This driver measures performance for a protocol sample at
churn rates {0, 0.01, 0.1}, reports the mean partner count of the top
performers at each rate, and the rank correlation of performance across
churn rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.pra import measure_performance, normalize_scores
from repro.core.protocol import Protocol
from repro.core.space import DesignSpace
from repro.experiments import base
from repro.stats.correlation import pearson_correlation
from repro.stats.tables import format_table

__all__ = ["ChurnCheckResult", "run", "render"]

#: The churn rates examined by the paper (per round), plus the no-churn baseline.
CHURN_RATES = (0.0, 0.01, 0.1)


@dataclass
class ChurnCheckResult:
    """Normalised performance per churn rate plus partner-count summaries."""

    performance: Dict[float, Dict[str, float]]
    top_partner_means: Dict[float, float]
    correlation_with_baseline: Dict[float, float]
    protocols: List[Protocol]
    top_count: int


def run(
    scale: str = "bench", seed: int = 0, sample_size: int = None, top_count: int = 5
) -> ChurnCheckResult:
    """Measure performance under each churn rate for a protocol sample."""
    base.check_scale(scale)
    if sample_size is None:
        sample_size = {"smoke": 8, "bench": 20, "paper": 3270}[scale]
    config = base.pra_config(scale, seed=seed)
    space = DesignSpace.default()
    if sample_size >= len(space):
        protocols = space.protocols()
    else:
        protocols = space.sample(
            sample_size, seed=seed, method="stratified", include=base.named_protocols()
        )
    partner_count = {p.key: p.number_of_partners for p in protocols}

    performance: Dict[float, Dict[str, float]] = {}
    top_partner_means: Dict[float, float] = {}
    for churn_rate in CHURN_RATES:
        churn_config = config.with_(sim=config.sim.with_(churn_rate=churn_rate))
        raw = measure_performance(protocols, churn_config)
        scores = normalize_scores(raw)
        performance[churn_rate] = scores
        top = sorted(scores, key=lambda k: scores[k], reverse=True)[:top_count]
        top_partner_means[churn_rate] = float(np.mean([partner_count[k] for k in top]))

    keys = [p.key for p in protocols]
    baseline = [performance[0.0][k] for k in keys]
    correlation = {
        rate: pearson_correlation(baseline, [performance[rate][k] for k in keys])
        for rate in CHURN_RATES
        if rate != 0.0
    }
    return ChurnCheckResult(
        performance=performance,
        top_partner_means=top_partner_means,
        correlation_with_baseline=correlation,
        protocols=list(protocols),
        top_count=top_count,
    )


def render(result: ChurnCheckResult) -> str:
    """Plain-text summary of the churn check."""
    rate_rows = []
    for rate in CHURN_RATES:
        row = [
            f"{rate:g}",
            result.top_partner_means[rate],
            result.correlation_with_baseline.get(rate, 1.0),
        ]
        rate_rows.append(row)
    table = format_table(
        ("churn rate", f"mean k of top {result.top_count}", "corr. with no-churn"),
        rate_rows,
        title="§4.4 churn check — performance under churn",
    )
    return table
