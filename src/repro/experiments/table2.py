"""Table 2: existing protocols/designs mapped onto the generic design space."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.registry import DIMENSIONS, registry_rows

__all__ = ["Table2Result", "run", "render"]


@dataclass
class Table2Result:
    """The rows of Table 2."""

    headers: Tuple[str, ...]
    rows: List[Tuple[str, str, str, str, str]]


def run() -> Table2Result:
    """Assemble Table 2 from the system registry."""
    return Table2Result(headers=("Protocol",) + DIMENSIONS, rows=registry_rows())


def render(result: Table2Result) -> str:
    """Render Table 2 as aligned plain text."""
    from repro.stats.tables import format_table

    return format_table(result.headers, result.rows, title="Table 2")
