"""Figure 8: scatter of Robustness against Aggressiveness.

The paper reports that robustness and aggressiveness are strongly linearly
correlated (Pearson's r = 0.96), concluding that the robustness findings
carry over to aggressiveness.  This driver extracts the per-protocol pairs
and the correlation from the shared PRA sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.correlation import pearson_correlation
from repro.stats.tables import format_table

__all__ = ["Figure8Result", "run", "render", "from_study"]


@dataclass
class Figure8Result:
    """Robustness/aggressiveness pairs and their Pearson correlation."""

    points: List[Dict[str, object]]
    pearson_r: float


def from_study(study: PRAStudyResult) -> Figure8Result:
    """Derive the Figure 8 data from an existing PRA study."""
    rows = study.rows()
    points = [
        {
            "label": row["label"],
            "robustness": float(row["robustness"]),
            "aggressiveness": float(row["aggressiveness"]),
        }
        for row in rows
    ]
    r = pearson_correlation(
        [p["robustness"] for p in points], [p["aggressiveness"] for p in points]
    )
    return Figure8Result(points=points, pearson_r=r)


def run(scale: str = "bench", seed: int = 0) -> Figure8Result:
    """Run (or reuse) the shared PRA sweep and derive the Figure 8 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: Figure8Result, max_points: int = 15) -> str:
    """Plain-text rendering: correlation plus the extreme points."""
    ranked = sorted(
        result.points, key=lambda p: float(p["robustness"]), reverse=True
    )[:max_points]
    table = format_table(
        ("protocol", "robustness", "aggressiveness"),
        [(p["label"], p["robustness"], p["aggressiveness"]) for p in ranked],
        title="Figure 8 — robustness vs aggressiveness (most robust protocols)",
    )
    return table + f"\nPearson correlation (all {len(result.points)} protocols): {result.pearson_r:.3f}"
