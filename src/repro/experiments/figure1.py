"""Figure 1: the BitTorrent Dilemma and the modified Birds payoffs.

The figure in the paper shows (a) the payoff matrix of the BitTorrent
Dilemma between a fast and a slow peer, (b) an illustration of their
interaction and (c) the modified payoffs that define Birds.  This driver
regenerates the two payoff matrices for a concrete fast/slow speed pair and
reports the dominance / equilibrium structure the paper derives from them:

* under (a) the fast peer's dominant strategy is to defect and the slow
  peer's is to cooperate (a Dictator-like, one-sided dilemma);
* under (c) defection is dominant for both, so cross-class defection
  (i.e. intra-class reciprocation — Birds) is the equilibrium outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.gametheory.equilibrium import dominant_strategy, pure_nash_equilibria
from repro.gametheory.games import NormalFormGame, birds_game, bittorrent_dilemma

__all__ = ["Figure1Result", "run", "render"]


@dataclass
class Figure1Result:
    """Payoff matrices and their strategic structure."""

    fast_speed: float
    slow_speed: float
    bittorrent_dilemma: NormalFormGame
    birds: NormalFormGame
    dominance: Dict[str, Dict[str, Optional[str]]]
    equilibria: Dict[str, List[Tuple[str, str]]]


def run(fast_speed: float = 100.0, slow_speed: float = 25.0) -> Figure1Result:
    """Build both games and analyse their dominance / equilibria."""
    dilemma = bittorrent_dilemma(fast_speed, slow_speed)
    birds = birds_game(fast_speed, slow_speed)
    dominance = {
        "bittorrent_dilemma": {
            "fast": dominant_strategy(dilemma, "row"),
            "slow": dominant_strategy(dilemma, "column"),
        },
        "birds": {
            "fast": dominant_strategy(birds, "row"),
            "slow": dominant_strategy(birds, "column"),
        },
    }
    equilibria = {
        "bittorrent_dilemma": pure_nash_equilibria(dilemma),
        "birds": pure_nash_equilibria(birds),
    }
    return Figure1Result(
        fast_speed=fast_speed,
        slow_speed=slow_speed,
        bittorrent_dilemma=dilemma,
        birds=birds,
        dominance=dominance,
        equilibria=equilibria,
    )


def render(result: Figure1Result) -> str:
    """Plain-text rendering of Figure 1(a) and 1(c) plus the analysis."""
    lines: List[str] = []
    lines.append(
        f"Figure 1 — BitTorrent Dilemma and Birds payoffs "
        f"(f = {result.fast_speed:g}, s = {result.slow_speed:g})"
    )
    lines.append("")
    lines.append("(a) BitTorrent Dilemma")
    lines.append(result.bittorrent_dilemma.describe())
    lines.append(
        "    dominant strategies: fast -> "
        f"{result.dominance['bittorrent_dilemma']['fast']}, "
        f"slow -> {result.dominance['bittorrent_dilemma']['slow']}"
    )
    lines.append(
        f"    pure Nash equilibria: {result.equilibria['bittorrent_dilemma']}"
    )
    lines.append("")
    lines.append("(c) Birds payoffs (slow peer's opportunity cost accounted for)")
    lines.append(result.birds.describe())
    lines.append(
        "    dominant strategies: fast -> "
        f"{result.dominance['birds']['fast']}, slow -> {result.dominance['birds']['slow']}"
    )
    lines.append(f"    pure Nash equilibria: {result.equilibria['birds']}")
    return "\n".join(lines)
