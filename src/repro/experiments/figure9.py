"""Figure 9: competitive swarm encounters between client variants.

The three panels pit two client variants against each other in a real
(simulated) BitTorrent swarm, sweeping the population mix and reporting the
average download time of each variant with 95% confidence intervals over
repeated runs:

* (a) BitTorrent vs Loyal-When-needed (x-axis: fraction of Loyal-When-needed
  clients),
* (b) Birds vs BitTorrent (x-axis: fraction of Birds clients),
* (c) Birds vs Loyal-When-needed (x-axis: fraction of Loyal-When-needed
  clients).

The paper's qualitative findings: Loyal-When-needed never does worse than
BitTorrent and does significantly better when it is the majority; Birds does
as well as or better than BitTorrent at every mix; and Loyal-When-needed is
more robust than Birds when they compete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bittorrent.metrics import summarize_by_variant
from repro.bittorrent.swarm import SwarmSimulation
from repro.bittorrent.variants import (
    ClientVariant,
    birds_client,
    loyal_when_needed_client,
    reference_bittorrent,
)
from repro.experiments import base
from repro.stats.tables import format_table
from repro.utils.rng import derive_seed

__all__ = ["MixPoint", "PanelResult", "Figure9Result", "run", "run_panel", "render"]

#: Panel definitions: (panel key, sweep variant, opponent variant).  The
#: sweep variant's population fraction is the x-axis of the panel.
PANELS: Tuple[Tuple[str, str, str], ...] = (
    ("a", "Loyal-When-needed", "BitTorrent"),
    ("b", "Birds", "BitTorrent"),
    ("c", "Loyal-When-needed", "Birds"),
)

_VARIANTS = {
    "BitTorrent": reference_bittorrent,
    "Birds": birds_client,
    "Loyal-When-needed": loyal_when_needed_client,
}


@dataclass
class MixPoint:
    """One x-axis point of a panel: the mix fraction and both variants' times."""

    fraction: float
    mean_time: Dict[str, Optional[float]]
    ci_half_width: Dict[str, Optional[float]]
    completion: Dict[str, Optional[float]]


@dataclass
class PanelResult:
    """One panel of Figure 9."""

    panel: str
    sweep_variant: str
    opponent_variant: str
    points: List[MixPoint]


@dataclass
class Figure9Result:
    """All three panels."""

    panels: Dict[str, PanelResult]
    runs_per_point: int


def run_panel(
    sweep_variant: ClientVariant,
    opponent_variant: ClientVariant,
    panel: str,
    scale: str = "bench",
    seed: int = 0,
) -> PanelResult:
    """Sweep the population mix for one pair of client variants."""
    config = base.swarm_config(scale)
    runs = base.swarm_runs(scale)
    fractions = base.mix_fractions(scale)
    n = config.n_leechers

    points: List[MixPoint] = []
    for fraction in fractions:
        count_sweep = int(round(fraction * n))
        count_sweep = max(0, min(n, count_sweep))
        variants = [sweep_variant] * count_sweep + [opponent_variant] * (n - count_sweep)

        results = []
        for run_index in range(runs):
            run_seed = derive_seed(
                seed, f"figure9/{panel}/{fraction}/{run_index}"
            )
            results.append(SwarmSimulation(config, variants, seed=run_seed).run())

        summaries = summarize_by_variant(results)
        mean_time: Dict[str, Optional[float]] = {}
        ci: Dict[str, Optional[float]] = {}
        completion: Dict[str, Optional[float]] = {}
        for name in (sweep_variant.name, opponent_variant.name):
            if name in summaries:
                mean_time[name] = summaries[name].mean
                ci[name] = summaries[name].ci_half_width
            else:
                mean_time[name] = None
                ci[name] = None
            fractions_completed = [r.completion_fraction(name) for r in results
                                   if any(rec.variant == name for rec in r.records)]
            completion[name] = (
                sum(fractions_completed) / len(fractions_completed)
                if fractions_completed
                else None
            )
        points.append(
            MixPoint(
                fraction=fraction,
                mean_time=mean_time,
                ci_half_width=ci,
                completion=completion,
            )
        )
    return PanelResult(
        panel=panel,
        sweep_variant=sweep_variant.name,
        opponent_variant=opponent_variant.name,
        points=points,
    )


def run(scale: str = "bench", seed: int = 0) -> Figure9Result:
    """Run all three panels."""
    base.check_scale(scale)
    panels: Dict[str, PanelResult] = {}
    for panel, sweep_name, opponent_name in PANELS:
        panels[panel] = run_panel(
            _VARIANTS[sweep_name](),
            _VARIANTS[opponent_name](),
            panel,
            scale=scale,
            seed=seed,
        )
    return Figure9Result(panels=panels, runs_per_point=base.swarm_runs(scale))


def render(result: Figure9Result) -> str:
    """Plain-text rendering of all three panels."""
    blocks: List[str] = []
    for panel_key in sorted(result.panels):
        panel = result.panels[panel_key]
        rows = []
        for point in panel.points:
            def fmt(name: str) -> Tuple[str, str]:
                mean = point.mean_time.get(name)
                ci = point.ci_half_width.get(name)
                if mean is None:
                    return "-", "-"
                return f"{mean:.1f}", f"±{ci:.1f}" if ci is not None else "-"

            sweep_mean, sweep_ci = fmt(panel.sweep_variant)
            opp_mean, opp_ci = fmt(panel.opponent_variant)
            rows.append((f"{point.fraction:g}", sweep_mean, sweep_ci, opp_mean, opp_ci))
        blocks.append(
            format_table(
                (
                    f"frac {panel.sweep_variant}",
                    f"{panel.sweep_variant} avg DL time (s)",
                    "95% CI",
                    f"{panel.opponent_variant} avg DL time (s)",
                    "95% CI",
                ),
                rows,
                title=(
                    f"Figure 9({panel.panel}) — {panel.sweep_variant} vs "
                    f"{panel.opponent_variant} ({result.runs_per_point} runs per point)"
                ),
            )
        )
    return "\n\n".join(blocks)
