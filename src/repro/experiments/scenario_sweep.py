"""The scenario sweep: every named workload, side by side.

The design-space method only pays off when protocol variants are stressed
across *many* workloads; this driver fans the whole scenario registry (or a
chosen subset) through the cached, parallel
:class:`~repro.runner.runner.ExperimentRunner` — one flat batch of
deterministic jobs, so repeated invocations are served from the result
cache — and reports per-scenario population throughput, capacity
utilisation, churn pressure and the per-group download split that makes
adversarial scenarios (free-riders, colluders) legible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bittorrent.metrics import (
    censored_mean_download_time,
    group_cohort_breakdown,
    summarize_by_class,
)
from repro.bittorrent.swarm import SwarmResult
from repro.experiments import base
from repro.scenarios import all_scenarios, get_scenario, get_substrate
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import SimulationResult, using_engine
from repro.stats.tables import format_table

__all__ = [
    "ScenarioStats",
    "ScenarioSweepResult",
    "SwarmScenarioStats",
    "SwarmSweepResult",
    "profile_job",
    "repetitions_for",
    "run",
    "render",
    "run_swarm",
    "render_swarm",
]

#: Independent repetitions (distinct derived seeds) per scenario, by scale.
REPETITIONS = {"smoke": 2, "bench": 3, "paper": 10}


def repetitions_for(scale: str) -> int:
    """Number of repetitions the sweep runs at ``scale``."""
    base.check_scale(scale)
    return REPETITIONS[scale]


@dataclass
class ScenarioStats:
    """Aggregates over one scenario's repetitions."""

    spec: ScenarioSpec
    n_peers: int
    rounds: int
    repetitions: int
    mean_throughput: float
    #: Upload utilisation against the end-of-run capacity snapshot; under
    #: churn (capacities resample on replacement) this can exceed 1.
    mean_utilization: float
    churn_per_round: float
    group_mean_download: Dict[str, float]
    #: Mean active population at the end of the run (== ``n_peers`` for
    #: fixed-population scenarios; variable scenarios grow or shrink).
    mean_final_population: float = 0.0
    #: Per-cohort download per peer per measured round present — the
    #: normalisation that keeps PRA measures comparable across varying N.
    cohort_download_per_round: Dict[str, float] = field(default_factory=dict)
    #: Machine-readable per-phase breakdown of one profiled repetition
    #: (:func:`repro.sim.profiling.phases_payload` shape); ``None`` unless
    #: the sweep ran with ``profile=True``.
    phase_profile: Optional[dict] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_variable_population(self) -> bool:
        return self.spec.arrival.is_variable


@dataclass
class ScenarioSweepResult:
    """Outcome of one scenario sweep."""

    scale: str
    seed: int
    stats: List[ScenarioStats]
    jobs_run: int

    def by_name(self) -> Dict[str, ScenarioStats]:
        return {s.name: s for s in self.stats}


def _aggregate(
    spec: ScenarioSpec, scale: str, results: Sequence[SimulationResult]
) -> ScenarioStats:
    config = results[0].config
    group_download: Dict[str, List[float]] = {}
    cohort_download: Dict[str, List[float]] = {}
    for result in results:
        for group, metrics in result.group_metrics().items():
            group_download.setdefault(group, []).append(metrics.mean_downloaded)
        for cohort, metrics in result.cohort_metrics().items():
            cohort_download.setdefault(cohort, []).append(
                metrics.downloaded_per_peer_round
            )
    return ScenarioStats(
        spec=spec,
        n_peers=config.n_peers,
        rounds=config.rounds,
        repetitions=len(results),
        mean_throughput=mean(r.throughput for r in results),
        mean_utilization=mean(r.utilization() for r in results),
        churn_per_round=mean(r.churn_events / r.rounds_executed for r in results),
        group_mean_download={
            group: mean(values) for group, values in sorted(group_download.items())
        },
        mean_final_population=mean(
            float(r.final_active_count) for r in results
        ),
        cohort_download_per_round={
            cohort: mean(values) for cohort, values in sorted(cohort_download.items())
        },
    )


def profile_job(job) -> dict:
    """One profiled, cache-bypassing run of ``job``; its phase payload.

    The sweep's aggregate numbers still come from the cached batch — the
    profiled repetition is an *extra* serial run (same config, same seed as
    the batch's first repetition), so profiling never perturbs cached
    results or their fingerprints.
    """
    from repro.sim.engine import profiled_simulation
    from repro.sim.profiling import phases_payload, profile_seconds_of

    simulation = profiled_simulation(
        job.config,
        list(job.behaviors),
        groups=list(job.groups) if job.groups is not None else None,
        seed=job.seed,
    )
    result = simulation.run()
    return phases_payload(
        profile_seconds_of(simulation), rounds=result.rounds_executed
    )


def run(
    scale: str = "bench",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    repetitions: Optional[int] = None,
    engine: Optional[str] = None,
    profile: bool = False,
) -> ScenarioSweepResult:
    """Run the scenario grid and aggregate per-scenario statistics.

    ``scenarios`` selects registry names (default: every registered
    scenario); ``repetitions`` overrides the per-scale default; ``engine``
    scopes a round-engine choice (``fast`` / ``reference`` / ``vec``) over
    exactly this sweep, workers included.  All jobs of the whole grid form
    one batch, so a parallel runner overlaps scenarios and a warm cache
    answers the entire sweep without simulating.  ``profile=True``
    additionally runs one profiled repetition per scenario (serially,
    bypassing the cache) and attaches its per-phase breakdown to each
    :class:`ScenarioStats`.
    """
    base.check_scale(scale)
    if scenarios is None:
        specs = all_scenarios()
    else:
        specs = [get_scenario(name) for name in scenarios]
    if repetitions is None:
        repetitions = repetitions_for(scale)

    batches = [spec.jobs(scale, master_seed=seed, repetitions=repetitions) for spec in specs]
    flat = [job for batch in batches for job in batch]
    with using_engine(engine):
        results = base.experiment_runner().run(flat)
        profiles = [profile_job(batch[0]) if profile else None for batch in batches]

    stats: List[ScenarioStats] = []
    cursor = 0
    for spec, batch, phase_profile in zip(specs, batches, profiles):
        chunk = results[cursor : cursor + len(batch)]
        cursor += len(batch)
        scenario_stats = _aggregate(spec, scale, chunk)
        scenario_stats.phase_profile = phase_profile
        stats.append(scenario_stats)
    return ScenarioSweepResult(
        scale=scale, seed=seed, stats=stats, jobs_run=len(flat)
    )


def render(result: ScenarioSweepResult) -> str:
    """Plain-text table of the sweep."""
    rows = []
    for stats in result.stats:
        groups = " ".join(
            f"{group}={download:.0f}"
            for group, download in stats.group_mean_download.items()
        )
        cohorts = " ".join(
            f"{cohort}={download:.1f}"
            for cohort, download in stats.cohort_download_per_round.items()
        )
        if stats.is_variable_population:
            population = f"{stats.n_peers}->{stats.mean_final_population:.0f}"
        else:
            population = str(stats.n_peers)
        rows.append(
            [
                stats.name,
                f"{population}x{stats.rounds}",
                stats.repetitions,
                stats.mean_throughput,
                stats.mean_utilization,
                stats.churn_per_round,
                groups,
                cohorts,
            ]
        )
    table = format_table(
        (
            "scenario",
            "peers x rounds",
            "reps",
            "throughput",
            "utilization",
            "churn/round",
            "mean download by group",
            "download/peer-round by cohort",
        ),
        rows,
        title=f"scenario sweep — {result.scale} scale, seed {result.seed}",
    )
    profiled = [s for s in result.stats if s.phase_profile is not None]
    if not profiled:
        return table
    from repro.sim.profiling import (
        aggregate_phases,
        payload_seconds,
        render_phases,
    )

    lines = [table, "", "phase breakdown (one profiled rep per scenario):"]
    for stats in profiled:
        profile = stats.phase_profile
        lines.append(f"  {stats.name} ({profile['rounds']} rounds):")
        lines.append(render_phases(payload_seconds(profile), indent="    "))
    if len(profiled) > 1:
        lines.append("  aggregate:")
        lines.append(
            render_phases(
                aggregate_phases(
                    payload_seconds(s.phase_profile) for s in profiled
                ),
                indent="    ",
            )
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------- #
# swarm substrate
# ---------------------------------------------------------------------- #
@dataclass
class SwarmScenarioStats:
    """Aggregates over one scenario's swarm-substrate repetitions."""

    spec: ScenarioSpec
    n_peers: int
    rounds: int
    ticks: int
    repetitions: int
    #: Share of all leechers (initial and arriving) that completed.
    mean_completion: float
    #: Mean download time with non-finishers censored at the horizon.
    censored_mean_time: float
    mean_arrivals: float
    mean_departures: float
    mean_peak_active: float
    #: Pooled completion fraction per behaviour group.
    group_completion: Dict[str, float] = field(default_factory=dict)
    #: Pooled completion fraction per capacity class (when declared).
    class_completion: Dict[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class SwarmSweepResult:
    """Outcome of one swarm-substrate scenario sweep."""

    scale: str
    seed: int
    stats: List[SwarmScenarioStats]
    jobs_run: int

    def by_name(self) -> Dict[str, SwarmScenarioStats]:
        return {s.name: s for s in self.stats}


def _aggregate_swarm(
    spec: ScenarioSpec, results: Sequence[SwarmResult]
) -> SwarmScenarioStats:
    config = results[0].config
    total_peers = sum(len(r.records) for r in results)
    completed = sum(
        1 for r in results for record in r.records if record.download_time is not None
    )
    # Collapse cohorts: report completion per group over all cohorts.
    by_group: Dict[str, List[Tuple[int, int]]] = {}
    for (group, _cohort), metrics in group_cohort_breakdown(results).items():
        by_group.setdefault(group, []).append((metrics.completed, metrics.peers))
    group_completion = {
        group: sum(c for c, _p in pairs) / sum(p for _c, p in pairs)
        for group, pairs in sorted(by_group.items())
        if sum(p for _c, p in pairs)
    }
    class_completion = {
        cls: metrics.completion_fraction
        for cls, metrics in sorted(summarize_by_class(results).items())
        if cls != "unclassed" and metrics.peers
    }
    return SwarmScenarioStats(
        spec=spec,
        n_peers=config.n_leechers,
        rounds=spec.rounds,
        ticks=config.max_ticks,
        repetitions=len(results),
        mean_completion=completed / total_peers if total_peers else 0.0,
        censored_mean_time=censored_mean_download_time(results),
        mean_arrivals=mean(float(r.arrivals) for r in results),
        mean_departures=mean(float(r.departures) for r in results),
        mean_peak_active=mean(float(r.peak_active) for r in results),
        group_completion=group_completion,
        class_completion=class_completion,
    )


def run_swarm(
    scale: str = "bench",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    repetitions: Optional[int] = None,
) -> SwarmSweepResult:
    """Run the scenario grid on the packet-level swarm substrate.

    Same batching discipline as :func:`run` — the swarm jobs flow through
    the same cached, parallel experiment runner (their fingerprints carry a
    ``substrate`` discriminator, so the two substrates share a cache
    directory without collisions) — but the aggregates are swarm-native:
    completion fractions and censored download times instead of
    round-engine throughput.
    """
    base.check_scale(scale)
    if scenarios is None:
        specs = all_scenarios()
    else:
        specs = [get_scenario(name) for name in scenarios]
    if repetitions is None:
        repetitions = repetitions_for(scale)

    substrate = get_substrate("swarm")
    batches = [
        substrate.jobs(spec, scale, master_seed=seed, repetitions=repetitions)
        for spec in specs
    ]
    flat = [job for batch in batches for job in batch]
    results = base.experiment_runner().run(flat)

    stats: List[SwarmScenarioStats] = []
    cursor = 0
    for spec, batch in zip(specs, batches):
        chunk = results[cursor : cursor + len(batch)]
        cursor += len(batch)
        stats.append(_aggregate_swarm(spec, chunk))
    return SwarmSweepResult(scale=scale, seed=seed, stats=stats, jobs_run=len(flat))


def render_swarm(result: SwarmSweepResult) -> str:
    """Plain-text table of the swarm-substrate sweep."""
    rows = []
    for stats in result.stats:
        groups = " ".join(
            f"{group}={fraction:.2f}"
            for group, fraction in stats.group_completion.items()
        )
        classes = " ".join(
            f"{cls}={fraction:.2f}"
            for cls, fraction in stats.class_completion.items()
        )
        rows.append(
            [
                stats.name,
                f"{stats.n_peers}x{stats.rounds}",
                stats.repetitions,
                stats.mean_completion,
                stats.censored_mean_time,
                f"{stats.mean_arrivals:.1f}/{stats.mean_departures:.1f}",
                stats.mean_peak_active,
                (groups + (" | " + classes if classes else "")).strip(),
            ]
        )
    return format_table(
        (
            "scenario",
            "peers x rounds",
            "reps",
            "completion",
            "censored time",
            "arrivals/departures",
            "peak active",
            "completion by group | class",
        ),
        rows,
        title=f"swarm scenario sweep — {result.scale} scale, seed {result.seed}",
    )
