"""The §4.3.2 consistency check: 50/50 versus 90/10 robustness splits.

The paper hypothesises that a protocol robust against an invader holding 50%
of the population is also robust against small invading populations, and
verifies this by re-running the robustness tournament with a 90/10 split,
finding a Pearson correlation of 0.97 between the two sets of robustness
values.  This driver repeats that check on a protocol sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.pra import robustness_tournament
from repro.core.space import DesignSpace
from repro.experiments import base
from repro.stats.correlation import pearson_correlation
from repro.stats.tables import format_table

__all__ = ["SplitCheckResult", "run", "render"]


@dataclass
class SplitCheckResult:
    """Robustness under the two splits plus their correlation."""

    robustness_50: Dict[str, float]
    robustness_90: Dict[str, float]
    pearson_r: float
    n_protocols: int


def run(scale: str = "bench", seed: int = 0, sample_size: int = None) -> SplitCheckResult:
    """Run both robustness tournaments on a protocol sample and correlate them."""
    base.check_scale(scale)
    if sample_size is None:
        # The split check repeats the whole tournament, so use a smaller
        # sample than the main sweep at sub-paper scales.
        sample_size = {"smoke": 8, "bench": 16, "paper": 3270}[scale]
    config = base.pra_config(scale, seed=seed)
    space = DesignSpace.default()
    if sample_size >= len(space):
        protocols = space.protocols()
    else:
        protocols = space.sample(
            sample_size, seed=seed, method="stratified", include=base.named_protocols()
        )

    outcome_50 = robustness_tournament(protocols, config, split=0.5)
    outcome_90 = robustness_tournament(protocols, config, split=0.9)
    keys = [p.key for p in protocols]
    r = pearson_correlation(
        [outcome_50.scores[k] for k in keys], [outcome_90.scores[k] for k in keys]
    )
    return SplitCheckResult(
        robustness_50=dict(outcome_50.scores),
        robustness_90=dict(outcome_90.scores),
        pearson_r=r,
        n_protocols=len(protocols),
    )


def render(result: SplitCheckResult, max_rows: int = 15) -> str:
    """Plain-text comparison of the two robustness measures."""
    keys = sorted(
        result.robustness_50, key=lambda k: result.robustness_50[k], reverse=True
    )[:max_rows]
    table = format_table(
        ("protocol", "robustness (50/50)", "robustness (90/10)"),
        [(k, result.robustness_50[k], result.robustness_90[k]) for k in keys],
        title="§4.3.2 — robustness under 50/50 vs 90/10 population splits",
    )
    return (
        table
        + f"\nPearson correlation over {result.n_protocols} protocols: {result.pearson_r:.3f}"
    )
