"""The robustness-atlas experiment: map the design space across workloads.

This driver is the experiment-registry face of :mod:`repro.atlas`: it runs
a protocol × scenario grid through the cached, parallel experiment runner
and renders the protocol-ranked robustness table plus the score and
per-group PRA heat maps.  The default grid sweeps the micro protocol axes
of :data:`repro.atlas.grid.DEFAULT_AXES` over the adversarial scenario
column set — small enough for ``repro all --scale smoke``, while the CLI
``atlas`` command exposes the full declaration surface
(``--protocol-axes``, ``--scenarios``, ``--reps``, ``--csv``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.atlas.grid import AtlasResult, AtlasSpec, run_atlas
from repro.atlas.report import AtlasReport, build_report, heatmap_csv, render_report
from repro.bittorrent.metrics import censored_mean_download_time
from repro.experiments import base
from repro.runner.runner import RunnerStats
from repro.scenarios import get_scenario, get_substrate
from repro.sim.engine import using_engine
from repro.stats.tables import format_table

__all__ = [
    "AtlasOutcome",
    "SwarmAtlasOutcome",
    "repetitions_for",
    "make_spec",
    "run",
    "render",
    "run_swarm",
    "render_swarm",
]

#: Independent repetitions (distinct derived seeds) per cell, by scale.
REPETITIONS = {"smoke": 2, "bench": 3, "paper": 10}


def repetitions_for(scale: str) -> int:
    """Number of repetitions each grid cell runs at ``scale``."""
    base.check_scale(scale)
    return REPETITIONS[scale]


@dataclass
class AtlasOutcome:
    """One atlas invocation: the declared grid, raw results and report."""

    scale: str
    seed: int
    spec: AtlasSpec
    result: AtlasResult
    report: AtlasReport
    #: ``"protocol/scenario" -> phase payload`` of one profiled repetition
    #: per grid cell (:func:`repro.sim.profiling.phases_payload` shape);
    #: ``None`` unless the atlas ran with ``profile=True``.
    phase_profiles: Optional[Dict[str, dict]] = None

    def csv(self) -> str:
        """The long-form CSV heat map (CI artifact format)."""
        return heatmap_csv(self.report)


def make_spec(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    axes: Optional[Mapping[str, Tuple[object, ...]]] = None,
    repetitions: Optional[int] = None,
) -> AtlasSpec:
    """Build and validate the grid declaration without running anything.

    Raises ``ValueError`` for a malformed declaration and ``KeyError`` for
    unregistered scenario names — every input problem surfaces here, so
    callers (the CLI) can report them as usage errors and let the run
    itself propagate genuine failures with their tracebacks.
    """
    base.check_scale(scale)
    kwargs = {}
    if axes is not None:
        # AtlasSpec normalises mappings and nested sequences itself.
        kwargs["axes"] = axes
    if scenarios is not None:
        kwargs["scenarios"] = tuple(scenarios)
    spec = AtlasSpec(
        scale=scale,
        master_seed=seed,
        repetitions=repetitions if repetitions is not None else repetitions_for(scale),
        **kwargs,
    )
    for name in spec.scenarios:
        get_scenario(name)
    return spec


def run(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    axes: Optional[Mapping[str, Tuple[object, ...]]] = None,
    repetitions: Optional[int] = None,
    spec: Optional[AtlasSpec] = None,
    engine: Optional[str] = None,
    runner=None,
    profile: bool = False,
) -> AtlasOutcome:
    """Execute the atlas grid and condense it into the report.

    ``scenarios``/``axes``/``repetitions`` default to the micro grid
    (:data:`~repro.atlas.grid.DEFAULT_AXES` ×
    :data:`~repro.atlas.grid.DEFAULT_SCENARIOS` × per-scale repetitions);
    a prebuilt ``spec`` (see :func:`make_spec`) overrides them all;
    ``engine`` scopes a round-engine choice (``fast`` / ``reference`` /
    ``vec``) over exactly this grid, workers included.  All jobs form one
    flat batch on the experiment runner — the process default, or an
    explicit ``runner`` (e.g. a :class:`~repro.service.runner.ServiceRunner`
    fanning the grid out to persistent service workers) — so a parallel
    runner overlaps cells and a warm cache answers unchanged cells without
    simulating.  ``profile=True`` additionally runs one profiled repetition
    per grid cell (serially, bypassing the cache) and attaches the
    per-cell phase payloads as ``phase_profiles``.
    """
    if spec is None:
        spec = make_spec(
            scale=scale,
            seed=seed,
            scenarios=scenarios,
            axes=axes,
            repetitions=repetitions,
        )
    phase_profiles: Optional[Dict[str, dict]] = None
    with using_engine(engine):
        result = run_atlas(
            spec, runner=runner if runner is not None else base.experiment_runner()
        )
        if profile:
            from repro.experiments.scenario_sweep import profile_job

            phase_profiles = {}
            for cell in spec.cells():
                label, scenario = cell.key
                job = spec.cell_spec(cell).jobs(
                    spec.scale, master_seed=spec.master_seed, repetitions=1
                )[0]
                phase_profiles[f"{label}/{scenario}"] = profile_job(job)
    return AtlasOutcome(
        scale=spec.scale,
        seed=spec.master_seed,
        spec=spec,
        result=result,
        report=build_report(result),
        phase_profiles=phase_profiles,
    )


# ---------------------------------------------------------------------- #
# swarm substrate
# ---------------------------------------------------------------------- #
@dataclass
class SwarmAtlasOutcome:
    """One swarm-substrate atlas invocation.

    ``scores`` maps (protocol label, scenario) to the censored mean download
    time pooled over the cell's repetitions (lower is better);
    ``relative`` rescales each scenario column against its best protocol
    (1.0 = the column winner), which is the within-scenario *relative*
    standing the cross-substrate comparison is about.
    """

    scale: str
    seed: int
    spec: AtlasSpec
    scores: Dict[Tuple[str, str], float]
    relative: Dict[Tuple[str, str], float]
    jobs_total: int
    stats: RunnerStats

    def protocol_labels(self) -> List[str]:
        return [protocol.label for protocol in self.spec.protocols()]

    def mean_relative(self, label: str) -> float:
        """A protocol's relative standing averaged over the scenario columns."""
        values = [self.relative[(label, name)] for name in self.spec.scenarios]
        return sum(values) / len(values)

    def csv(self) -> str:
        """Long-form CSV of the swarm grid (CI artifact format)."""
        lines = ["scenario,protocol,censored_mean_time,relative_score"]
        for name in self.spec.scenarios:
            for label in self.protocol_labels():
                score = self.scores[(label, name)]
                rel = self.relative[(label, name)]
                lines.append(f"{name},{label},{score:.4f},{rel:.4f}")
        return "\n".join(lines) + "\n"


def run_swarm(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    axes: Optional[Mapping[str, Tuple[object, ...]]] = None,
    repetitions: Optional[int] = None,
    spec: Optional[AtlasSpec] = None,
    runner=None,
) -> SwarmAtlasOutcome:
    """Execute the atlas grid on the packet-level swarm substrate.

    The grid declaration is the same :class:`AtlasSpec` — each cell injects
    its protocol as the scenario population's default behaviour, exactly as
    the round-engine atlas does — but every cell compiles through
    :class:`~repro.scenarios.substrate.SwarmSubstrate` and is scored by the
    censored mean download time (non-finishers count at the horizon).
    ``runner`` overrides the process-default experiment runner (the service
    front door passes a :class:`~repro.service.runner.ServiceRunner`).
    """
    if spec is None:
        spec = make_spec(
            scale=scale,
            seed=seed,
            scenarios=scenarios,
            axes=axes,
            repetitions=repetitions,
        )
    substrate = get_substrate("swarm")
    if runner is None:
        runner = base.experiment_runner()
    compiled = [
        (
            cell,
            substrate.jobs(
                spec.cell_spec(cell),
                spec.scale,
                master_seed=spec.master_seed,
                repetitions=spec.repetitions,
            ),
        )
        for cell in spec.cells()
    ]
    flat = [job for _cell, batch in compiled for job in batch]
    before = runner.stats()
    results = runner.run(flat)
    stats = runner.stats() - before

    scores: Dict[Tuple[str, str], float] = {}
    cursor = 0
    for cell, batch in compiled:
        chunk = results[cursor : cursor + len(batch)]
        cursor += len(batch)
        scores[cell.key] = censored_mean_download_time(chunk)

    relative: Dict[Tuple[str, str], float] = {}
    labels = [protocol.label for protocol in spec.protocols()]
    for name in spec.scenarios:
        best = min(scores[(label, name)] for label in labels)
        for label in labels:
            relative[(label, name)] = best / scores[(label, name)]
    return SwarmAtlasOutcome(
        scale=spec.scale,
        seed=spec.master_seed,
        spec=spec,
        scores=scores,
        relative=relative,
        jobs_total=len(flat),
        stats=stats,
    )


def render_swarm(outcome: SwarmAtlasOutcome) -> str:
    """Protocol ranking table of the swarm-substrate atlas."""
    spec = outcome.spec
    labels = sorted(
        outcome.protocol_labels(), key=outcome.mean_relative, reverse=True
    )
    rows = []
    for label in labels:
        rows.append(
            [label, outcome.mean_relative(label)]
            + [outcome.scores[(label, name)] for name in spec.scenarios]
        )
    table = format_table(
        ("protocol", "mean rel") + tuple(spec.scenarios),
        rows,
        title=(
            f"swarm robustness atlas — censored mean download time (ticks), "
            f"{outcome.scale} scale, seed {outcome.seed}"
        ),
    )
    stats = outcome.stats
    return "\n".join(
        [
            table,
            "",
            f"grid: {outcome.jobs_total} jobs, {stats.executed} simulated, "
            f"{stats.cache_hits} cached, {stats.deduplicated} duplicate",
        ]
    )


def render(outcome: AtlasOutcome) -> str:
    """Plain-text report plus the grid's execution accounting."""
    result = outcome.result
    stats = result.stats
    lines = [
        f"robustness atlas — {len(outcome.report.protocols)} protocols x "
        f"{len(outcome.report.scenarios)} scenarios x "
        f"{outcome.spec.repetitions} reps ({outcome.scale} scale, seed "
        f"{outcome.seed}, grid {outcome.spec.fingerprint()[:12]})",
        "",
        render_report(outcome.report),
        "",
        f"grid: {result.jobs_total} jobs, {stats.executed} simulated, "
        f"{stats.cache_hits} cached, {stats.deduplicated} duplicate",
    ]
    if outcome.phase_profiles:
        from repro.sim.profiling import (
            aggregate_phases,
            payload_seconds,
            render_phases,
        )

        lines.extend(["", "phase breakdown (one profiled rep per cell):"])
        for key, profile in outcome.phase_profiles.items():
            total = sum(profile["phases"].values())
            top = max(profile["phases"], key=profile["phases"].get)
            share = profile["phases"][top] / total if total > 0 else 0.0
            lines.append(
                f"  {key}: {total:.4f}s over {profile['rounds']} rounds "
                f"(top: {top} {share:.0%})"
            )
        lines.append("  aggregate:")
        lines.append(
            render_phases(
                aggregate_phases(
                    payload_seconds(p) for p in outcome.phase_profiles.values()
                ),
                indent="    ",
            )
        )
    return "\n".join(lines)
