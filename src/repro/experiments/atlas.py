"""The robustness-atlas experiment: map the design space across workloads.

This driver is the experiment-registry face of :mod:`repro.atlas`: it runs
a protocol × scenario grid through the cached, parallel experiment runner
and renders the protocol-ranked robustness table plus the score and
per-group PRA heat maps.  The default grid sweeps the micro protocol axes
of :data:`repro.atlas.grid.DEFAULT_AXES` over the adversarial scenario
column set — small enough for ``repro all --scale smoke``, while the CLI
``atlas`` command exposes the full declaration surface
(``--protocol-axes``, ``--scenarios``, ``--reps``, ``--csv``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

from repro.atlas.grid import AtlasResult, AtlasSpec, run_atlas
from repro.atlas.report import AtlasReport, build_report, heatmap_csv, render_report
from repro.experiments import base
from repro.scenarios import get_scenario

__all__ = ["AtlasOutcome", "repetitions_for", "make_spec", "run", "render"]

#: Independent repetitions (distinct derived seeds) per cell, by scale.
REPETITIONS = {"smoke": 2, "bench": 3, "paper": 10}


def repetitions_for(scale: str) -> int:
    """Number of repetitions each grid cell runs at ``scale``."""
    base.check_scale(scale)
    return REPETITIONS[scale]


@dataclass
class AtlasOutcome:
    """One atlas invocation: the declared grid, raw results and report."""

    scale: str
    seed: int
    spec: AtlasSpec
    result: AtlasResult
    report: AtlasReport

    def csv(self) -> str:
        """The long-form CSV heat map (CI artifact format)."""
        return heatmap_csv(self.report)


def make_spec(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    axes: Optional[Mapping[str, Tuple[object, ...]]] = None,
    repetitions: Optional[int] = None,
) -> AtlasSpec:
    """Build and validate the grid declaration without running anything.

    Raises ``ValueError`` for a malformed declaration and ``KeyError`` for
    unregistered scenario names — every input problem surfaces here, so
    callers (the CLI) can report them as usage errors and let the run
    itself propagate genuine failures with their tracebacks.
    """
    base.check_scale(scale)
    kwargs = {}
    if axes is not None:
        # AtlasSpec normalises mappings and nested sequences itself.
        kwargs["axes"] = axes
    if scenarios is not None:
        kwargs["scenarios"] = tuple(scenarios)
    spec = AtlasSpec(
        scale=scale,
        master_seed=seed,
        repetitions=repetitions if repetitions is not None else repetitions_for(scale),
        **kwargs,
    )
    for name in spec.scenarios:
        get_scenario(name)
    return spec


def run(
    scale: str = "smoke",
    seed: int = 0,
    scenarios: Optional[Sequence[str]] = None,
    axes: Optional[Mapping[str, Tuple[object, ...]]] = None,
    repetitions: Optional[int] = None,
    spec: Optional[AtlasSpec] = None,
) -> AtlasOutcome:
    """Execute the atlas grid and condense it into the report.

    ``scenarios``/``axes``/``repetitions`` default to the micro grid
    (:data:`~repro.atlas.grid.DEFAULT_AXES` ×
    :data:`~repro.atlas.grid.DEFAULT_SCENARIOS` × per-scale repetitions);
    a prebuilt ``spec`` (see :func:`make_spec`) overrides them all.  All
    jobs form one flat batch on the experiment runner, so a parallel
    runner overlaps cells and a warm cache answers unchanged cells without
    simulating.
    """
    if spec is None:
        spec = make_spec(
            scale=scale,
            seed=seed,
            scenarios=scenarios,
            axes=axes,
            repetitions=repetitions,
        )
    result = run_atlas(spec, runner=base.experiment_runner())
    return AtlasOutcome(
        scale=spec.scale,
        seed=spec.master_seed,
        spec=spec,
        result=result,
        report=build_report(result),
    )


def render(outcome: AtlasOutcome) -> str:
    """Plain-text report plus the grid's execution accounting."""
    result = outcome.result
    stats = result.stats
    lines = [
        f"robustness atlas — {len(outcome.report.protocols)} protocols x "
        f"{len(outcome.report.scenarios)} scenarios x "
        f"{outcome.spec.repetitions} reps ({outcome.scale} scale, seed "
        f"{outcome.seed}, grid {outcome.spec.fingerprint()[:12]})",
        "",
        render_report(outcome.report),
        "",
        f"grid: {result.jobs_total} jobs, {stats.executed} simulated, "
        f"{stats.cache_hits} cached, {stats.deduplicated} duplicate",
    ]
    return "\n".join(lines)
