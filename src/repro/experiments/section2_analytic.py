"""Section 2.2 / Appendix: the analytical expected-game-win model.

This driver evaluates the analytical model for a concrete multi-class swarm:
for every bandwidth class it tabulates the expected reciprocation and free
game wins of a BitTorrent peer and of a Birds peer in homogeneous swarms
(Sections 2.2-2.3), and it evaluates the Appendix deviation analysis — a
single Birds deviant in a BitTorrent swarm and a single BitTorrent deviant in
a Birds swarm — reporting the per-class advantage and the resulting Nash
verdicts (BitTorrent is not a Nash equilibrium; Birds is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.gametheory.analytic import DeviationAnalysis, SwarmModel
from repro.gametheory.classes import ClassPopulation, piatek_classes
from repro.stats.tables import format_table

__all__ = ["Section2Result", "run", "render"]


@dataclass
class Section2Result:
    """Expected-win tables and deviation verdicts for one swarm model."""

    population_description: str
    regular_unchoke_slots: int
    homogeneous_rows: List[Dict[str, object]]
    deviation_rows: List[Dict[str, object]]
    bittorrent_is_nash: bool
    birds_is_nash: bool


def run(
    population: ClassPopulation = None,
    regular_unchoke_slots: int = 4,
    deviation_class_index: int = 0,
) -> Section2Result:
    """Evaluate the analytical model.

    Parameters
    ----------
    population:
        The class structure; defaults to the three-class Piatek-style
        population of 50 peers.
    regular_unchoke_slots:
        ``Ur``, the number of regular unchoke slots.
    deviation_class_index:
        The class hosting the single deviant in the Appendix analysis.
    """
    if population is None:
        population = piatek_classes(50)
    model = SwarmModel(population, regular_unchoke_slots=regular_unchoke_slots)

    homogeneous_rows: List[Dict[str, object]] = []
    for index, cls in enumerate(population):
        bt = model.bittorrent_expected_wins(index)
        birds = model.birds_expected_wins(index)
        homogeneous_rows.append(
            {
                "class": cls.name,
                "NA": population.peers_above(index),
                "NB": population.peers_below(index),
                "NC": population.peers_same(index),
                "bt_reciprocation": bt.total_reciprocation,
                "bt_free": bt.total_free,
                "bt_total": bt.total,
                "birds_reciprocation": birds.total_reciprocation,
                "birds_free": birds.total_free,
                "birds_total": birds.total,
            }
        )

    deviations: List[DeviationAnalysis] = [
        model.birds_deviant_in_bittorrent_swarm(deviation_class_index),
        model.bittorrent_deviant_in_birds_swarm(deviation_class_index),
    ]
    deviation_rows = [
        {
            "resident": d.resident_protocol,
            "deviant": d.deviant_protocol,
            "class_index": d.class_index,
            "deviant_total_wins": d.deviant_wins.total,
            "resident_total_wins": d.resident_wins.total,
            "advantage": d.advantage,
            "deviation_profitable": d.deviation_profitable,
        }
        for d in deviations
    ]

    return Section2Result(
        population_description=repr(population),
        regular_unchoke_slots=regular_unchoke_slots,
        homogeneous_rows=homogeneous_rows,
        deviation_rows=deviation_rows,
        bittorrent_is_nash=not deviations[0].deviation_profitable,
        birds_is_nash=not deviations[1].deviation_profitable,
    )


def render(result: Section2Result) -> str:
    """Plain-text tables mirroring the Section 2.2 / Appendix derivations."""
    lines: List[str] = []
    lines.append(
        f"Section 2.2 analytical model — {result.population_description}, "
        f"Ur = {result.regular_unchoke_slots}"
    )
    homogeneous = format_table(
        (
            "class", "NA", "NB", "NC",
            "BT recip", "BT free", "BT total",
            "Birds recip", "Birds free", "Birds total",
        ),
        [
            (
                row["class"], row["NA"], row["NB"], row["NC"],
                row["bt_reciprocation"], row["bt_free"], row["bt_total"],
                row["birds_reciprocation"], row["birds_free"], row["birds_total"],
            )
            for row in result.homogeneous_rows
        ],
        title="Expected game wins per round (homogeneous swarms)",
    )
    lines.append(homogeneous)
    lines.append("")
    deviations = format_table(
        ("resident swarm", "deviant", "deviant wins", "resident wins", "advantage", "profitable"),
        [
            (
                row["resident"], row["deviant"],
                row["deviant_total_wins"], row["resident_total_wins"],
                row["advantage"], row["deviation_profitable"],
            )
            for row in result.deviation_rows
        ],
        title="Appendix deviation analysis (single deviant)",
    )
    lines.append(deviations)
    lines.append("")
    lines.append(f"BitTorrent is a Nash equilibrium: {result.bittorrent_is_nash}")
    lines.append(f"Birds is a Nash equilibrium:      {result.birds_is_nash}")
    return "\n".join(lines)
