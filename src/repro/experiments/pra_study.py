"""The shared PRA sweep behind Figures 2-8 and Table 3.

The paper runs a single gigantic sweep (performance runs plus the robustness
and aggressiveness tournaments over all 3270 protocols) and then reads every
Section 4.4 figure off the resulting per-protocol scores.  This module does
the same: :func:`shared_pra_study` builds the protocol set for the requested
scale (the full space at ``"paper"`` scale, a dimension-stratified sample
otherwise — always including the named protocols the paper tracks), runs the
study once, and returns the cached result on subsequent calls.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.results import PRAStudyResult
from repro.core.space import DesignSpace
from repro.core.study import PRAStudy
from repro.experiments import base

__all__ = ["shared_pra_study", "build_study"]


def build_study(
    scale: str = "bench",
    seed: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
) -> PRAStudy:
    """Construct (without running) the PRA study for a scale."""
    base.check_scale(scale)
    space = DesignSpace.default()
    config = base.pra_config(scale, seed=seed)
    sample_size = base.pra_sample_size(scale)
    if sample_size >= len(space):
        protocols = space.protocols()
    else:
        protocols = space.sample(
            sample_size, seed=seed, method="stratified", include=base.named_protocols()
        )
    return PRAStudy(protocols, config, cache_dir=cache_dir)


def shared_pra_study(
    scale: str = "bench",
    seed: int = 0,
    cache_dir: Optional[Union[str, Path]] = None,
) -> PRAStudyResult:
    """Run (or fetch from cache) the PRA sweep shared by Figures 2-8 and Table 3."""
    return build_study(scale, seed=seed, cache_dir=cache_dir).run()
