"""Table 3: multiple linear regression of the PRA measures on the design dimensions.

The paper regresses each PRA measure (Performance, Robustness,
Aggressiveness) on:

* the standardised logarithms of the numeric covariates ``k`` (partners) and
  ``h`` (strangers), and
* dummy variables for the categorical actualizations, relative to the
  reference levels B1 (Periodic), C1 (TFT), I1 (Sort Fastest) and R1
  (Equal Split),

reporting the estimate, the t-value and significance at the 0.001 level for
every term, plus the adjusted R² of each fit.  This driver reproduces that
table from the shared PRA sweep.  Because ``k`` and ``h`` include zero in the
swept space, ``log(x + 1)`` is used before standardisation (the paper does
not state how it handles the zero-partner/zero-stranger protocols; this is
the natural monotone choice and is noted in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.regression import DesignMatrix, RegressionResult, fit_ols, standardize
from repro.stats.tables import format_table

__all__ = ["Table3Result", "run", "render", "from_study", "build_design_matrix"]

#: The three response variables, in the paper's column order.
MEASURES = ("performance", "robustness", "aggressiveness")

#: Dummy levels per categorical dimension (first entry = reference level).
CATEGORICAL_LEVELS = {
    "stranger": ["B1", "B0", "B2", "B3"],
    "candidate": ["C1", "C2"],
    "ranking": ["I1", "I2", "I3", "I4", "I5", "I6"],
    "allocation": ["R1", "R2", "R3"],
}


@dataclass
class Table3Result:
    """The three regression fits keyed by PRA measure."""

    fits: Dict[str, RegressionResult]
    n_protocols: int

    def adjusted_r_squared(self) -> Dict[str, float]:
        """Adjusted R² per measure (the paper reports 0.68 / 0.52 / 0.61)."""
        return {measure: fit.adjusted_r_squared for measure, fit in self.fits.items()}

    def coefficient(self, measure: str, term: str) -> float:
        """Estimate of one term in one measure's fit."""
        return self.fits[measure].term(term).estimate


def build_design_matrix(study: PRAStudyResult) -> DesignMatrix:
    """Assemble the Table 3 design matrix from a study's protocol coordinates."""
    rows = study.rows()
    n = len(rows)
    design = DesignMatrix(n)

    k_values = np.array([float(row["k"]) for row in rows])
    h_values = np.array([float(row["h"]) for row in rows])
    design.add_numeric("log(k)", standardize(np.log(k_values + 1.0)))
    design.add_numeric("log(h)", standardize(np.log(h_values + 1.0)))

    for dimension, levels in CATEGORICAL_LEVELS.items():
        observed = [str(row[dimension]) for row in rows]
        present_levels = [lvl for lvl in levels if lvl in set(observed) or lvl == levels[0]]
        if len(present_levels) < 2:
            continue
        design.add_categorical(
            dimension, observed, reference=levels[0], levels=present_levels
        )
    return design


def from_study(study: PRAStudyResult) -> Table3Result:
    """Fit the three regressions from an existing PRA study."""
    design = build_design_matrix(study)
    rows = study.rows()
    fits: Dict[str, RegressionResult] = {}
    for measure in MEASURES:
        response = [float(row[measure]) for row in rows]
        fits[measure] = fit_ols(design, response)
    return Table3Result(fits=fits, n_protocols=len(rows))


def run(scale: str = "bench", seed: int = 0) -> Table3Result:
    """Run (or reuse) the shared PRA sweep and fit the Table 3 regressions."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: Table3Result, alpha: float = 0.001) -> str:
    """Render the three regressions side by side, as in Table 3."""
    term_names = result.fits[MEASURES[0]].term_names
    headers = ["variable"]
    for measure in MEASURES:
        headers += [f"{measure[:4]}. est", "t", "sig"]

    rows: List[List[object]] = []
    for name in term_names:
        row: List[object] = [name]
        for measure in MEASURES:
            term = result.fits[measure].term(name)
            row += [term.estimate, term.t_value, "OK" if term.is_significant(alpha) else "-"]
        rows.append(row)

    adj = result.adjusted_r_squared()
    title = (
        "Table 3 — multiple linear regression of PRA measures "
        f"(n = {result.n_protocols}; adj. R²: "
        + ", ".join(f"{m} {adj[m]:.2f}" for m in MEASURES)
        + ")"
    )
    return format_table(headers, rows, title=title)
