"""Shared experiment scaffolding: scales, configurations and named protocols.

The paper's full evaluation is a cluster-scale job; the experiment drivers
therefore support three *scales* that trade fidelity for wall-clock time
while keeping the code paths identical:

========  ====================================================================
smoke      seconds — unit tests (tiny swarms, few protocols, one repetition)
bench      minutes — the pytest-benchmark harness and EXPERIMENTS.md numbers
paper      the paper's own scale (full 3270-protocol space, 50 peers,
           500 rounds, 100/10 repetitions; 50 leechers and >= 10 swarm runs)
========  ====================================================================

Every scale knob lives here so EXPERIMENTS.md can point at a single place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from pathlib import Path
from typing import Optional, Union

from repro.bittorrent.config import SwarmConfig
from repro.core.pra import PRAConfig
from repro.core.protocol import (
    Protocol,
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    random_ranking_protocol,
    sort_s,
)
from repro.runner import ExperimentRunner, configure_default_runner, get_default_runner
from repro.sim.config import SimulationConfig

__all__ = [
    "SCALES",
    "check_scale",
    "pra_config",
    "pra_sample_size",
    "named_protocols",
    "swarm_config",
    "swarm_runs",
    "mix_fractions",
    "experiment_runner",
    "configure_runner",
]

SCALES = ("smoke", "bench", "paper")


# ---------------------------------------------------------------------- #
# experiment execution (parallelism / result caching)
# ---------------------------------------------------------------------- #
def experiment_runner() -> ExperimentRunner:
    """The runner every experiment driver executes its simulations on.

    This is the process-wide default runner; it is serial and uncached
    unless configured via :func:`configure_runner`, the CLI's
    ``--jobs`` / ``--cache-dir`` flags, or the ``REPRO_JOBS`` /
    ``REPRO_CACHE_DIR`` environment variables.
    """
    return get_default_runner()


def configure_runner(
    jobs: int = 1, cache_dir: Optional[Union[str, Path]] = None
) -> ExperimentRunner:
    """Install the runner used by subsequent experiment invocations.

    ``jobs`` is the parallel worker count (``1`` serial, ``0`` all cores);
    ``cache_dir`` enables the content-addressed result cache.  Returns the
    installed runner so callers can inspect cache statistics afterwards.
    """
    return configure_default_runner(jobs=jobs, cache_dir=cache_dir)


def check_scale(scale: str) -> str:
    """Validate and return ``scale``."""
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


# ---------------------------------------------------------------------- #
# PRA sweep scaling (Figures 2-8, Table 3, churn / split checks)
# ---------------------------------------------------------------------- #
def pra_config(scale: str = "bench", seed: int = 0) -> PRAConfig:
    """The PRA configuration for a given scale."""
    check_scale(scale)
    if scale == "paper":
        return PRAConfig.paper(seed=seed)
    if scale == "bench":
        return PRAConfig(
            sim=SimulationConfig(n_peers=16, rounds=40),
            performance_runs=2,
            encounter_runs=1,
            seed=seed,
        )
    return PRAConfig.smoke(seed=seed)


def pra_sample_size(scale: str = "bench") -> int:
    """Number of protocols swept at a given scale (the paper sweeps all 3270)."""
    check_scale(scale)
    # The smoke sample must stay larger than the Table 3 regression's
    # parameter count (intercept + 2 numeric + up to 11 dummy columns).
    return {"smoke": 18, "bench": 36, "paper": 3270}[scale]


def named_protocols() -> List[Protocol]:
    """The named protocols whose ranks the paper reports; always included in samples."""
    return [
        bittorrent_reference(),
        birds_protocol(),
        loyal_when_needed(),
        sort_s(),
        random_ranking_protocol(),
    ]


# ---------------------------------------------------------------------- #
# swarm-experiment scaling (Figures 9 and 10)
# ---------------------------------------------------------------------- #
def swarm_config(scale: str = "bench") -> SwarmConfig:
    """The swarm configuration for a given scale."""
    check_scale(scale)
    if scale == "paper":
        return SwarmConfig.paper()
    if scale == "bench":
        # Keep the paper's swarm size and file but do fewer repetitions.
        return SwarmConfig.paper()
    return SwarmConfig.smoke()


def swarm_runs(scale: str = "bench") -> int:
    """Independent swarm runs per data point (the paper uses at least 10)."""
    check_scale(scale)
    return {"smoke": 1, "bench": 3, "paper": 10}[scale]


def mix_fractions(scale: str = "bench") -> List[float]:
    """Population-mix fractions swept in Figure 9."""
    check_scale(scale)
    if scale == "smoke":
        return [0.0, 0.5, 1.0]
    return [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
