"""Figure 3: Performance histograms for different numbers of partners.

For each performance interval the paper plots the relative frequency of every
``number of partners`` value (darker squares = higher frequency), observing
that the top-performing protocols maintain few partners.  This driver builds
the same matrix from the shared PRA sweep and summarises the partner counts
of the top-performing protocols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.results import PRAStudyResult
from repro.experiments.pra_study import shared_pra_study
from repro.stats.distribution import histogram2d_frequency
from repro.stats.tables import format_table

__all__ = ["PartnerHistogramResult", "run", "render", "from_study"]

#: The partner counts swept by the design space (0-9).
PARTNER_VALUES = list(range(10))


@dataclass
class PartnerHistogramResult:
    """The score-vs-partner-count frequency matrix of Figures 3 / 4."""

    measure: str
    score_bin_edges: List[float]
    partner_values: List[int]
    matrix: List[List[float]]
    top_protocol_partner_counts: List[int]
    mean_partners_top: float
    mean_partners_all: float


def _build(study: PRAStudyResult, measure: str, top_count: int = 15) -> PartnerHistogramResult:
    rows = study.rows()
    partners = [int(r["k"]) for r in rows]
    scores = [float(r[measure]) for r in rows]
    edges, values, matrix = histogram2d_frequency(
        partners, scores, PARTNER_VALUES, score_bins=10
    )
    ranked = sorted(rows, key=lambda r: float(r[measure]), reverse=True)
    top = ranked[: min(top_count, len(ranked))]
    top_partners = [int(r["k"]) for r in top]
    return PartnerHistogramResult(
        measure=measure,
        score_bin_edges=[float(x) for x in edges],
        partner_values=[int(v) for v in values],
        matrix=[[float(x) for x in row] for row in matrix],
        top_protocol_partner_counts=top_partners,
        mean_partners_top=float(np.mean(top_partners)) if top_partners else float("nan"),
        mean_partners_all=float(np.mean(partners)) if partners else float("nan"),
    )


def from_study(study: PRAStudyResult) -> PartnerHistogramResult:
    """Derive the Figure 3 matrix (performance vs partners) from a study."""
    return _build(study, "performance")


def run(scale: str = "bench", seed: int = 0) -> PartnerHistogramResult:
    """Run (or reuse) the shared PRA sweep and derive the Figure 3 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: PartnerHistogramResult) -> str:
    """Plain-text rendering of the frequency matrix (rows = score intervals)."""
    headers = ["interval"] + [f"k={k}" for k in result.partner_values]
    rows = []
    for i, row in enumerate(result.matrix):
        lo = result.score_bin_edges[i]
        hi = result.score_bin_edges[i + 1]
        rows.append([f"[{lo:.1f},{hi:.1f})"] + [f"{x:.2f}" for x in row])
    table = format_table(
        headers,
        rows,
        title=(
            f"Figure {'3' if result.measure == 'performance' else '4'} — "
            f"{result.measure} vs number of partners (relative frequency per interval)"
        ),
    )
    summary = (
        f"\nmean partners of top protocols by {result.measure}: "
        f"{result.mean_partners_top:.2f} (population mean {result.mean_partners_all:.2f})"
    )
    return table + summary
