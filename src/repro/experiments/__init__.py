"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every driver exposes a ``run(scale=..., seed=...)`` function returning a
result dataclass and a ``render(result)`` function producing the plain-text
rows/series corresponding to the paper's table or figure.  The ``scale``
argument selects the run budget:

* ``"smoke"`` — seconds; used by the unit tests,
* ``"bench"`` — minutes; used by the pytest-benchmark harness (the defaults
  recorded in EXPERIMENTS.md),
* ``"paper"`` — the full configuration of the paper (cluster-scale for the
  PRA sweep; hours to days on one machine).

Figures 2-8 and Table 3 all consume the same PRA sweep, which is computed
once per process (and optionally persisted) by
:func:`repro.experiments.pra_study.shared_pra_study`.
"""

from repro.experiments import base
from repro.experiments.pra_study import shared_pra_study

__all__ = ["base", "shared_pra_study"]
