"""Figure 7: Robustness per ranking function.

Same construction as Figure 6 but grouped by the ranking function; the paper
observes that Sort Fastest protocols are the most robust, Sort Loyal still
reaches a very high maximum, and the remaining rankings trail behind.
"""

from __future__ import annotations

from repro.core.results import PRAStudyResult
from repro.experiments.figure6 import GroupedRobustnessResult, group_by, render as _render
from repro.experiments.pra_study import shared_pra_study

__all__ = ["GroupedRobustnessResult", "run", "render", "from_study"]

RANKING_NAMES = {
    "I1": "Fastest",
    "I2": "Slowest",
    "I3": "Proximity",
    "I4": "Adaptive",
    "I5": "Loyal",
    "I6": "Random",
}


def from_study(study: PRAStudyResult) -> GroupedRobustnessResult:
    """Figure 7 grouping: robustness by ranking function."""
    return group_by(study, "ranking", RANKING_NAMES)


def run(scale: str = "bench", seed: int = 0) -> GroupedRobustnessResult:
    """Run (or reuse) the shared PRA sweep and derive the Figure 7 data."""
    return from_study(shared_pra_study(scale, seed=seed))


def render(result: GroupedRobustnessResult) -> str:
    """Plain-text per-ranking robustness summary."""
    return _render(result, figure_name="Figure 7")
