"""Figure 10: homogeneous-swarm performance of the five client variants.

Every leecher in the swarm runs the same client variant; the figure compares
the resulting average download times for Sort-S, Random, Loyal-When-needed,
reference BitTorrent and Birds.  The paper finds Sort-S and Birds fastest and
Random on par with BitTorrent — and stresses that the figure says nothing
about robustness (Sort-S in particular is fragile, per Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.bittorrent.metrics import summarize_by_variant
from repro.bittorrent.swarm import SwarmSimulation
from repro.bittorrent.variants import (
    birds_client,
    loyal_when_needed_client,
    random_client,
    reference_bittorrent,
    sort_s_client,
)
from repro.experiments import base
from repro.stats.summary import SummaryStats
from repro.stats.tables import format_table
from repro.utils.rng import derive_seed

__all__ = ["Figure10Result", "run", "render"]

#: The variants compared, in the paper's x-axis order.
VARIANT_ORDER = ("Sort-S", "Random", "Loyal-When-needed", "BitTorrent", "Birds")

_FACTORIES = {
    "Sort-S": sort_s_client,
    "Random": random_client,
    "Loyal-When-needed": loyal_when_needed_client,
    "BitTorrent": reference_bittorrent,
    "Birds": birds_client,
}


@dataclass
class Figure10Result:
    """Per-variant download-time summaries for homogeneous swarms."""

    summaries: Dict[str, SummaryStats]
    completion: Dict[str, float]
    runs_per_variant: int

    def mean_download_time(self, variant: str) -> float:
        """Mean download time of one variant (KeyError if it never completed)."""
        return self.summaries[variant].mean

    def ordering(self) -> List[str]:
        """Variants ordered from fastest (lowest mean download time) to slowest."""
        return sorted(self.summaries, key=lambda v: self.summaries[v].mean)


def run(scale: str = "bench", seed: int = 0) -> Figure10Result:
    """Run homogeneous swarms for every variant."""
    base.check_scale(scale)
    config = base.swarm_config(scale)
    runs = base.swarm_runs(scale)

    summaries: Dict[str, SummaryStats] = {}
    completion: Dict[str, float] = {}
    for name in VARIANT_ORDER:
        variant = _FACTORIES[name]()
        results = []
        for run_index in range(runs):
            run_seed = derive_seed(seed, f"figure10/{name}/{run_index}")
            results.append(SwarmSimulation(config, [variant], seed=run_seed).run())
        per_variant = summarize_by_variant(results)
        if name in per_variant:
            summaries[name] = per_variant[name]
        completion[name] = sum(r.completion_fraction(name) for r in results) / len(results)
    return Figure10Result(
        summaries=summaries, completion=completion, runs_per_variant=runs
    )


def render(result: Figure10Result) -> str:
    """Plain-text rendering of the per-variant download times."""
    rows = []
    for name in VARIANT_ORDER:
        if name in result.summaries:
            stats = result.summaries[name]
            rows.append(
                (
                    name,
                    stats.mean,
                    f"±{stats.ci_half_width:.1f}",
                    result.completion.get(name, 0.0),
                )
            )
        else:
            rows.append((name, "-", "-", result.completion.get(name, 0.0)))
    return format_table(
        ("variant", "avg DL time (s)", "95% CI", "completion"),
        rows,
        title=(
            "Figure 10 — homogeneous-swarm performance "
            f"({result.runs_per_variant} runs per variant)"
        ),
    )
