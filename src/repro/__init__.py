"""repro — reproduction of "Design Space Analysis for Modeling Incentives in Distributed Systems".

This package is a from-scratch Python implementation of the systems described
in Rahman et al., SIGCOMM 2011:

* :mod:`repro.gametheory` — game-theoretic substrate: normal-form games, the
  BitTorrent Dilemma and Birds payoffs, iterated-game strategies and
  tournaments, and the analytical expected-game-win model with the Appendix
  Nash-equilibrium analysis.
* :mod:`repro.sim` — the cycle-based P2P simulation model of Section 4.3.1 on
  which protocols from the design space are executed.
* :mod:`repro.core` — the paper's primary contribution: Design Space Analysis
  (Parameterization, Actualization, the 3270-protocol file-swarming space)
  and the PRA (Performance / Robustness / Aggressiveness) quantification.
* :mod:`repro.bittorrent` — a piece-level BitTorrent swarm simulator used to
  validate DSA-discovered protocols (Section 5).
* :mod:`repro.stats` — regression, correlation and distribution tools used by
  the analysis (Table 3, Figures 2-8).
* :mod:`repro.runner` — the parallel, content-addressed-cached experiment
  runner every sweep/tournament executes its simulations on.
* :mod:`repro.experiments` — drivers that regenerate every table and figure
  of the paper's evaluation.
"""

__version__ = "1.1.0"

__all__ = ["__version__"]
