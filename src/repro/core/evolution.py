"""Evolutionary (imitation) dynamics over protocol populations.

The PRA quantification asks how a *fixed* mix of two protocols fares; a
complementary question — studied by the evolutionary game-theory line of work
the paper builds on (Axelrod; Feldman et al.) — is what happens when peers
*switch* protocols over time, imitating whichever protocol is currently doing
best.  This module implements discrete-generation imitation dynamics on top
of the cycle-based simulator:

1. every generation, the current protocol shares are realised as a concrete
   peer population and one simulation is run;
2. each protocol's *fitness* is the average download of the peers running it;
3. every peer then reconsiders its protocol: with probability
   ``imitation_rate`` it compares itself against a uniformly chosen
   role-model peer and adopts the role model's protocol if that protocol's
   fitness is higher (the classic pairwise imitate-the-better rule, so
   imitation pressure is proportional to a protocol's population share and
   its payoff advantage); with probability ``mutation_rate`` it switches to a
   uniformly random protocol from the menu (exploration / new entrants);
4. repeat for a configured number of generations.

:meth:`ImitationDynamics.run` records the share trajectory;
:func:`is_evolutionarily_stable` uses it to check whether a protocol resists
a small invading share — the dynamic counterpart of the paper's Appendix
Nash-equilibrium argument, and the ablation benchmark shows Birds resisting a
BitTorrent invasion this way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.protocol import Protocol
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulation
from repro.utils.rng import derive_seed

__all__ = [
    "EvolutionConfig",
    "GenerationRecord",
    "EvolutionResult",
    "ImitationDynamics",
    "is_evolutionarily_stable",
]


@dataclass(frozen=True)
class EvolutionConfig:
    """Parameters of an imitation-dynamics run.

    Parameters
    ----------
    sim:
        Simulation parameters of each generation's run.
    generations:
        Number of generations simulated.
    imitation_rate:
        Per-peer probability of reconsidering its protocol each generation.
    mutation_rate:
        Per-peer probability of switching to a uniformly random protocol
        (applied after imitation; models exploration and new entrants).
    seed:
        Master seed; each generation derives its own simulation seed.
    """

    sim: SimulationConfig
    generations: int = 20
    imitation_rate: float = 0.3
    mutation_rate: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= self.imitation_rate <= 1.0:
            raise ValueError("imitation_rate must be in [0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")


@dataclass(frozen=True)
class GenerationRecord:
    """Shares and fitness of every protocol in one generation."""

    generation: int
    shares: Dict[str, float]
    fitness: Dict[str, float]


@dataclass
class EvolutionResult:
    """Trajectory of an imitation-dynamics run."""

    protocols: List[Protocol]
    records: List[GenerationRecord]

    def share_trajectory(self, key: str) -> List[float]:
        """Per-generation population share of one protocol."""
        return [record.shares.get(key, 0.0) for record in self.records]

    def final_shares(self) -> Dict[str, float]:
        """Shares after the last generation."""
        return dict(self.records[-1].shares)

    def dominant_protocol(self) -> str:
        """Key of the protocol with the largest final share."""
        final = self.final_shares()
        return max(final, key=lambda key: final[key])


class ImitationDynamics:
    """Discrete-generation imitation dynamics over a protocol menu.

    Parameters
    ----------
    protocols:
        The menu of protocols peers can run (keys must be unique).
    config:
        Dynamics parameters.
    initial_shares:
        Optional initial population shares keyed by protocol key; defaults to
        a uniform split.  Shares are normalised and realised as integer peer
        counts (every protocol with a positive share gets at least one peer
        when space allows).
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        config: EvolutionConfig,
        initial_shares: Optional[Dict[str, float]] = None,
    ):
        keys = [p.key for p in protocols]
        if len(protocols) < 2:
            raise ValueError("imitation dynamics needs at least two protocols")
        if len(set(keys)) != len(keys):
            raise ValueError("protocol keys must be unique")
        self.protocols = list(protocols)
        self.config = config
        self._by_key = {p.key: p for p in self.protocols}
        if initial_shares is None:
            initial_shares = {key: 1.0 / len(keys) for key in keys}
        unknown = set(initial_shares) - set(keys)
        if unknown:
            raise ValueError(f"initial_shares refer to unknown protocols: {sorted(unknown)}")
        total = sum(max(0.0, share) for share in initial_shares.values())
        if total <= 0:
            raise ValueError("initial_shares must contain at least one positive share")
        self._initial_shares = {
            key: max(0.0, initial_shares.get(key, 0.0)) / total for key in keys
        }
        self._rng = random.Random(config.seed)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _realise_population(self, shares: Dict[str, float]) -> List[str]:
        """Turn fractional shares into a concrete per-peer protocol assignment."""
        n = self.config.sim.n_peers
        counts = {key: int(share * n) for key, share in shares.items()}
        # Give every positive share at least one peer while space remains.
        for key, share in shares.items():
            if share > 0 and counts[key] == 0 and sum(counts.values()) < n:
                counts[key] = 1
        # Distribute any remaining peers to the largest shares.
        remaining = n - sum(counts.values())
        order = sorted(shares, key=lambda key: shares[key], reverse=True)
        index = 0
        while remaining > 0 and order:
            counts[order[index % len(order)]] += 1
            remaining -= 1
            index += 1
        assignment: List[str] = []
        for key in sorted(counts):
            assignment.extend([key] * counts[key])
        return assignment[:n]

    def _run_generation(self, assignment: List[str], generation: int) -> Dict[str, float]:
        behaviors = [self._by_key[key].behavior for key in assignment]
        seed = derive_seed(self.config.seed, f"evolution/generation/{generation}")
        result = Simulation(self.config.sim, behaviors, groups=assignment, seed=seed).run()
        metrics = result.group_metrics()
        return {key: metrics[key].mean_downloaded for key in metrics}

    def _update_assignment(
        self, assignment: List[str], fitness: Dict[str, float]
    ) -> List[str]:
        keys = list(self._by_key)
        updated: List[str] = []
        for current in assignment:
            choice = current
            if self._rng.random() < self.config.imitation_rate:
                # Pairwise imitation: compare against a uniformly chosen
                # role-model peer and adopt its protocol if that protocol's
                # average download this generation was strictly higher.
                role_model = self._rng.choice(assignment)
                if fitness.get(role_model, 0.0) > fitness.get(current, 0.0):
                    choice = role_model
            if self._rng.random() < self.config.mutation_rate:
                choice = self._rng.choice(keys)
            updated.append(choice)
        return updated

    @staticmethod
    def _shares_of(assignment: List[str]) -> Dict[str, float]:
        n = len(assignment)
        shares: Dict[str, float] = {}
        for key in assignment:
            shares[key] = shares.get(key, 0.0) + 1.0 / n
        return shares

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self) -> EvolutionResult:
        """Run the configured number of generations and return the trajectory."""
        assignment = self._realise_population(self._initial_shares)
        records: List[GenerationRecord] = []
        for generation in range(self.config.generations):
            fitness = self._run_generation(assignment, generation)
            shares = self._shares_of(assignment)
            records.append(
                GenerationRecord(
                    generation=generation,
                    shares={key: shares.get(key, 0.0) for key in self._by_key},
                    fitness={key: fitness.get(key, 0.0) for key in self._by_key},
                )
            )
            assignment = self._update_assignment(assignment, fitness)
        return EvolutionResult(protocols=self.protocols, records=records)


def is_evolutionarily_stable(
    resident: Protocol,
    invader: Protocol,
    config: EvolutionConfig,
    invader_share: float = 0.1,
    survival_threshold: float = 0.5,
) -> bool:
    """Whether ``resident`` keeps the majority against a small ``invader`` share.

    Runs the imitation dynamics starting from ``1 - invader_share`` residents
    and returns ``True`` when the resident still holds at least
    ``survival_threshold`` of the population after the final generation —
    the dynamic analogue of the Appendix's "a deviant does not gain" check.
    """
    if not 0.0 < invader_share < 0.5:
        raise ValueError("invader_share must be in (0, 0.5)")
    if not 0.0 < survival_threshold <= 1.0:
        raise ValueError("survival_threshold must be in (0, 1]")
    dynamics = ImitationDynamics(
        [resident, invader],
        config,
        initial_shares={resident.key: 1.0 - invader_share, invader.key: invader_share},
    )
    result = dynamics.run()
    return result.final_shares()[resident.key] >= survival_threshold
