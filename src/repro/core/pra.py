"""The PRA quantification: Performance, Robustness, Aggressiveness (Section 3.2).

For a protocol ``Π`` from a design space ``D`` the PRA quantification defines
a mapping ``S : D -> [0, 1]^3``:

* **Performance** — the sum of individual utilities (download throughput)
  when the entire population executes ``Π``, normalised over the protocols
  under study so the best protocol scores 1;
* **Robustness** — the proportion of encounter games that ``Π`` wins against
  every other protocol when half the population executes ``Π`` and half the
  opponent (50% being the largest share an invader can have without becoming
  the majority);
* **Aggressiveness** — the same, but with ``Π`` executed by a 10% minority.

This module provides the three measurement primitives (performance runs and
the two tournaments) plus score normalisation; :class:`repro.core.study.PRAStudy`
combines them into the study object the figures consume.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.protocol import Protocol
from repro.core.tournament import Tournament, TournamentOutcome
from repro.runner.jobs import SimulationJob
from repro.runner.runner import ExperimentRunner, get_default_runner
from repro.sim.config import SimulationConfig
from repro.utils.rng import derive_seed

__all__ = [
    "PRAConfig",
    "performance_jobs",
    "measure_performance",
    "normalize_scores",
    "robustness_tournament",
    "aggressiveness_tournament",
]


@dataclass(frozen=True)
class PRAConfig:
    """Configuration of a PRA study.

    Parameters
    ----------
    sim:
        Simulation parameters used for every run (population size, rounds,
        bandwidth distribution, churn, ...).
    performance_runs:
        Homogeneous-population runs per protocol (the paper uses 100).
    encounter_runs:
        Runs per encounter in the tournaments (the paper uses 10).
    robustness_split:
        Fraction of the population executing the protocol under test in
        Robustness encounters (0.5 in the paper; 0.9 is used for the §4.3.2
        consistency check).
    aggressiveness_split:
        Minority fraction for Aggressiveness encounters (0.1 in the paper).
    seed:
        Master seed from which every run derives an independent sub-seed.
    """

    sim: SimulationConfig
    performance_runs: int = 100
    encounter_runs: int = 10
    robustness_split: float = 0.5
    aggressiveness_split: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.performance_runs < 1:
            raise ValueError("performance_runs must be >= 1")
        if self.encounter_runs < 1:
            raise ValueError("encounter_runs must be >= 1")
        if not 0.0 < self.robustness_split < 1.0:
            raise ValueError("robustness_split must be in (0, 1)")
        if not 0.0 < self.aggressiveness_split < 1.0:
            raise ValueError("aggressiveness_split must be in (0, 1)")

    def with_(self, **changes) -> "PRAConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # presets (the scale actually used per experiment is in EXPERIMENTS.md)
    # ------------------------------------------------------------------ #
    @classmethod
    def paper(cls, seed: int = 0) -> "PRAConfig":
        """The paper-scale configuration (50 peers, 500 rounds, 100/10 runs)."""
        return cls(sim=SimulationConfig.paper(), performance_runs=100,
                   encounter_runs=10, seed=seed)

    @classmethod
    def bench(cls, seed: int = 0) -> "PRAConfig":
        """Benchmark-scale configuration: small swarms, few repetitions."""
        return cls(sim=SimulationConfig.small(), performance_runs=2,
                   encounter_runs=1, seed=seed)

    @classmethod
    def smoke(cls, seed: int = 0) -> "PRAConfig":
        """Minimal configuration for unit tests."""
        return cls(sim=SimulationConfig.smoke(), performance_runs=1,
                   encounter_runs=1, seed=seed)


def performance_jobs(
    protocols: Sequence[Protocol], config: PRAConfig
) -> List[SimulationJob]:
    """The homogeneous-population runs of a performance sweep, in sweep order."""
    return [
        SimulationJob(
            config=config.sim,
            behaviors=(protocol.behavior,),
            seed=derive_seed(config.seed, f"performance/{protocol.key}/{run_index}"),
        )
        for protocol in protocols
        for run_index in range(config.performance_runs)
    ]


def measure_performance(
    protocols: Sequence[Protocol],
    config: PRAConfig,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, float]:
    """Raw (unnormalised) performance of each protocol.

    For every protocol the entire population executes it; the returned value
    is the population throughput averaged over ``config.performance_runs``
    independent runs.  All runs of the whole sweep are executed as a single
    runner batch (parallelisable, cacheable); per-run accumulation order is
    unchanged, so the averages are bit-identical to the historical loop.
    """
    results = (runner or get_default_runner()).run(performance_jobs(protocols, config))
    raw: Dict[str, float] = {}
    cursor = 0
    for protocol in protocols:
        total = 0.0
        for _ in range(config.performance_runs):
            total += results[cursor].throughput
            cursor += 1
        raw[protocol.key] = total / config.performance_runs
    return raw


def normalize_scores(raw: Dict[str, float]) -> Dict[str, float]:
    """Normalise raw scores into [0, 1] by dividing by the maximum.

    The paper normalises performance "over the entire protocol design space"
    so the best protocol scores 1; an all-zero input maps to all zeros.
    """
    if not raw:
        return {}
    maximum = max(raw.values())
    if maximum <= 0.0:
        return {key: 0.0 for key in raw}
    return {key: value / maximum for key, value in raw.items()}


def robustness_tournament(
    protocols: Sequence[Protocol],
    config: PRAConfig,
    split: Optional[float] = None,
    runner: Optional[ExperimentRunner] = None,
) -> TournamentOutcome:
    """Run the Robustness tournament (symmetric split; default 50/50).

    Robustness of ``Π`` is the fraction of games it wins over all opponents
    and runs; it is read off :attr:`TournamentOutcome.scores`.
    """
    tournament = Tournament(
        protocols,
        config.sim,
        encounter_runs=config.encounter_runs,
        seed=derive_seed(config.seed, "robustness"),
        runner=runner,
    )
    return tournament.run_symmetric(
        split=config.robustness_split if split is None else split
    )


def aggressiveness_tournament(
    protocols: Sequence[Protocol],
    config: PRAConfig,
    runner: Optional[ExperimentRunner] = None,
) -> TournamentOutcome:
    """Run the Aggressiveness tournament (protocol under test in a 10% minority)."""
    tournament = Tournament(
        protocols,
        config.sim,
        encounter_runs=config.encounter_runs,
        seed=derive_seed(config.seed, "aggressiveness"),
        runner=runner,
    )
    return tournament.run_minority(minority_fraction=config.aggressiveness_split)
