"""The actualized P2P file-swarming design space of Section 4.2.

The paper actualizes the generic P2P dimensions into a concrete space of
**3270 unique protocols**:

* **10 stranger policies** — the three policies B1 (Periodic), B2 (When
  needed) and B3 (Defect) each swept over ``h`` in {1, 2, 3}, plus one policy
  with zero strangers;
* **109 selection policies** — candidate list C1 (TFT) or C2 (TF2T), ranking
  function I1-I6, and ``k`` in {1, ..., 9} (2 x 6 x 9 = 108), plus one
  degenerate policy with zero selected partners;
* **3 resource-allocation policies** — R1 (Equal Split), R2 (Prop Share),
  R3 (Freeride).

:class:`DesignSpace` enumerates this space deterministically, assigns every
protocol a stable integer id, and supports random and dimension-stratified
sampling so that analyses can run on tractable subsets (the full sweep took
the authors ~25 hours on a 50-node cluster; the same code enumerates the full
space here when given the budget).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.core.protocol import Protocol
from repro.core.sampling import sample_protocols
from repro.sim.behavior import PeerBehavior

__all__ = ["DesignSpace"]

#: (stranger_policy, stranger_count) pairs — 10 options.
_STRANGER_OPTIONS: Tuple[Tuple[str, int], ...] = tuple(
    [("none", 0)]
    + [(policy, h) for policy in ("periodic", "when_needed", "defect") for h in (1, 2, 3)]
)

#: (candidate_policy, ranking, partner_count) triples — 109 options.
_SELECTION_OPTIONS: Tuple[Tuple[str, str, int], ...] = tuple(
    [("tft", "fastest", 0)]  # the degenerate zero-partner selection policy
    + [
        (candidate, ranking, k)
        for candidate in ("tft", "tf2t")
        for ranking in ("fastest", "slowest", "proximity", "adaptive", "loyal", "random")
        for k in range(1, 10)
    ]
)

#: Allocation policies — 3 options.
_ALLOCATION_OPTIONS: Tuple[str, ...] = ("equal_split", "prop_share", "freeride")


class DesignSpace:
    """The enumerated Section 4.2 design space.

    Protocols are ordered stranger-policy-major, then selection, then
    allocation; the resulting index is the protocol's stable id.

    Examples
    --------
    >>> space = DesignSpace.default()
    >>> len(space)
    3270
    >>> space.protocol(0).label
    'B0h0-C1-I1k0-R1'
    """

    def __init__(
        self,
        stranger_options: Sequence[Tuple[str, int]] = _STRANGER_OPTIONS,
        selection_options: Sequence[Tuple[str, str, int]] = _SELECTION_OPTIONS,
        allocation_options: Sequence[str] = _ALLOCATION_OPTIONS,
    ):
        self._stranger_options = tuple(stranger_options)
        self._selection_options = tuple(selection_options)
        self._allocation_options = tuple(allocation_options)
        if not (self._stranger_options and self._selection_options and self._allocation_options):
            raise ValueError("every dimension needs at least one option")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def default(cls) -> "DesignSpace":
        """The full 3270-protocol space of the paper."""
        return cls()

    @classmethod
    def reduced(
        cls,
        partner_counts: Sequence[int] = (1, 3, 5, 9),
        stranger_counts: Sequence[int] = (1, 3),
    ) -> "DesignSpace":
        """A smaller space sweeping only the given ``k`` and ``h`` values.

        Useful for laptop-scale studies that still cover every categorical
        actualization; the dimension structure (and therefore the regression
        design) is unchanged.
        """
        stranger = tuple(
            [("none", 0)]
            + [
                (policy, h)
                for policy in ("periodic", "when_needed", "defect")
                for h in stranger_counts
            ]
        )
        selection = tuple(
            [("tft", "fastest", 0)]
            + [
                (candidate, ranking, k)
                for candidate in ("tft", "tf2t")
                for ranking in (
                    "fastest",
                    "slowest",
                    "proximity",
                    "adaptive",
                    "loyal",
                    "random",
                )
                for k in partner_counts
            ]
        )
        return cls(stranger, selection, _ALLOCATION_OPTIONS)

    # ------------------------------------------------------------------ #
    # dimensions
    # ------------------------------------------------------------------ #
    @property
    def stranger_options(self) -> Tuple[Tuple[str, int], ...]:
        return self._stranger_options

    @property
    def selection_options(self) -> Tuple[Tuple[str, str, int], ...]:
        return self._selection_options

    @property
    def allocation_options(self) -> Tuple[str, ...]:
        return self._allocation_options

    def dimension_sizes(self) -> Tuple[int, int, int]:
        """``(stranger options, selection options, allocation options)``."""
        return (
            len(self._stranger_options),
            len(self._selection_options),
            len(self._allocation_options),
        )

    # ------------------------------------------------------------------ #
    # enumeration
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        s, sel, a = self.dimension_sizes()
        return s * sel * a

    def protocol(self, index: int) -> Protocol:
        """Return the protocol with id ``index`` (0-based)."""
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"protocol index {index} out of range [0, {size})")
        n_sel = len(self._selection_options)
        n_alloc = len(self._allocation_options)
        stranger_idx, rest = divmod(index, n_sel * n_alloc)
        selection_idx, allocation_idx = divmod(rest, n_alloc)

        stranger_policy, h = self._stranger_options[stranger_idx]
        candidate, ranking, k = self._selection_options[selection_idx]
        allocation = self._allocation_options[allocation_idx]
        behavior = PeerBehavior(
            stranger_policy=stranger_policy,
            stranger_count=h,
            candidate_policy=candidate,
            ranking=ranking,
            partner_count=k,
            allocation=allocation,
        )
        return Protocol(behavior=behavior, protocol_id=index)

    def __iter__(self) -> Iterator[Protocol]:
        for index in range(len(self)):
            yield self.protocol(index)

    def __getitem__(self, index: int) -> Protocol:
        return self.protocol(index)

    def protocols(self) -> List[Protocol]:
        """The full enumerated protocol list (materialised)."""
        return list(self)

    def index_of(self, behavior: PeerBehavior) -> int:
        """Return the id of the protocol whose behaviour matches ``behavior``.

        Fields not swept by the space (e.g. ``stranger_period``) are ignored;
        raises ``KeyError`` when no space point matches.
        """
        stranger_key = (behavior.stranger_policy, behavior.stranger_count)
        selection_key = (
            behavior.candidate_policy,
            behavior.ranking,
            behavior.partner_count,
        )
        try:
            stranger_idx = self._stranger_options.index(stranger_key)
            allocation_idx = self._allocation_options.index(behavior.allocation)
        except ValueError as exc:
            raise KeyError(f"behavior {behavior.label()} not in this design space") from exc
        selection_idx = self._find_selection(selection_key, behavior.partner_count)
        n_sel = len(self._selection_options)
        n_alloc = len(self._allocation_options)
        return (stranger_idx * n_sel + selection_idx) * n_alloc + allocation_idx

    def _find_selection(self, selection_key: Tuple[str, str, int], k: int) -> int:
        if k == 0:
            # The degenerate zero-partner selection is a single canonical entry.
            for i, (_c, _r, kk) in enumerate(self._selection_options):
                if kk == 0:
                    return i
            raise KeyError("this design space has no zero-partner selection option")
        try:
            return self._selection_options.index(selection_key)
        except ValueError as exc:
            raise KeyError(f"selection {selection_key!r} not in this design space") from exc

    def contains(self, behavior: PeerBehavior) -> bool:
        """Whether the behaviour corresponds to a point of this space."""
        try:
            self.index_of(behavior)
            return True
        except KeyError:
            return False

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def sample(
        self,
        count: int,
        seed: int = 0,
        method: str = "stratified",
        include: Optional[Sequence[Protocol]] = None,
    ) -> List[Protocol]:
        """Sample ``count`` protocols from the space.

        ``method`` is ``"stratified"`` (default: cover every categorical
        actualization as evenly as possible) or ``"random"``.  Protocols in
        ``include`` (e.g. the named protocols whose ranks the analysis
        reports) are added first, re-indexed to their space ids, and count
        towards ``count``.
        """
        return sample_protocols(self, count, seed=seed, method=method, include=include)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        s, sel, a = self.dimension_sizes()
        return f"DesignSpace({s} stranger x {sel} selection x {a} allocation = {len(self)})"
