"""Design Space Analysis (DSA) — the paper's primary contribution.

This sub-package implements the DSA methodology of Section 3 and its
application to P2P file-swarming systems in Section 4:

* :mod:`repro.core.design_space` — the generic *Parameterization* /
  *Actualization* framework (design dimensions and their concrete
  implementations), including the generic P2P parameterization of Section 4.1
  and the gossip-protocol example of Section 3.1;
* :mod:`repro.core.protocol` — a protocol as a point in the actualized
  design space, plus the named protocols referenced in the paper
  (reference BitTorrent, Birds, Loyal-When-needed, Sort-S, ...);
* :mod:`repro.core.space` — the concrete Section 4.2 file-swarming space of
  3270 protocols, with enumeration and sampling;
* :mod:`repro.core.encounter` / :mod:`repro.core.tournament` — two-protocol
  encounters and round-robin tournaments on the cycle-based simulator;
* :mod:`repro.core.pra` / :mod:`repro.core.study` — the PRA
  (Performance / Robustness / Aggressiveness) quantification and the study
  driver that produces the per-protocol PRA scores consumed by every figure
  in Section 4.4;
* :mod:`repro.core.registry` — Table 2: existing systems mapped onto the
  generic design space;
* :mod:`repro.core.search` — heuristic exploration of the design space
  (hill climbing and evolutionary search), the paper's stated future-work
  solution concept for spaces too large to scan exhaustively;
* :mod:`repro.core.evolution` — imitation dynamics over protocol populations
  and an evolutionary-stability check complementing the Appendix's
  Nash-equilibrium analysis.
"""

from repro.core.design_space import (
    Actualization,
    Dimension,
    Parameterization,
    generic_p2p_parameterization,
    gossip_parameterization,
)
from repro.core.protocol import (
    Protocol,
    birds_protocol,
    bittorrent_reference,
    loyal_when_needed,
    random_ranking_protocol,
    sort_s,
)
from repro.core.space import DesignSpace
from repro.core.sampling import sample_protocols
from repro.core.encounter import EncounterOutcome, run_encounter
from repro.core.tournament import Tournament, TournamentOutcome
from repro.core.pra import (
    PRAConfig,
    aggressiveness_tournament,
    measure_performance,
    normalize_scores,
    robustness_tournament,
)
from repro.core.results import PRAStudyResult
from repro.core.study import PRAStudy
from repro.core.registry import SYSTEM_REGISTRY, SystemMapping, registry_rows
from repro.core.search import (
    EvolutionarySearch,
    HillClimbingSearch,
    SearchObjective,
    SearchResult,
    protocol_neighbors,
)
from repro.core.evolution import (
    EvolutionConfig,
    EvolutionResult,
    ImitationDynamics,
    is_evolutionarily_stable,
)

__all__ = [
    "Actualization",
    "Dimension",
    "Parameterization",
    "generic_p2p_parameterization",
    "gossip_parameterization",
    "Protocol",
    "bittorrent_reference",
    "birds_protocol",
    "loyal_when_needed",
    "sort_s",
    "random_ranking_protocol",
    "DesignSpace",
    "sample_protocols",
    "EncounterOutcome",
    "run_encounter",
    "Tournament",
    "TournamentOutcome",
    "PRAConfig",
    "measure_performance",
    "normalize_scores",
    "robustness_tournament",
    "aggressiveness_tournament",
    "PRAStudyResult",
    "PRAStudy",
    "SYSTEM_REGISTRY",
    "SystemMapping",
    "registry_rows",
    "SearchObjective",
    "SearchResult",
    "HillClimbingSearch",
    "EvolutionarySearch",
    "protocol_neighbors",
    "EvolutionConfig",
    "EvolutionResult",
    "ImitationDynamics",
    "is_evolutionarily_stable",
]
