"""Two-protocol encounters (the building block of the PRA tournament).

An *encounter* is "a mixed population of peers executing one of two
protocols" (Section 3.2).  The population is split according to a fraction,
the cycle-based simulation is run, and the protocol whose peers obtain the
higher average utility (download) wins.  Robustness uses a 50/50 split (the
largest share an invader can hold without being the majority);
Aggressiveness puts the protocol under test in a 10% minority.

The simulation runs themselves go through the experiment runner
(:mod:`repro.runner`): :func:`encounter_jobs` describes an encounter's runs
as deterministic jobs, :func:`outcome_from_results` folds the finished runs
into an :class:`EncounterOutcome`, and :func:`run_encounter` wires the two
together.  Tournaments use the split form directly so that *every encounter
of a whole tournament* lands in a single runner batch (one cache lookup
sweep, one parallel fan-out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.protocol import Protocol
from repro.runner.jobs import SimulationJob
from repro.runner.runner import ExperimentRunner, get_default_runner
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationResult
from repro.utils.rng import derive_seed

__all__ = [
    "EncounterOutcome",
    "run_encounter",
    "encounter_jobs",
    "outcome_from_results",
]

#: Group labels used inside encounter simulations.
GROUP_A = "A"
GROUP_B = "B"


@dataclass(frozen=True)
class EncounterOutcome:
    """Aggregated result of repeated encounters between two protocols.

    ``wins_a`` counts the runs in which protocol A's peers averaged a strictly
    higher download than protocol B's peers; ``wins_b`` the converse; ``ties``
    the remainder.  Mean downloads are averaged over runs.
    """

    protocol_a: str
    protocol_b: str
    fraction_a: float
    runs: int
    wins_a: int
    wins_b: int
    ties: int
    mean_download_a: float
    mean_download_b: float
    peers_a: int
    peers_b: int

    @property
    def win_rate_a(self) -> float:
        """Fraction of runs won by protocol A."""
        return self.wins_a / self.runs if self.runs else 0.0

    @property
    def win_rate_b(self) -> float:
        """Fraction of runs won by protocol B."""
        return self.wins_b / self.runs if self.runs else 0.0

    def winner(self) -> Optional[str]:
        """Key of the protocol that won more runs, or ``None`` for a draw."""
        if self.wins_a > self.wins_b:
            return self.protocol_a
        if self.wins_b > self.wins_a:
            return self.protocol_b
        return None


def _split_population(n_peers: int, fraction_a: float) -> Tuple[int, int]:
    """Split ``n_peers`` into (count_a, count_b), each at least 1."""
    count_a = int(round(fraction_a * n_peers))
    count_a = max(1, min(n_peers - 1, count_a))
    return count_a, n_peers - count_a


def encounter_jobs(
    protocol_a: Protocol,
    protocol_b: Protocol,
    sim_config: SimulationConfig,
    fraction_a: float = 0.5,
    runs: int = 10,
    seed: int = 0,
) -> List[SimulationJob]:
    """The ``runs`` simulation jobs of one encounter, in run order.

    Each job derives an independent sub-seed from the (pair, split, run)
    path, so outcomes do not depend on evaluation order elsewhere in a
    study — or on which executor/cache state happens to run them.
    """
    if runs < 1:
        raise ValueError("runs must be at least 1")
    if not 0.0 < fraction_a < 1.0:
        raise ValueError("fraction_a must be strictly between 0 and 1")

    count_a, count_b = _split_population(sim_config.n_peers, fraction_a)
    behaviors = (protocol_a.behavior,) * count_a + (protocol_b.behavior,) * count_b
    groups = (GROUP_A,) * count_a + (GROUP_B,) * count_b
    return [
        SimulationJob(
            config=sim_config,
            behaviors=behaviors,
            groups=groups,
            seed=derive_seed(
                seed,
                f"encounter/{protocol_a.key}/{protocol_b.key}/{fraction_a}/{run_index}",
            ),
        )
        for run_index in range(runs)
    ]


def outcome_from_results(
    protocol_a: Protocol,
    protocol_b: Protocol,
    fraction_a: float,
    results: Sequence[SimulationResult],
) -> EncounterOutcome:
    """Fold the finished runs of one encounter into an :class:`EncounterOutcome`."""
    wins_a = wins_b = ties = 0
    total_a = total_b = 0.0
    peers_a = peers_b = 0
    for result in results:
        metrics = result.group_metrics()
        mean_a = metrics[GROUP_A].mean_downloaded
        mean_b = metrics[GROUP_B].mean_downloaded
        peers_a = metrics[GROUP_A].peer_count
        peers_b = metrics[GROUP_B].peer_count
        total_a += mean_a
        total_b += mean_b
        if mean_a > mean_b:
            wins_a += 1
        elif mean_b > mean_a:
            wins_b += 1
        else:
            ties += 1

    runs = len(results)
    return EncounterOutcome(
        protocol_a=protocol_a.key,
        protocol_b=protocol_b.key,
        fraction_a=fraction_a,
        runs=runs,
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        mean_download_a=total_a / runs,
        mean_download_b=total_b / runs,
        peers_a=peers_a,
        peers_b=peers_b,
    )


def run_encounter(
    protocol_a: Protocol,
    protocol_b: Protocol,
    sim_config: SimulationConfig,
    fraction_a: float = 0.5,
    runs: int = 10,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> EncounterOutcome:
    """Run ``runs`` independent encounters between two protocols.

    Parameters
    ----------
    protocol_a, protocol_b:
        The competing protocols.  Group A executes ``protocol_a``.
    sim_config:
        Simulation parameters shared by every run.
    fraction_a:
        Fraction of the population executing protocol A (0.5 for Robustness
        encounters, 0.1 when measuring A's Aggressiveness).
    runs:
        Number of independent repetitions (the paper uses 10).
    seed:
        Master seed; each run derives an independent sub-seed so outcomes do
        not depend on evaluation order elsewhere in a study.
    runner:
        Experiment runner executing the batch (defaults to the process-wide
        runner).
    """
    jobs = encounter_jobs(protocol_a, protocol_b, sim_config, fraction_a, runs, seed)
    results = (runner or get_default_runner()).run(jobs)
    return outcome_from_results(protocol_a, protocol_b, fraction_a, results)
