"""Table 2: existing protocols and designs mapped to the generic design space.

The paper grounds its Parameterization (Section 4.1) by showing how a range
of deployed systems and published designs occupy the generic P2P dimensions
(Table 2).  This module encodes that mapping as data so it can be queried,
rendered and tested like everything else in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["SystemMapping", "SYSTEM_REGISTRY", "registry_rows", "registry_table"]

#: The generic dimensions every system is mapped onto (Table 2 columns).
DIMENSIONS: Tuple[str, ...] = (
    "Peer Discovery",
    "Stranger Policy",
    "Selection Function",
    "Resource Allocation",
)


@dataclass(frozen=True)
class SystemMapping:
    """How one existing system realises each generic design dimension."""

    name: str
    reference: str
    peer_discovery: str
    stranger_policy: str
    selection_function: str
    resource_allocation: str

    def dimension_values(self) -> Dict[str, str]:
        """Mapping ``dimension name -> value`` in Table 2 column order."""
        return {
            "Peer Discovery": self.peer_discovery,
            "Stranger Policy": self.stranger_policy,
            "Selection Function": self.selection_function,
            "Resource Allocation": self.resource_allocation,
        }


#: The systems listed in Table 2, in the paper's column order.
SYSTEM_REGISTRY: Tuple[SystemMapping, ...] = (
    SystemMapping(
        name="P2P Replica Storage",
        reference="Rzadca et al., ICDCS 2010",
        peer_discovery="Gossip based",
        stranger_policy="Defect if set of partners full",
        selection_function="Closest to own profile",
        resource_allocation="Equal",
    ),
    SystemMapping(
        name="Give-to-Get (GTG)",
        reference="Mol et al., MMCN 2008",
        peer_discovery="orthogonal",
        stranger_policy="Unconditional cooperation",
        selection_function="Sort on Forwarding Rank",
        resource_allocation="Equal",
    ),
    SystemMapping(
        name="Maze",
        reference="Yang et al., 2005",
        peer_discovery="Central server",
        stranger_policy="Initialized with points",
        selection_function="Ranked on points",
        resource_allocation="Differentiated according to rank",
    ),
    SystemMapping(
        name="Pulse",
        reference="Pianese et al., INFOCOM 2006",
        peer_discovery="Gossip based",
        stranger_policy="Give positive score",
        selection_function="Missing list, Forwarding list",
        resource_allocation="Equal",
    ),
    SystemMapping(
        name="BarterCast",
        reference="Meulpolder et al., IPDPS 2009",
        peer_discovery="Gossip based",
        stranger_policy="Unconditional cooperation",
        selection_function="Rank/Ban according to reputation",
        resource_allocation="orthogonal",
    ),
    SystemMapping(
        name="Private BT Communities",
        reference="(deployed communities)",
        peer_discovery="Central server",
        stranger_policy="Initial credit",
        selection_function="Credits or sharing ratio above certain level",
        resource_allocation="Equal / Differentiated according to credits",
    ),
)


def registry_rows() -> List[Tuple[str, str, str, str, str]]:
    """Table 2 as plain rows: (system, discovery, stranger, selection, allocation)."""
    return [
        (
            system.name,
            system.peer_discovery,
            system.stranger_policy,
            system.selection_function,
            system.resource_allocation,
        )
        for system in SYSTEM_REGISTRY
    ]


def registry_table() -> str:
    """Render Table 2 as aligned plain text."""
    from repro.stats.tables import format_table

    headers = ("Protocol",) + DIMENSIONS
    return format_table(headers, registry_rows(), title="Table 2: existing designs in the generic design space")
