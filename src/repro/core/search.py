"""Heuristic exploration of the design space (the paper's future work).

Section 7 of the paper: *"we would like to explore if a solution concept
similar to PRA quantification could be developed which explores the design
space using a heuristic based approach.  This could be needed in situations
where a thorough scan of the design space becomes infeasible due to its
size."*  This module provides that solution concept:

* :class:`SearchObjective` — a cheap, absolute stand-in for the PRA scores:
  performance is measured as upload-capacity utilisation of a homogeneous
  run (so no normalisation over the whole space is needed), robustness and
  aggressiveness as win rates against a fixed *opponent panel* rather than
  against every other protocol.  The three are combined with configurable
  weights.  Evaluations are memoised, so search algorithms can revisit
  points for free.
* :func:`protocol_neighbors` — the one-step neighbourhood of a protocol in
  the design space (change a single dimension by one step).
* :class:`HillClimbingSearch` — random-restart steepest-ascent hill climbing
  over that neighbourhood structure.
* :class:`EvolutionarySearch` — a (mu + lambda)-style evolutionary search
  with mutation (random neighbour) and uniform crossover over the protocol
  dimensions.

Both searchers respect a global evaluation budget and return a
:class:`SearchResult` with the best protocol found and the full evaluation
trajectory, which the ablation benchmark compares against an exhaustive scan
of a reduced space.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.encounter import run_encounter
from repro.core.pra import PRAConfig
from repro.core.protocol import Protocol
from repro.core.space import DesignSpace
from repro.runner.jobs import SimulationJob
from repro.runner.runner import ExperimentRunner, get_default_runner
from repro.sim.behavior import (
    ALLOCATION_POLICIES,
    CANDIDATE_POLICIES,
    MAX_PARTNERS,
    MAX_STRANGERS,
    RANKING_FUNCTIONS,
    PeerBehavior,
)
from repro.utils.rng import derive_seed

__all__ = [
    "ObjectiveValue",
    "SearchObjective",
    "protocol_neighbors",
    "SearchResult",
    "HillClimbingSearch",
    "EvolutionarySearch",
]


@dataclass(frozen=True)
class ObjectiveValue:
    """The decomposed objective of one protocol evaluation."""

    score: float
    performance: float
    robustness: float
    aggressiveness: float


class SearchObjective:
    """Weighted PRA-style objective evaluated against a fixed opponent panel.

    Parameters
    ----------
    opponents:
        The opponent panel used for the robustness/aggressiveness win rates.
        A small panel of representative protocols (e.g. the named protocols
        plus a freerider) keeps evaluations cheap while still punishing
        exploitable designs.
    config:
        PRA configuration providing the simulation parameters, the number of
        runs and the population splits.
    performance_weight, robustness_weight, aggressiveness_weight:
        Non-negative weights of the three measures in the scalar score
        (normalised internally so the score stays in [0, 1]).
    runner:
        Experiment runner executing the evaluation simulations (defaults to
        the process-wide runner).
    """

    def __init__(
        self,
        opponents: Sequence[Protocol],
        config: PRAConfig,
        performance_weight: float = 1.0,
        robustness_weight: float = 1.0,
        aggressiveness_weight: float = 0.0,
        runner: Optional[ExperimentRunner] = None,
    ):
        if not opponents:
            raise ValueError("the opponent panel must contain at least one protocol")
        weights = (performance_weight, robustness_weight, aggressiveness_weight)
        if any(w < 0 for w in weights):
            raise ValueError("objective weights must be non-negative")
        if sum(weights) <= 0:
            raise ValueError("at least one objective weight must be positive")
        self.opponents = list(opponents)
        self.config = config
        self.runner = runner
        self._weights = weights
        self._cache: Dict[str, ObjectiveValue] = {}
        self._evaluations = 0

    # ------------------------------------------------------------------ #
    # bookkeeping
    # ------------------------------------------------------------------ #
    @property
    def evaluations(self) -> int:
        """Number of *distinct* protocols evaluated so far."""
        return self._evaluations

    def cached(self, protocol: Protocol) -> Optional[ObjectiveValue]:
        """The memoised value for ``protocol``, if it has been evaluated."""
        return self._cache.get(protocol.label)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _measure_performance(self, protocol: Protocol) -> float:
        jobs = [
            SimulationJob(
                config=self.config.sim,
                behaviors=(protocol.behavior,),
                seed=derive_seed(
                    self.config.seed, f"search/performance/{protocol.label}/{run_index}"
                ),
            )
            for run_index in range(self.config.performance_runs)
        ]
        results = (self.runner or get_default_runner()).run(jobs)
        total = 0.0
        for result in results:
            total += result.utilization()
        return total / self.config.performance_runs

    def _win_rate(self, protocol: Protocol, fraction: float) -> float:
        wins = 0
        games = 0
        for opponent in self.opponents:
            if opponent.behavior == protocol.behavior:
                continue
            outcome = run_encounter(
                protocol,
                opponent,
                self.config.sim,
                fraction_a=fraction,
                runs=self.config.encounter_runs,
                seed=derive_seed(self.config.seed, f"search/{fraction}/{protocol.label}"),
                runner=self.runner,
            )
            wins += outcome.wins_a
            games += outcome.runs
        return wins / games if games else 1.0

    def evaluate(self, protocol: Protocol) -> ObjectiveValue:
        """Evaluate (or look up) the objective value of ``protocol``."""
        cached = self._cache.get(protocol.label)
        if cached is not None:
            return cached

        performance = self._measure_performance(protocol)
        robustness = self._win_rate(protocol, self.config.robustness_split)
        aggressiveness = (
            self._win_rate(protocol, self.config.aggressiveness_split)
            if self._weights[2] > 0
            else 0.0
        )
        w_p, w_r, w_a = self._weights
        score = (w_p * performance + w_r * robustness + w_a * aggressiveness) / (
            w_p + w_r + w_a
        )
        value = ObjectiveValue(
            score=score,
            performance=performance,
            robustness=robustness,
            aggressiveness=aggressiveness,
        )
        self._cache[protocol.label] = value
        self._evaluations += 1
        return value


def protocol_neighbors(protocol: Protocol, space: DesignSpace) -> List[Protocol]:
    """One-step neighbours of ``protocol`` within ``space``.

    A neighbour differs in exactly one dimension: the stranger policy, the
    number of strangers (±1), the candidate list, the ranking function, the
    number of partners (±1) or the allocation policy.  Only behaviours that
    are actual points of ``space`` are returned.
    """
    behavior = protocol.behavior
    candidates: List[PeerBehavior] = []

    for policy in ("none", "periodic", "when_needed", "defect"):
        if policy == behavior.stranger_policy:
            continue
        h = 0 if policy == "none" else max(1, behavior.stranger_count)
        candidates.append(behavior.with_(stranger_policy=policy, stranger_count=h))
    for delta in (-1, 1):
        h = behavior.stranger_count + delta
        if 1 <= h <= MAX_STRANGERS and behavior.stranger_policy not in ("none",):
            candidates.append(behavior.with_(stranger_count=h))
    for candidate_policy in CANDIDATE_POLICIES:
        if candidate_policy != behavior.candidate_policy:
            candidates.append(behavior.with_(candidate_policy=candidate_policy))
    for ranking in RANKING_FUNCTIONS:
        if ranking != behavior.ranking:
            candidates.append(behavior.with_(ranking=ranking))
    for delta in (-1, 1):
        k = behavior.partner_count + delta
        if 0 <= k <= MAX_PARTNERS:
            candidates.append(behavior.with_(partner_count=k))
    for allocation in ALLOCATION_POLICIES:
        if allocation != behavior.allocation:
            candidates.append(behavior.with_(allocation=allocation))

    neighbors: List[Protocol] = []
    seen = set()
    for neighbor_behavior in candidates:
        if neighbor_behavior == behavior:
            continue
        try:
            index = space.index_of(neighbor_behavior)
        except KeyError:
            continue
        canonical = space.protocol(index)
        if canonical.label in seen:
            continue
        seen.add(canonical.label)
        neighbors.append(canonical)
    return neighbors


@dataclass
class SearchResult:
    """Outcome of a heuristic design-space search."""

    best_protocol: Protocol
    best_value: ObjectiveValue
    evaluations: int
    trajectory: List[Tuple[str, float]] = field(default_factory=list)

    @property
    def best_score(self) -> float:
        return self.best_value.score


class HillClimbingSearch:
    """Random-restart steepest-ascent hill climbing over the design space.

    Parameters
    ----------
    space:
        The design space searched.
    objective:
        The evaluation objective (shared across restarts; its memo persists).
    max_evaluations:
        Global budget of distinct protocol evaluations.
    restarts:
        Number of random restarts (each starts from a random space point).
    seed:
        Seed of the search's private random generator.
    """

    def __init__(
        self,
        space: DesignSpace,
        objective: SearchObjective,
        max_evaluations: int = 100,
        restarts: int = 3,
        seed: int = 0,
    ):
        if max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if restarts < 1:
            raise ValueError("restarts must be >= 1")
        self.space = space
        self.objective = objective
        self.max_evaluations = max_evaluations
        self.restarts = restarts
        self._rng = random.Random(seed)

    def _budget_left(self) -> bool:
        return self.objective.evaluations < self.max_evaluations

    def run(self, start: Optional[Protocol] = None) -> SearchResult:
        """Run the search and return the best protocol found."""
        trajectory: List[Tuple[str, float]] = []
        best_protocol: Optional[Protocol] = None
        best_value: Optional[ObjectiveValue] = None

        for restart in range(self.restarts):
            if not self._budget_left():
                break
            if start is not None and restart == 0:
                current = self.space.protocol(self.space.index_of(start.behavior))
            else:
                current = self.space.protocol(self._rng.randrange(len(self.space)))
            current_value = self.objective.evaluate(current)
            trajectory.append((current.label, current_value.score))

            improved = True
            while improved and self._budget_left():
                improved = False
                neighbors = protocol_neighbors(current, self.space)
                self._rng.shuffle(neighbors)
                best_neighbor = None
                best_neighbor_value = None
                for neighbor in neighbors:
                    if not self._budget_left():
                        break
                    value = self.objective.evaluate(neighbor)
                    trajectory.append((neighbor.label, value.score))
                    if best_neighbor_value is None or value.score > best_neighbor_value.score:
                        best_neighbor, best_neighbor_value = neighbor, value
                if (
                    best_neighbor is not None
                    and best_neighbor_value.score > current_value.score
                ):
                    current, current_value = best_neighbor, best_neighbor_value
                    improved = True

            if best_value is None or current_value.score > best_value.score:
                best_protocol, best_value = current, current_value

        assert best_protocol is not None and best_value is not None
        return SearchResult(
            best_protocol=best_protocol,
            best_value=best_value,
            evaluations=self.objective.evaluations,
            trajectory=trajectory,
        )


class EvolutionarySearch:
    """(mu + lambda)-style evolutionary search over the design space.

    Each generation keeps the ``elite`` best individuals, fills the rest of
    the population with offspring produced by uniform crossover of two
    tournament-selected parents followed by mutation (a random one-step
    neighbour), and re-evaluates everyone through the shared objective memo.
    """

    def __init__(
        self,
        space: DesignSpace,
        objective: SearchObjective,
        population_size: int = 8,
        generations: int = 5,
        elite: int = 2,
        mutation_probability: float = 0.5,
        max_evaluations: int = 150,
        seed: int = 0,
    ):
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= elite < population_size:
            raise ValueError("elite must be in [1, population_size)")
        if generations < 1:
            raise ValueError("generations must be >= 1")
        if not 0.0 <= mutation_probability <= 1.0:
            raise ValueError("mutation_probability must be in [0, 1]")
        self.space = space
        self.objective = objective
        self.population_size = population_size
        self.generations = generations
        self.elite = elite
        self.mutation_probability = mutation_probability
        self.max_evaluations = max_evaluations
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------ #
    # genetic operators
    # ------------------------------------------------------------------ #
    def _crossover(self, parent_a: Protocol, parent_b: Protocol) -> Protocol:
        a, b = parent_a.behavior, parent_b.behavior
        pick = lambda x, y: x if self._rng.random() < 0.5 else y  # noqa: E731
        stranger_policy = pick(a.stranger_policy, b.stranger_policy)
        if stranger_policy == "none":
            stranger_count = 0
        else:
            stranger_count = max(1, pick(a.stranger_count, b.stranger_count))
        child = PeerBehavior(
            stranger_policy=stranger_policy,
            stranger_count=stranger_count,
            candidate_policy=pick(a.candidate_policy, b.candidate_policy),
            ranking=pick(a.ranking, b.ranking),
            partner_count=pick(a.partner_count, b.partner_count),
            allocation=pick(a.allocation, b.allocation),
        )
        return self.space.protocol(self.space.index_of(child))

    def _mutate(self, protocol: Protocol) -> Protocol:
        if self._rng.random() >= self.mutation_probability:
            return protocol
        neighbors = protocol_neighbors(protocol, self.space)
        if not neighbors:
            return protocol
        return self._rng.choice(neighbors)

    def _tournament_select(self, scored: List[Tuple[Protocol, ObjectiveValue]]) -> Protocol:
        contenders = self._rng.sample(scored, min(2, len(scored)))
        return max(contenders, key=lambda item: item[1].score)[0]

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #
    def run(self, initial_population: Optional[Sequence[Protocol]] = None) -> SearchResult:
        """Run the evolutionary search and return the best protocol found."""
        if initial_population:
            population = [
                self.space.protocol(self.space.index_of(p.behavior))
                for p in initial_population
            ]
        else:
            population = [
                self.space.protocol(self._rng.randrange(len(self.space)))
                for _ in range(self.population_size)
            ]
        while len(population) < self.population_size:
            population.append(self.space.protocol(self._rng.randrange(len(self.space))))

        trajectory: List[Tuple[str, float]] = []

        def evaluate_all(members: Sequence[Protocol]) -> List[Tuple[Protocol, ObjectiveValue]]:
            scored = []
            for member in members:
                if self.objective.evaluations >= self.max_evaluations and \
                        self.objective.cached(member) is None:
                    continue
                value = self.objective.evaluate(member)
                trajectory.append((member.label, value.score))
                scored.append((member, value))
            return scored

        scored = evaluate_all(population)
        for _generation in range(self.generations):
            if self.objective.evaluations >= self.max_evaluations:
                break
            scored.sort(key=lambda item: item[1].score, reverse=True)
            next_population = [protocol for protocol, _value in scored[: self.elite]]
            while len(next_population) < self.population_size:
                parent_a = self._tournament_select(scored)
                parent_b = self._tournament_select(scored)
                child = self._mutate(self._crossover(parent_a, parent_b))
                next_population.append(child)
            scored = evaluate_all(next_population)

        scored.sort(key=lambda item: item[1].score, reverse=True)
        best_protocol, best_value = scored[0]
        return SearchResult(
            best_protocol=best_protocol,
            best_value=best_value,
            evaluations=self.objective.evaluations,
            trajectory=trajectory,
        )
