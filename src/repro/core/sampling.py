"""Sampling strategies over the protocol design space.

The full PRA sweep over all 3270 protocols is a cluster-scale job (the paper
reports roughly 107 million simulation runs).  DSA explicitly allows both an
exhaustive scan and cheaper systematic explorations; this module provides the
two samplers used throughout the experiments:

* **random** — a uniform sample of the space;
* **stratified** — protocols are grouped by their categorical coordinates
  (stranger policy, ranking function, allocation policy) and the sample is
  drawn round-robin across groups, so every actualization of every dimension
  is represented even in small samples.  This is what keeps the Table 3
  regression estimable on a laptop-sized subsample.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.protocol import Protocol

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.core.space import DesignSpace

__all__ = ["sample_protocols"]


def _stratified_sample(space: "DesignSpace", count: int, rng: random.Random) -> List[Protocol]:
    groups: Dict[tuple, List[int]] = {}
    for index in range(len(space)):
        protocol = space.protocol(index)
        coords = protocol.coordinates()
        key = (coords["stranger"], coords["ranking"], coords["allocation"])
        groups.setdefault(key, []).append(index)

    group_keys = sorted(groups.keys())
    rng.shuffle(group_keys)
    for key in group_keys:
        rng.shuffle(groups[key])

    selected: List[int] = []
    # Round-robin over groups until the requested count is reached.
    position = 0
    while len(selected) < count and any(groups[key] for key in group_keys):
        key = group_keys[position % len(group_keys)]
        position += 1
        if groups[key]:
            selected.append(groups[key].pop())
    return [space.protocol(i) for i in selected]


def sample_protocols(
    space: "DesignSpace",
    count: int,
    seed: int = 0,
    method: str = "stratified",
    include: Optional[Sequence[Protocol]] = None,
) -> List[Protocol]:
    """Sample ``count`` distinct protocols from ``space``.

    Parameters
    ----------
    space:
        The design space to sample from.
    count:
        Number of protocols to return (capped at the size of the space).
    seed:
        Seed of the sampling RNG.
    method:
        ``"stratified"`` or ``"random"``.
    include:
        Protocols that must be part of the sample (e.g. Birds, the reference
        BitTorrent).  They are re-anchored to their space ids and count
        towards ``count``.

    Returns
    -------
    list of Protocol
        Distinct protocols, each carrying its id within ``space``.
    """
    if count < 1:
        raise ValueError("count must be at least 1")
    if method not in ("stratified", "random"):
        raise ValueError(f"unknown sampling method {method!r}")
    count = min(count, len(space))
    rng = random.Random(seed)

    forced: List[Protocol] = []
    forced_ids = set()
    for protocol in include or []:
        index = space.index_of(protocol.behavior)
        if index not in forced_ids:
            forced_ids.add(index)
            forced.append(
                Protocol(
                    behavior=space.protocol(index).behavior,
                    protocol_id=index,
                    name=protocol.name,
                )
            )
    if len(forced) > count:
        raise ValueError(
            f"include list has {len(forced)} protocols but only {count} were requested"
        )

    remaining = count - len(forced)
    if method == "random":
        candidates = [i for i in range(len(space)) if i not in forced_ids]
        chosen = rng.sample(candidates, min(remaining, len(candidates)))
        sampled = [space.protocol(i) for i in chosen]
    else:
        sampled = []
        for protocol in _stratified_sample(space, remaining + len(forced), rng):
            if protocol.protocol_id in forced_ids:
                continue
            sampled.append(protocol)
            if len(sampled) >= remaining:
                break

    return forced + sampled
