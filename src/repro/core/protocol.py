"""Protocols as points in the actualized design space.

A :class:`Protocol` wraps an executable :class:`~repro.sim.behavior.PeerBehavior`
with design-space metadata: its index in the enumerated space (when it comes
from a :class:`~repro.core.space.DesignSpace`), its dimension codes (B/C/I/R
plus the numeric ``h`` and ``k``), and convenience predicates (is it a
freerider?  a Birds variant?).  The regression analysis of Table 3 is driven
directly by :meth:`Protocol.coordinates`.

The module also provides the named protocols the paper keeps referring to:

* :func:`bittorrent_reference` — the reference BitTorrent behaviour mapped
  onto the abstract space (TFT candidate list, Sort Fastest, equal split,
  periodic optimistic unchoke);
* :func:`birds_protocol` — the Nash-equilibrium variant of Section 2.3
  (Sort Proximity, equal split);
* :func:`loyal_when_needed` — the DSA-discovered protocol validated in
  Section 5 (Sort Loyal ranking, When-needed stranger policy);
* :func:`sort_s` — the counter-intuitive top performer of Section 4.4
  (Sort Slowest, defect on strangers, one partner);
* :func:`random_ranking_protocol` — the Random-ranking protocol compared in
  Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim.behavior import (
    ALLOCATION_CODES,
    CANDIDATE_POLICY_CODES,
    RANKING_CODES,
    STRANGER_POLICY_CODES,
    PeerBehavior,
)

__all__ = [
    "Protocol",
    "bittorrent_reference",
    "birds_protocol",
    "loyal_when_needed",
    "sort_s",
    "random_ranking_protocol",
]

#: Dimension-code tables, aliased under this module's historical names —
#: the canonical definitions live next to the policy tuples in
#: :mod:`repro.sim.behavior`, shared with the behaviour labels.
STRANGER_CODES = STRANGER_POLICY_CODES
CANDIDATE_CODES = CANDIDATE_POLICY_CODES


@dataclass(frozen=True)
class Protocol:
    """One protocol variant: an executable behaviour plus design-space metadata.

    Parameters
    ----------
    behavior:
        The executable actualization.
    protocol_id:
        Index of the protocol within an enumerated design space, or ``None``
        for ad-hoc protocols constructed outside a space.
    name:
        Optional human-readable name (e.g. ``"Birds"``); defaults to the
        compact behaviour label.
    """

    behavior: PeerBehavior
    protocol_id: Optional[int] = None
    name: Optional[str] = None

    # ------------------------------------------------------------------ #
    # identity and labels
    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """Compact dimension-code label, e.g. ``"B2h2-C1-I5k7-R2"``."""
        return self.behavior.label()

    @property
    def display_name(self) -> str:
        """The protocol's name if given, else its compact label."""
        return self.name if self.name else self.label

    @property
    def key(self) -> str:
        """Stable string key for dictionaries and JSON (id if present, else label)."""
        return str(self.protocol_id) if self.protocol_id is not None else self.label

    # ------------------------------------------------------------------ #
    # design-space coordinates (used by the Table 3 regression)
    # ------------------------------------------------------------------ #
    def coordinates(self) -> Dict[str, object]:
        """The protocol's position along every design dimension.

        Returns a mapping with the categorical codes (``stranger``,
        ``candidate``, ``ranking``, ``allocation``) and the numeric
        covariates (``h`` — number of strangers, ``k`` — number of partners).
        """
        b = self.behavior
        return {
            "stranger": STRANGER_CODES[b.stranger_policy],
            "h": b.stranger_count,
            "candidate": CANDIDATE_CODES[b.candidate_policy],
            "ranking": RANKING_CODES[b.ranking],
            "k": b.partner_count,
            "allocation": ALLOCATION_CODES[b.allocation],
        }

    # ------------------------------------------------------------------ #
    # predicates used by the analysis narrative
    # ------------------------------------------------------------------ #
    @property
    def is_freerider(self) -> bool:
        """Whether the protocol gives nothing to partners (R3)."""
        return self.behavior.allocation == "freeride"

    @property
    def defects_on_strangers(self) -> bool:
        """Whether the protocol never gives resources to strangers."""
        return self.behavior.stranger_policy in ("defect", "none")

    @property
    def is_birds_variant(self) -> bool:
        """Whether the protocol "at the very least ranks others by Proximity
        and employs Equal Split reciprocation" (Section 4.4.2)."""
        return (
            self.behavior.ranking == "proximity"
            and self.behavior.allocation == "equal_split"
        )

    @property
    def number_of_partners(self) -> int:
        """``k``: the number of partners the protocol maintains."""
        return self.behavior.partner_count

    @property
    def number_of_strangers(self) -> int:
        """``h``: the number of strangers the protocol deals with at a time."""
        return self.behavior.stranger_count

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "protocol_id": self.protocol_id,
            "name": self.name,
            "behavior": self.behavior.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Protocol":
        """Inverse of :meth:`as_dict`."""
        raw_id = data.get("protocol_id")
        return cls(
            behavior=PeerBehavior.from_dict(dict(data["behavior"])),
            protocol_id=None if raw_id is None else int(raw_id),
            name=data.get("name") or None,
        )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.display_name


# ---------------------------------------------------------------------- #
# named protocols
# ---------------------------------------------------------------------- #
def bittorrent_reference(partner_count: int = 4) -> Protocol:
    """The reference BitTorrent client mapped onto the abstract design space.

    Regular unchokes reciprocate with the fastest uploaders (TFT candidate
    list, Sort Fastest, Equal Split); the optimistic unchoke is a periodic
    single-stranger cooperation.
    """
    return Protocol(
        PeerBehavior(
            stranger_policy="periodic",
            stranger_count=1,
            candidate_policy="tft",
            ranking="fastest",
            partner_count=partner_count,
            allocation="equal_split",
        ),
        name="BitTorrent",
    )


def birds_protocol(partner_count: int = 4) -> Protocol:
    """The Birds protocol of Section 2.3: reciprocate with bandwidth-proximate peers."""
    return Protocol(
        PeerBehavior(
            stranger_policy="periodic",
            stranger_count=1,
            candidate_policy="tft",
            ranking="proximity",
            partner_count=partner_count,
            allocation="equal_split",
        ),
        name="Birds",
    )


def loyal_when_needed(partner_count: int = 4, stranger_count: int = 2) -> Protocol:
    """The DSA-discovered 'Loyal-When-needed' protocol validated in Section 5.

    Uses the Sort Loyal ranking function with the When-needed stranger policy,
    the combination the paper selects because it scores high on both
    Performance and Robustness.
    """
    return Protocol(
        PeerBehavior(
            stranger_policy="when_needed",
            stranger_count=stranger_count,
            candidate_policy="tft",
            ranking="loyal",
            partner_count=partner_count,
            allocation="equal_split",
        ),
        name="Loyal-When-needed",
    )


def sort_s() -> Protocol:
    """The 'Sort-S' protocol of Sections 4.4 and 5.

    The counter-intuitive top performer: always defects on strangers, ranks
    candidates slowest-first and maintains a single partner with equal-split
    allocation (the paper notes it must *not* use Prop Share or it fails to
    bootstrap).
    """
    return Protocol(
        PeerBehavior(
            stranger_policy="defect",
            stranger_count=1,
            candidate_policy="tft",
            ranking="slowest",
            partner_count=1,
            allocation="equal_split",
        ),
        name="Sort-S",
    )


def random_ranking_protocol(partner_count: int = 4) -> Protocol:
    """A protocol identical to reference BitTorrent except for a Random ranking.

    Figure 10 observes that it performs about as well as BitTorrent in a
    homogeneous swarm, recalling the results of Leong et al.
    """
    return Protocol(
        PeerBehavior(
            stranger_policy="periodic",
            stranger_count=1,
            candidate_policy="tft",
            ranking="random",
            partner_count=partner_count,
            allocation="equal_split",
        ),
        name="Random",
    )
