"""Round-robin protocol tournaments.

The PRA quantification "takes the form of a tournament in which each protocol
competes against every other protocol" (Section 1).  :class:`Tournament`
schedules those encounters — either unordered pairs at a symmetric split
(Robustness) or ordered pairs with the first protocol in the minority
(Aggressiveness) — and aggregates per-protocol win counts.

The tournament is deliberately a thin deterministic scheduler on top of
:func:`repro.core.encounter.run_encounter`; all simulation parameters come
from the caller so the same class serves smoke tests, benchmark-scale sweeps
and the full paper-scale study.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.encounter import EncounterOutcome, run_encounter
from repro.core.protocol import Protocol
from repro.sim.config import SimulationConfig

__all__ = ["TournamentOutcome", "Tournament"]

ProgressCallback = Callable[[int, int], None]


@dataclass
class TournamentOutcome:
    """Aggregated result of a round-robin tournament.

    ``scores[key]`` is the fraction of encounter runs won by the protocol
    with that key; ``wins``/``games`` hold the raw counts; ``encounters`` the
    individual :class:`EncounterOutcome` records for downstream analysis.
    """

    mode: str
    scores: Dict[str, float]
    wins: Dict[str, int]
    games: Dict[str, int]
    encounters: List[EncounterOutcome] = field(default_factory=list)

    def ranking(self) -> List[str]:
        """Protocol keys ordered by decreasing score."""
        return sorted(self.scores, key=lambda key: self.scores[key], reverse=True)


class Tournament:
    """Round-robin tournament over a set of protocols.

    Parameters
    ----------
    protocols:
        The competing protocols.  Keys (ids or labels) must be unique.
    sim_config:
        Simulation parameters for every encounter.
    encounter_runs:
        Independent repetitions per pairing (the paper uses 10).
    seed:
        Master seed for all encounters.
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        sim_config: SimulationConfig,
        encounter_runs: int = 10,
        seed: int = 0,
    ):
        keys = [p.key for p in protocols]
        if len(set(keys)) != len(keys):
            raise ValueError("protocol keys must be unique within a tournament")
        if len(protocols) < 2:
            raise ValueError("a tournament needs at least two protocols")
        self.protocols = list(protocols)
        self.sim_config = sim_config
        self.encounter_runs = encounter_runs
        self.seed = seed

    # ------------------------------------------------------------------ #
    # schedules
    # ------------------------------------------------------------------ #
    def _symmetric_pairs(self) -> List[tuple]:
        return list(itertools.combinations(range(len(self.protocols)), 2))

    def _ordered_pairs(self) -> List[tuple]:
        return [
            (i, j)
            for i in range(len(self.protocols))
            for j in range(len(self.protocols))
            if i != j
        ]

    # ------------------------------------------------------------------ #
    # tournaments
    # ------------------------------------------------------------------ #
    def run_symmetric(
        self, split: float = 0.5, progress: Optional[ProgressCallback] = None
    ) -> TournamentOutcome:
        """Tournament over unordered pairs at a symmetric population split.

        A single encounter per pair provides win/loss counts for both
        protocols (this is the Robustness schedule when ``split`` is 0.5).
        """
        keys = [p.key for p in self.protocols]
        wins = {key: 0 for key in keys}
        games = {key: 0 for key in keys}
        encounters: List[EncounterOutcome] = []

        pairs = self._symmetric_pairs()
        for done, (i, j) in enumerate(pairs):
            outcome = run_encounter(
                self.protocols[i],
                self.protocols[j],
                self.sim_config,
                fraction_a=split,
                runs=self.encounter_runs,
                seed=self.seed,
            )
            encounters.append(outcome)
            wins[keys[i]] += outcome.wins_a
            wins[keys[j]] += outcome.wins_b
            games[keys[i]] += outcome.runs
            games[keys[j]] += outcome.runs
            if progress is not None:
                progress(done + 1, len(pairs))

        scores = {
            key: (wins[key] / games[key] if games[key] else 0.0) for key in keys
        }
        return TournamentOutcome(
            mode=f"symmetric@{split:g}",
            scores=scores,
            wins=wins,
            games=games,
            encounters=encounters,
        )

    def run_minority(
        self, minority_fraction: float = 0.1, progress: Optional[ProgressCallback] = None
    ) -> TournamentOutcome:
        """Tournament over ordered pairs with the first protocol in the minority.

        Each protocol is scored only for the encounters in which it is the
        minority (this is the Aggressiveness schedule when
        ``minority_fraction`` is 0.1).
        """
        keys = [p.key for p in self.protocols]
        wins = {key: 0 for key in keys}
        games = {key: 0 for key in keys}
        encounters: List[EncounterOutcome] = []

        pairs = self._ordered_pairs()
        for done, (i, j) in enumerate(pairs):
            outcome = run_encounter(
                self.protocols[i],
                self.protocols[j],
                self.sim_config,
                fraction_a=minority_fraction,
                runs=self.encounter_runs,
                seed=self.seed,
            )
            encounters.append(outcome)
            wins[keys[i]] += outcome.wins_a
            games[keys[i]] += outcome.runs
            if progress is not None:
                progress(done + 1, len(pairs))

        scores = {
            key: (wins[key] / games[key] if games[key] else 0.0) for key in keys
        }
        return TournamentOutcome(
            mode=f"minority@{minority_fraction:g}",
            scores=scores,
            wins=wins,
            games=games,
            encounters=encounters,
        )
