"""Round-robin protocol tournaments.

The PRA quantification "takes the form of a tournament in which each protocol
competes against every other protocol" (Section 1).  :class:`Tournament`
schedules those encounters — either unordered pairs at a symmetric split
(Robustness) or ordered pairs with the first protocol in the minority
(Aggressiveness) — and aggregates per-protocol win counts.

The tournament is deliberately a thin deterministic scheduler on top of
:mod:`repro.core.encounter`; all simulation parameters come from the caller
so the same class serves smoke tests, benchmark-scale sweeps and the full
paper-scale study.  Every encounter of a tournament is described as a batch
of :class:`~repro.runner.jobs.SimulationJob`\\ s and submitted to the
experiment runner in one go, so the whole round-robin parallelises across
worker processes and deduplicates against the result cache; per-job seeds
make the outcome identical to the historical pair-by-pair loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.encounter import (
    EncounterOutcome,
    encounter_jobs,
    outcome_from_results,
)
from repro.core.protocol import Protocol
from repro.runner.runner import ExperimentRunner, get_default_runner
from repro.sim.config import SimulationConfig

__all__ = ["TournamentOutcome", "Tournament"]

ProgressCallback = Callable[[int, int], None]


@dataclass
class TournamentOutcome:
    """Aggregated result of a round-robin tournament.

    ``scores[key]`` is the fraction of encounter runs won by the protocol
    with that key; ``wins``/``games`` hold the raw counts; ``encounters`` the
    individual :class:`EncounterOutcome` records for downstream analysis.
    """

    mode: str
    scores: Dict[str, float]
    wins: Dict[str, int]
    games: Dict[str, int]
    encounters: List[EncounterOutcome] = field(default_factory=list)

    def ranking(self) -> List[str]:
        """Protocol keys ordered by decreasing score."""
        return sorted(self.scores, key=lambda key: self.scores[key], reverse=True)


class Tournament:
    """Round-robin tournament over a set of protocols.

    Parameters
    ----------
    protocols:
        The competing protocols.  Keys (ids or labels) must be unique.
    sim_config:
        Simulation parameters for every encounter.
    encounter_runs:
        Independent repetitions per pairing (the paper uses 10).
    seed:
        Master seed for all encounters.
    runner:
        Experiment runner executing the encounter batches (defaults to the
        process-wide runner).
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        sim_config: SimulationConfig,
        encounter_runs: int = 10,
        seed: int = 0,
        runner: Optional[ExperimentRunner] = None,
    ):
        keys = [p.key for p in protocols]
        if len(set(keys)) != len(keys):
            raise ValueError("protocol keys must be unique within a tournament")
        if len(protocols) < 2:
            raise ValueError("a tournament needs at least two protocols")
        self.protocols = list(protocols)
        self.sim_config = sim_config
        self.encounter_runs = encounter_runs
        self.seed = seed
        self.runner = runner

    # ------------------------------------------------------------------ #
    # schedules
    # ------------------------------------------------------------------ #
    def _symmetric_pairs(self) -> List[tuple]:
        return list(itertools.combinations(range(len(self.protocols)), 2))

    def _ordered_pairs(self) -> List[tuple]:
        return [
            (i, j)
            for i in range(len(self.protocols))
            for j in range(len(self.protocols))
            if i != j
        ]

    # ------------------------------------------------------------------ #
    # batched execution
    # ------------------------------------------------------------------ #
    def _run_pairs(
        self, pairs: Sequence[tuple], fraction_a: float
    ) -> List[EncounterOutcome]:
        """Run every pairing's encounters as one runner batch."""
        batch = []
        for i, j in pairs:
            batch.append(
                encounter_jobs(
                    self.protocols[i],
                    self.protocols[j],
                    self.sim_config,
                    fraction_a=fraction_a,
                    runs=self.encounter_runs,
                    seed=self.seed,
                )
            )
        flat = [job for jobs in batch for job in jobs]
        results = (self.runner or get_default_runner()).run(flat)

        outcomes: List[EncounterOutcome] = []
        cursor = 0
        for (i, j), jobs in zip(pairs, batch):
            pair_results = results[cursor:cursor + len(jobs)]
            cursor += len(jobs)
            outcomes.append(
                outcome_from_results(
                    self.protocols[i], self.protocols[j], fraction_a, pair_results
                )
            )
        return outcomes

    # ------------------------------------------------------------------ #
    # tournaments
    # ------------------------------------------------------------------ #
    def run_symmetric(
        self, split: float = 0.5, progress: Optional[ProgressCallback] = None
    ) -> TournamentOutcome:
        """Tournament over unordered pairs at a symmetric population split.

        A single encounter per pair provides win/loss counts for both
        protocols (this is the Robustness schedule when ``split`` is 0.5).
        """
        keys = [p.key for p in self.protocols]
        wins = {key: 0 for key in keys}
        games = {key: 0 for key in keys}

        pairs = self._symmetric_pairs()
        encounters = self._run_pairs(pairs, fraction_a=split)
        for done, ((i, j), outcome) in enumerate(zip(pairs, encounters)):
            wins[keys[i]] += outcome.wins_a
            wins[keys[j]] += outcome.wins_b
            games[keys[i]] += outcome.runs
            games[keys[j]] += outcome.runs
            if progress is not None:
                progress(done + 1, len(pairs))

        scores = {
            key: (wins[key] / games[key] if games[key] else 0.0) for key in keys
        }
        return TournamentOutcome(
            mode=f"symmetric@{split:g}",
            scores=scores,
            wins=wins,
            games=games,
            encounters=encounters,
        )

    def run_minority(
        self, minority_fraction: float = 0.1, progress: Optional[ProgressCallback] = None
    ) -> TournamentOutcome:
        """Tournament over ordered pairs with the first protocol in the minority.

        Each protocol is scored only for the encounters in which it is the
        minority (this is the Aggressiveness schedule when
        ``minority_fraction`` is 0.1).
        """
        keys = [p.key for p in self.protocols]
        wins = {key: 0 for key in keys}
        games = {key: 0 for key in keys}

        pairs = self._ordered_pairs()
        encounters = self._run_pairs(pairs, fraction_a=minority_fraction)
        for done, ((i, _j), outcome) in enumerate(zip(pairs, encounters)):
            wins[keys[i]] += outcome.wins_a
            games[keys[i]] += outcome.runs
            if progress is not None:
                progress(done + 1, len(pairs))

        scores = {
            key: (wins[key] / games[key] if games[key] else 0.0) for key in keys
        }
        return TournamentOutcome(
            mode=f"minority@{minority_fraction:g}",
            scores=scores,
            wins=wins,
            games=games,
            encounters=encounters,
        )
