"""The generic Parameterization / Actualization framework of DSA (Section 3.1).

Design Space Analysis specifies a design space in two steps:

* **Parameterization** — identify the salient design dimensions of a family
  of protocols (for P2P systems: Peer Discovery, Stranger Policy, Selection
  Function, Resource Allocation — Section 4.1);
* **Actualization** — specify concrete implementations ("actualizations")
  for each dimension (Section 4.2).

This module provides the small, domain-independent vocabulary for that:
:class:`Actualization` (one concrete implementation of a dimension),
:class:`Dimension` (a named dimension with its actualizations) and
:class:`Parameterization` (an ordered set of dimensions with a few
convenience queries).  Two ready-made parameterizations mirror the paper's
examples: the generic P2P protocol space of Section 4.1 and the gossip
protocol example of Section 3.1.

The concrete, executable file-swarming space (including the numeric ``k`` and
``h`` sweeps) lives in :mod:`repro.core.space`; this module is about
describing spaces, which is useful on its own — e.g. to apply DSA to another
domain, one starts by writing down a new :class:`Parameterization`.

It also hosts the **protocol-axis vocabulary** of the robustness atlas
(:mod:`repro.atlas`): the named behaviour axes a grid declaration can sweep
(:data:`BEHAVIOR_AXES`), with :func:`parse_axis_value` /
:func:`parse_axes` accepting either executable field values (``"loyal"``)
or the paper's dimension codes (``"I5"``) — the bridge between the
declared design space and the swept one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.behavior import (
    ALLOCATION_CODES,
    ALLOCATION_POLICIES,
    CANDIDATE_POLICIES,
    CANDIDATE_POLICY_CODES,
    MAX_PARTNERS,
    MAX_STRANGERS,
    RANKING_CODES,
    RANKING_FUNCTIONS,
    STRANGER_POLICIES,
    STRANGER_POLICY_CODES,
)

__all__ = [
    "Actualization",
    "Dimension",
    "Parameterization",
    "BEHAVIOR_AXES",
    "parse_axis_value",
    "parse_axes",
    "generic_p2p_parameterization",
    "gossip_parameterization",
]


#: Behaviour-field axes an atlas grid declaration can sweep, with their
#: admissible values (the Section 4.2 actualizations per dimension).
BEHAVIOR_AXES: Dict[str, Tuple[object, ...]] = {
    "stranger_policy": STRANGER_POLICIES,
    "stranger_count": tuple(range(MAX_STRANGERS + 1)),
    "candidate_policy": CANDIDATE_POLICIES,
    "ranking": RANKING_FUNCTIONS,
    "partner_count": tuple(range(MAX_PARTNERS + 1)),
    "allocation": ALLOCATION_POLICIES,
}

#: Paper dimension code -> behaviour field value, for the coded axes —
#: derived by inverting the canonical value->code tables of
#: :mod:`repro.sim.behavior`, so the parse direction cannot drift from the
#: label direction.
_AXIS_CODES: Dict[str, Dict[str, str]] = {
    axis: {code: value for value, code in table.items()}
    for axis, table in (
        ("stranger_policy", STRANGER_POLICY_CODES),
        ("candidate_policy", CANDIDATE_POLICY_CODES),
        ("ranking", RANKING_CODES),
        ("allocation", ALLOCATION_CODES),
    )
}


def parse_axis_value(axis: str, token: str):
    """One axis value from ``token`` — a field value, paper code or integer.

    ``parse_axis_value("ranking", "I5")`` and
    ``parse_axis_value("ranking", "loyal")`` both yield ``"loyal"``;
    numeric axes (``partner_count``, ``stranger_count``) parse integers.
    Raises ``ValueError`` for unknown axes or inadmissible values.
    """
    if axis not in BEHAVIOR_AXES:
        raise ValueError(
            f"unknown protocol axis {axis!r}; "
            f"expected one of {tuple(BEHAVIOR_AXES)}"
        )
    admissible = BEHAVIOR_AXES[axis]
    token = token.strip()
    codes = _AXIS_CODES.get(axis)
    if codes and token in codes:
        return codes[token]
    if isinstance(admissible[0], int):
        try:
            value: object = int(token)
        except ValueError:
            raise ValueError(
                f"axis {axis!r} takes integers in "
                f"[{admissible[0]}, {admissible[-1]}], got {token!r}"
            ) from None
    else:
        value = token
    if value not in admissible:
        raise ValueError(
            f"value {token!r} is not admissible for axis {axis!r}; "
            f"expected one of {admissible}"
        )
    return value


def parse_axes(text: str) -> Dict[str, Tuple[object, ...]]:
    """Parse an axes declaration like ``"ranking=I1,I5;allocation=R1,R2"``.

    Axes are separated by ``;``, values by ``,``; each value goes through
    :func:`parse_axis_value` (so field values and paper codes mix freely).
    Duplicate axes and duplicate values are rejected.
    """
    axes: Dict[str, Tuple[object, ...]] = {}
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        axis, sep, values_text = clause.partition("=")
        axis = axis.strip()
        if not sep or not values_text.strip():
            raise ValueError(
                f"malformed axis clause {clause!r}; expected axis=v1,v2,..."
            )
        if axis in axes:
            raise ValueError(f"axis {axis!r} declared twice")
        values = tuple(
            parse_axis_value(axis, token) for token in values_text.split(",")
        )
        if len(set(values)) != len(values):
            raise ValueError(f"axis {axis!r} has duplicate values")
        axes[axis] = values
    if not axes:
        raise ValueError("an axes declaration needs at least one axis")
    return axes


@dataclass(frozen=True)
class Actualization:
    """One concrete implementation of a design dimension.

    Parameters
    ----------
    code:
        Short identifier used in tables and labels (e.g. ``"B2"``).
    name:
        Human-readable name (e.g. ``"When needed"``).
    description:
        What the actualization does; typically one sentence.
    """

    code: str
    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.code:
            raise ValueError("an actualization needs a non-empty code")
        if not self.name:
            raise ValueError("an actualization needs a non-empty name")


@dataclass(frozen=True)
class Dimension:
    """A salient design dimension together with its actualizations."""

    name: str
    description: str = ""
    actualizations: Tuple[Actualization, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a dimension needs a non-empty name")
        codes = [a.code for a in self.actualizations]
        if len(set(codes)) != len(codes):
            raise ValueError(f"duplicate actualization codes in dimension {self.name!r}")

    @property
    def cardinality(self) -> int:
        """Number of actualizations specified for this dimension."""
        return len(self.actualizations)

    def actualization(self, code: str) -> Actualization:
        """Look up an actualization by its code (raises ``KeyError`` if absent)."""
        for act in self.actualizations:
            if act.code == code:
                return act
        raise KeyError(code)

    def codes(self) -> List[str]:
        """The actualization codes, in declaration order."""
        return [a.code for a in self.actualizations]


class Parameterization:
    """An ordered collection of design dimensions.

    The *size* of a parameterization is the number of protocol variants
    obtained by independently choosing one actualization per dimension
    (dimensions without declared actualizations are treated as having a
    single implicit choice, as the paper does for Peer Discovery, which it
    deliberately leaves out of the sweep).
    """

    def __init__(self, name: str, dimensions: Iterable[Dimension]):
        self.name = name
        self._dimensions: Tuple[Dimension, ...] = tuple(dimensions)
        if not self._dimensions:
            raise ValueError("a parameterization needs at least one dimension")
        names = [d.name for d in self._dimensions]
        if len(set(names)) != len(names):
            raise ValueError("dimension names must be unique")

    @property
    def dimensions(self) -> Tuple[Dimension, ...]:
        return self._dimensions

    def dimension(self, name: str) -> Dimension:
        """Look up a dimension by name (raises ``KeyError`` if absent)."""
        for dim in self._dimensions:
            if dim.name == name:
                return dim
        raise KeyError(name)

    def dimension_names(self) -> List[str]:
        return [d.name for d in self._dimensions]

    def size(self) -> int:
        """Number of protocol variants implied by the actualizations."""
        total = 1
        for dim in self._dimensions:
            total *= max(1, dim.cardinality)
        return total

    def describe(self) -> str:
        """A printable multi-line description of the parameterization."""
        lines = [f"Parameterization: {self.name} ({self.size()} variants)"]
        for dim in self._dimensions:
            lines.append(f"  {dim.name}: {dim.description}")
            for act in dim.actualizations:
                lines.append(f"    [{act.code}] {act.name} - {act.description}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Parameterization({self.name!r}, {len(self._dimensions)} dimensions)"


def generic_p2p_parameterization() -> Parameterization:
    """The generic P2P protocol design space of Section 4.1.

    Peer Discovery is included as a dimension (it is salient) but carries no
    swept actualizations, matching the paper's choice to fix it ("all peers
    can connect to each other").
    """
    return Parameterization(
        "Generic P2P protocol design space",
        [
            Dimension(
                "Peer Discovery",
                "How peers find partners for productive interactions "
                "(timing and nature of the discovery policy).",
            ),
            Dimension(
                "Stranger Policy",
                "How resources are allocated to peers with no interaction history.",
                (
                    Actualization("B1", "Periodic", "Give resources to up to h strangers periodically."),
                    Actualization("B2", "When needed", "Give to strangers only when the partner set is not full."),
                    Actualization("B3", "Defect", "Never give resources to strangers."),
                ),
            ),
            Dimension(
                "Selection Function",
                "Which known peers are selected for interaction (candidate list, "
                "ranking and number of partners).",
                (
                    Actualization("C1", "TFT candidate list", "Candidates are peers that reciprocated in the last round."),
                    Actualization("C2", "TF2T candidate list", "Candidates are peers that reciprocated in either of the last two rounds."),
                    Actualization("I1", "Sort Fastest", "Rank candidates fastest first."),
                    Actualization("I2", "Sort Slowest", "Rank candidates slowest first."),
                    Actualization("I3", "Sort Proximity", "Rank by proximity to one's own upload bandwidth (Birds)."),
                    Actualization("I4", "Sort Adaptive", "Rank by proximity to an adaptive aspiration level."),
                    Actualization("I5", "Sort Loyal", "Rank by duration of continuous cooperation."),
                    Actualization("I6", "Random", "Do not rank; choose randomly."),
                ),
            ),
            Dimension(
                "Resource Allocation",
                "How upload resources are divided among the selected peers.",
                (
                    Actualization("R1", "Equal Split", "All selected peers receive equal resources."),
                    Actualization("R2", "Prop Share", "Resources proportional to past contribution."),
                    Actualization("R3", "Freeride", "Give nothing to partners."),
                ),
            ),
        ],
    )


def gossip_parameterization() -> Parameterization:
    """The gossip-protocol example parameterization sketched in Section 3.1."""
    return Parameterization(
        "Gossip protocol design space (illustrative)",
        [
            Dimension(
                "Selection Function",
                "How partners are chosen for exchanging data.",
                (
                    Actualization("G1", "Random", "Choose partners randomly."),
                    Actualization("G2", "Best", "Choose partners who have given the best service."),
                    Actualization("G3", "Loyal", "Choose the most loyal partners."),
                    Actualization("G4", "Similarity", "Choose partners based on similarity."),
                ),
            ),
            Dimension(
                "Periodicity",
                "How often data exchange takes place.",
                (
                    Actualization("P1", "Every round", "Exchange every round."),
                    Actualization("P2", "Lazy", "Exchange every few rounds."),
                ),
            ),
            Dimension(
                "Filtering Function",
                "Which data items are selected for exchange.",
                (
                    Actualization("F1", "Newest first", "Prefer the most recent items."),
                    Actualization("F2", "Rarest first", "Prefer the least replicated items."),
                ),
            ),
            Dimension(
                "Record Maintenance",
                "How the local database of records is maintained.",
                (
                    Actualization("M1", "Keep all", "Never evict records."),
                    Actualization("M2", "Sliding window", "Keep only recent records."),
                ),
            ),
        ],
    )
