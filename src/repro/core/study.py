"""PRA study driver: performance runs plus both tournaments, with caching.

A :class:`PRAStudy` evaluates a set of protocols under a
:class:`~repro.core.pra.PRAConfig` and produces a
:class:`~repro.core.results.PRAStudyResult`.  Because every Section 4.4
figure and the Table 3 regression consume the *same* sweep, the study
supports two layers of caching:

* an in-process memo keyed by (protocol set, configuration), so the
  benchmark harness does not repeat the sweep for every figure, and
* an optional on-disk JSON cache, so an expensive sweep can be reused across
  processes (and inspected by hand).

Below these study-level caches sits the experiment runner
(:mod:`repro.runner`): every simulation of the sweep goes through it, so a
study additionally benefits from per-run result caching and process
parallelism (``PRAStudy(..., runner=ExperimentRunner(jobs=8, ...))``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.pra import (
    PRAConfig,
    aggressiveness_tournament,
    measure_performance,
    normalize_scores,
    robustness_tournament,
)
from repro.core.protocol import Protocol
from repro.core.results import PRAStudyResult
from repro.runner.runner import ExperimentRunner
from repro.utils.logging import get_logger

__all__ = ["PRAStudy"]

_LOGGER = get_logger("core.study")

#: In-process study memo shared by all PRAStudy instances.
_MEMO: Dict[str, PRAStudyResult] = {}


def _config_fingerprint(protocols: Sequence[Protocol], config: PRAConfig) -> str:
    """A stable hash of everything that determines the study outcome."""
    sim = config.sim
    payload = {
        "protocols": [p.behavior.as_dict() for p in protocols],
        "sim": {
            "n_peers": sim.n_peers,
            "rounds": sim.rounds,
            "churn_rate": sim.churn_rate,
            "requests_per_round": sim.requests_per_round,
            "discovery_per_round": sim.discovery_per_round,
            "warmup_rounds": sim.warmup_rounds,
            "stranger_bandwidth_cap": sim.stranger_bandwidth_cap,
            "history_rounds": sim.history_rounds,
            "aspiration_smoothing": sim.aspiration_smoothing,
            "bandwidth": repr(sim.distribution()),
        },
        "performance_runs": config.performance_runs,
        "encounter_runs": config.encounter_runs,
        "robustness_split": config.robustness_split,
        "aggressiveness_split": config.aggressiveness_split,
        "seed": config.seed,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class PRAStudy:
    """Evaluate Performance, Robustness and Aggressiveness for a protocol set.

    Parameters
    ----------
    protocols:
        The protocols under study (a full design space, a sample of one, or
        an ad-hoc list).  Keys must be unique.
    config:
        The PRA configuration (scale, splits, seed).
    cache_dir:
        Optional directory for the on-disk JSON cache.
    runner:
        Experiment runner executing the sweep's simulations (defaults to the
        process-wide runner; pass ``ExperimentRunner(jobs=N, cache_dir=...)``
        for parallel and/or per-run-cached execution).
    """

    def __init__(
        self,
        protocols: Sequence[Protocol],
        config: PRAConfig,
        cache_dir: Optional[Union[str, Path]] = None,
        runner: Optional[ExperimentRunner] = None,
    ):
        keys = [p.key for p in protocols]
        if len(set(keys)) != len(keys):
            raise ValueError("protocol keys must be unique within a study")
        if not protocols:
            raise ValueError("a study needs at least one protocol")
        self.protocols: List[Protocol] = list(protocols)
        self.config = config
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.runner = runner
        self._fingerprint = _config_fingerprint(self.protocols, self.config)

    # ------------------------------------------------------------------ #
    # caching
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Hash identifying this exact study (protocols + configuration)."""
        return self._fingerprint

    def _cache_path(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"pra_study_{self._fingerprint[:16]}.json"

    def _load_cached(self) -> Optional[PRAStudyResult]:
        if self._fingerprint in _MEMO:
            return _MEMO[self._fingerprint]
        path = self._cache_path()
        if path is not None and path.exists():
            result = PRAStudyResult.load(path)
            _MEMO[self._fingerprint] = result
            return result
        return None

    def _store(self, result: PRAStudyResult) -> None:
        _MEMO[self._fingerprint] = result
        path = self._cache_path()
        if path is not None:
            result.save(path)

    @staticmethod
    def clear_memo() -> None:
        """Drop the in-process study memo (mainly for tests)."""
        _MEMO.clear()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, use_cache: bool = True) -> PRAStudyResult:
        """Run (or load) the study and return its result.

        With ``use_cache`` (default) a previously computed result with the
        same fingerprint is returned without re-simulation.
        """
        if use_cache:
            cached = self._load_cached()
            if cached is not None:
                return cached

        n = len(self.protocols)
        _LOGGER.info("PRA study: %d protocols, fingerprint %s", n, self._fingerprint[:12])

        _LOGGER.info("measuring performance (%d runs per protocol)", self.config.performance_runs)
        raw_performance = measure_performance(
            self.protocols, self.config, runner=self.runner
        )
        performance = normalize_scores(raw_performance)

        robustness: Dict[str, float]
        aggressiveness: Dict[str, float]
        if n >= 2:
            _LOGGER.info("robustness tournament (%d pairs)", n * (n - 1) // 2)
            robustness_outcome = robustness_tournament(
                self.protocols, self.config, runner=self.runner
            )
            robustness = dict(robustness_outcome.scores)

            _LOGGER.info("aggressiveness tournament (%d ordered pairs)", n * (n - 1))
            aggressiveness_outcome = aggressiveness_tournament(
                self.protocols, self.config, runner=self.runner
            )
            aggressiveness = dict(aggressiveness_outcome.scores)
        else:
            # A single protocol has no opponents; both tournament measures are
            # vacuously zero.
            only = self.protocols[0].key
            robustness = {only: 0.0}
            aggressiveness = {only: 0.0}

        result = PRAStudyResult(
            protocols=self.protocols,
            performance_raw=raw_performance,
            performance=performance,
            robustness=robustness,
            aggressiveness=aggressiveness,
            metadata={
                "fingerprint": self._fingerprint,
                "n_protocols": n,
                "n_peers": self.config.sim.n_peers,
                "rounds": self.config.sim.rounds,
                "performance_runs": self.config.performance_runs,
                "encounter_runs": self.config.encounter_runs,
                "robustness_split": self.config.robustness_split,
                "aggressiveness_split": self.config.aggressiveness_split,
                "seed": self.config.seed,
            },
        )
        if use_cache:
            self._store(result)
        return result
