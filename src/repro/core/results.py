"""Result containers for PRA studies.

A :class:`PRAStudyResult` holds, for every protocol in a study, its
(normalised) Performance, Robustness and Aggressiveness values together with
the protocol's design-space coordinates.  It is the single data structure
consumed by every Section 4.4 figure and by the Table 3 regression, and it is
JSON round-trippable so an expensive sweep can be persisted and re-analysed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.protocol import Protocol
from repro.stats.correlation import pearson_correlation
from repro.utils.serialization import dump_json, load_json

__all__ = ["PRAStudyResult"]


@dataclass
class PRAStudyResult:
    """Per-protocol PRA scores plus study metadata.

    All score dictionaries are keyed by :attr:`Protocol.key`.
    """

    protocols: List[Protocol]
    performance_raw: Dict[str, float]
    performance: Dict[str, float]
    robustness: Dict[str, float]
    aggressiveness: Dict[str, float]
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.protocols)

    def protocol_by_key(self, key: str) -> Protocol:
        """Return the protocol with the given key (raises ``KeyError`` if absent)."""
        for protocol in self.protocols:
            if protocol.key == key:
                return protocol
        raise KeyError(key)

    def keys(self) -> List[str]:
        """Protocol keys in study order."""
        return [p.key for p in self.protocols]

    def scores_of(self, key: str) -> Tuple[float, float, float]:
        """``(performance, robustness, aggressiveness)`` of one protocol."""
        return (
            self.performance[key],
            self.robustness[key],
            self.aggressiveness[key],
        )

    def rows(self) -> List[Dict[str, object]]:
        """One flat record per protocol (coordinates + scores), for tables/regression."""
        records: List[Dict[str, object]] = []
        for protocol in self.protocols:
            record: Dict[str, object] = {"key": protocol.key, "label": protocol.label}
            record.update(protocol.coordinates())
            record["performance"] = self.performance[protocol.key]
            record["robustness"] = self.robustness[protocol.key]
            record["aggressiveness"] = self.aggressiveness[protocol.key]
            records.append(record)
        return records

    # ------------------------------------------------------------------ #
    # rankings and summary statistics used by the Section 4.4 narrative
    # ------------------------------------------------------------------ #
    def _ranked(self, scores: Dict[str, float]) -> List[Tuple[str, float]]:
        return sorted(scores.items(), key=lambda item: item[1], reverse=True)

    def top_by_performance(self, count: int = 10) -> List[Tuple[str, float]]:
        """The ``count`` best-performing protocols as ``(key, score)`` pairs."""
        return self._ranked(self.performance)[:count]

    def top_by_robustness(self, count: int = 10) -> List[Tuple[str, float]]:
        """The ``count`` most robust protocols as ``(key, score)`` pairs."""
        return self._ranked(self.robustness)[:count]

    def top_by_aggressiveness(self, count: int = 10) -> List[Tuple[str, float]]:
        """The ``count`` most aggressive protocols as ``(key, score)`` pairs."""
        return self._ranked(self.aggressiveness)[:count]

    def rank_of(self, key: str, measure: str = "performance") -> int:
        """1-based rank of a protocol under the given measure."""
        scores = getattr(self, measure)
        if key not in scores:
            raise KeyError(key)
        ranked = self._ranked(scores)
        for position, (candidate, _score) in enumerate(ranked, start=1):
            if candidate == key:
                return position
        raise KeyError(key)  # pragma: no cover - unreachable

    def robustness_aggressiveness_correlation(self) -> float:
        """Pearson correlation between robustness and aggressiveness (Figure 8)."""
        keys = self.keys()
        return pearson_correlation(
            [self.robustness[k] for k in keys],
            [self.aggressiveness[k] for k in keys],
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation of the whole study."""
        return {
            "protocols": [p.as_dict() for p in self.protocols],
            "performance_raw": self.performance_raw,
            "performance": self.performance,
            "robustness": self.robustness,
            "aggressiveness": self.aggressiveness,
            "metadata": self.metadata,
        }

    def save(self, path: Union[str, Path]) -> Path:
        """Persist the study result as JSON."""
        return dump_json(self.to_dict(), path)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PRAStudyResult":
        """Inverse of :meth:`to_dict`."""
        protocols = [Protocol.from_dict(p) for p in data["protocols"]]
        return cls(
            protocols=protocols,
            performance_raw={str(k): float(v) for k, v in data["performance_raw"].items()},
            performance={str(k): float(v) for k, v in data["performance"].items()},
            robustness={str(k): float(v) for k, v in data["robustness"].items()},
            aggressiveness={str(k): float(v) for k, v in data["aggressiveness"].items()},
            metadata=dict(data.get("metadata", {})),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PRAStudyResult":
        """Load a study result previously written by :meth:`save`."""
        return cls.from_dict(load_json(path))
