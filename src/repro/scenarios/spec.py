"""Declarative scenario specifications for dynamic and adversarial workloads.

A :class:`ScenarioSpec` composes three orthogonal aspects of a workload:

* **population shape** (:class:`PopulationSpec`) — heterogeneous bandwidth
  classes with exact shares, per-class behaviours and group labels
  (seed/leecher asymmetry, capacity skew);
* **arrival/departure process** (:class:`ArrivalSpec`) — steady-state
  independent churn, a flash crowd (a correlated batch of fresh identities
  joining at once) or repeated burst-churn waves, all layered on the
  per-round model in :mod:`repro.sim.churn`; plus the *variable-population*
  kinds (``"poisson"``, ``"whitewash"``) that compile to
  :class:`~repro.sim.dynamics.PopulationDynamics` and run on the
  variable-population engine, where the active peer count genuinely grows
  and shrinks;
* **behaviour dynamics** (:class:`ShiftSpec`) — a population fraction
  switching protocol at a point in the run (free-rider waves, colluding
  groups switching on).

Specs are frozen, fully serializable (``as_dict``/``from_dict`` round-trip)
and *scale-free*: wave timing and shifted fractions are expressed relative
to the run, so one declaration compiles consistently at ``smoke``, ``bench``
and ``paper`` scale.  :meth:`ScenarioSpec.compile` reduces a spec to a
:class:`~repro.runner.jobs.SimulationJob` — plain engine primitives
(:class:`~repro.sim.config.SimulationConfig` +
:class:`~repro.sim.dynamics.ScenarioDynamics` + per-peer behaviours/groups)
— so scenario runs flow through the cached, parallel
:class:`~repro.runner.runner.ExperimentRunner` like any other simulation,
with deterministic per-spec seeds derived by :meth:`ScenarioSpec.job_seed`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from math import floor
from typing import Dict, List, Optional, Tuple

from repro.runner.jobs import SimulationJob
from repro.sim.bandwidth import MultiClassBandwidth
from repro.sim.behavior import PeerBehavior
from repro.sim.config import SimulationConfig
from repro.sim.dynamics import (
    ArrivalProcess,
    BehaviorShift,
    ChurnWave,
    DepartureProcess,
    PopulationDynamics,
    ScenarioDynamics,
)

__all__ = [
    "ARRIVAL_KINDS",
    "VARIABLE_ARRIVAL_KINDS",
    "SHIFT_KINDS",
    "NETWORK_EVENT_KINDS",
    "SCALE_FACTORS",
    "BandwidthClass",
    "BehaviorGroup",
    "PopulationSpec",
    "ArrivalSpec",
    "ShiftSpec",
    "NetworkEventSpec",
    "ScenarioSpec",
]

#: Variable-population kinds: true arrivals/departures on the variable
#: engine rather than fixed-slot identity replacement.
VARIABLE_ARRIVAL_KINDS = ("poisson", "whitewash")

#: Arrival/departure process kinds.
ARRIVAL_KINDS = ("steady", "flash_crowd", "burst_churn") + VARIABLE_ARRIVAL_KINDS

#: Behaviour-dynamics kinds (``custom`` requires an explicit behaviour).
SHIFT_KINDS = ("none", "free_rider_wave", "colluders", "custom")

#: Network-event kinds (link degradation / partition-and-heal windows).
NETWORK_EVENT_KINDS = ("degrade", "partition")

#: ``scale -> (population factor, rounds factor)`` applied by ``at_scale``.
SCALE_FACTORS = {"paper": (1.0, 1.0), "bench": (0.4, 0.3), "smoke": (0.2, 0.1)}

#: Floors keeping scaled-down scenarios meaningful.
_MIN_PEERS = 8
_MIN_ROUNDS = 16


def _largest_remainder(fractions: List[float], total: int) -> List[int]:
    """Integer counts summing to ``total`` with shares closest to ``fractions``."""
    quotas = [f * total for f in fractions]
    counts = [floor(q) for q in quotas]
    shortfall = total - sum(counts)
    by_remainder = sorted(
        range(len(fractions)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    for i in by_remainder[:shortfall]:
        counts[i] += 1
    return counts


def _spread_ids(n_peers: int, count: int) -> Tuple[int, ...]:
    """``count`` distinct peer ids spread evenly over ``[0, n_peers)``."""
    return tuple((i * n_peers) // count for i in range(count))


@dataclass(frozen=True)
class BandwidthClass:
    """One capacity class of a heterogeneous population.

    ``behavior`` overrides the population's default behaviour for this
    class's peers; ``group`` overrides the group label (defaults to the
    class name, so per-class metrics are separable in results).
    """

    name: str
    fraction: float
    capacity: float
    behavior: Optional[PeerBehavior] = None
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a bandwidth class needs a name")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("class fraction must be in (0, 1]")
        if self.capacity <= 0:
            raise ValueError("class capacity must be positive")

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fraction": self.fraction,
            "capacity": self.capacity,
            "behavior": self.behavior.as_dict() if self.behavior else None,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BandwidthClass":
        behavior = data.get("behavior")
        group = data.get("group")
        return cls(
            name=str(data["name"]),
            fraction=float(data["fraction"]),
            capacity=float(data["capacity"]),
            behavior=PeerBehavior.from_dict(behavior) if behavior else None,
            group=str(group) if group is not None else None,
        )


@dataclass(frozen=True)
class BehaviorGroup:
    """A behaviour-only sub-population (no capacity pinning).

    Unlike :class:`BandwidthClass`, a behaviour group leaves capacities to
    the population's default distribution — which is what makes it legal in
    *variable-population* scenarios, where per-slot capacity pinning is
    meaningless.  Used to seed adversarial sub-populations (e.g. a colluder
    clique) whose members are spread evenly over the id space.
    """

    name: str
    fraction: float
    behavior: PeerBehavior

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a behavior group needs a name")
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("group fraction must be in (0, 1)")

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "fraction": self.fraction,
            "behavior": self.behavior.as_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BehaviorGroup":
        return cls(
            name=str(data["name"]),
            fraction=float(data["fraction"]),
            behavior=PeerBehavior.from_dict(data["behavior"]),
        )


@dataclass(frozen=True)
class PopulationSpec:
    """Population shape: size, default behaviour and optional sub-populations.

    Without classes or groups, capacities come from the Piatek-style default
    distribution and every peer runs ``default_behavior`` in group
    ``"default"``.  With classes (fractions summing to 1), peers are
    assigned to classes with *exact* largest-remainder shares, contiguously
    by peer id; capacities are pinned per class and churn replacements draw
    from the matching :class:`~repro.sim.bandwidth.MultiClassBandwidth`.
    With behaviour ``groups`` (fractions summing below 1; the remainder runs
    the default), members keep default-sampled capacities and are spread
    evenly over the id space — the legal way to seed adversarial
    sub-populations in variable-population scenarios.
    """

    size: int = 50
    default_behavior: PeerBehavior = field(default_factory=PeerBehavior)
    classes: Tuple[BandwidthClass, ...] = ()
    groups: Tuple[BehaviorGroup, ...] = ()

    def __post_init__(self) -> None:
        if self.size < 2:
            raise ValueError("population size must be at least 2")
        if not isinstance(self.classes, tuple):
            object.__setattr__(self, "classes", tuple(self.classes))
        if not isinstance(self.groups, tuple):
            object.__setattr__(self, "groups", tuple(self.groups))
        if self.classes and self.groups:
            raise ValueError(
                "capacity classes and behavior groups are mutually exclusive "
                "(a class already carries a behaviour override)"
            )
        if self.classes:
            total = sum(c.fraction for c in self.classes)
            if abs(total - 1.0) > 1e-6:
                raise ValueError(f"class fractions must sum to 1, got {total}")
            names = [c.name for c in self.classes]
            if len(set(names)) != len(names):
                raise ValueError("class names must be distinct")
        if self.groups:
            total = sum(g.fraction for g in self.groups)
            if total >= 1.0 - 1e-6:
                raise ValueError(
                    f"group fractions must sum below 1 (the remainder runs "
                    f"the default behaviour), got {total}"
                )
            names = [g.name for g in self.groups]
            if len(set(names)) != len(names) or "default" in names:
                raise ValueError(
                    "group names must be distinct and not 'default'"
                )

    def compile(
        self, n_peers: int
    ) -> Tuple[
        Tuple[PeerBehavior, ...],
        Tuple[str, ...],
        Optional[Tuple[float, ...]],
        Optional[MultiClassBandwidth],
    ]:
        """Per-peer ``(behaviors, groups, capacities, replacement distribution)``.

        ``capacities`` and the distribution are ``None`` without classes
        (default Piatek sampling applies).
        """
        if self.groups:
            # Every declared group gets at least one member and at least one
            # default peer survives — a group that compiled to zero members
            # would silently turn group-targeted churn into a no-op, so an
            # impossible fit fails loudly instead.
            if len(self.groups) + 1 > n_peers:
                raise ValueError(
                    f"{len(self.groups)} behaviour groups cannot fit a "
                    f"population of {n_peers} (each group and the default "
                    "need at least one peer)"
                )
            counts = [max(1, round(g.fraction * n_peers)) for g in self.groups]
            while sum(counts) > n_peers - 1:
                # Shrink the largest group first; some count exceeds 1 here
                # because all-ones sums to len(groups) <= n_peers - 1.
                counts[counts.index(max(counts))] -= 1
            behaviors_list = [self.default_behavior] * n_peers
            labels = ["default"] * n_peers
            # Each group's members are spread evenly over the ids still
            # unassigned, mirroring how behaviour shifts spread their
            # targets (and keeping multiple groups disjoint).
            remaining = list(range(n_peers))
            for grp, count in zip(self.groups, counts):
                chosen = [
                    remaining[(i * len(remaining)) // count] for i in range(count)
                ]
                for pid in chosen:
                    behaviors_list[pid] = grp.behavior
                    labels[pid] = grp.name
                chosen_set = set(chosen)
                remaining = [pid for pid in remaining if pid not in chosen_set]
            return tuple(behaviors_list), tuple(labels), None, None
        if not self.classes:
            return (
                (self.default_behavior,) * n_peers,
                ("default",) * n_peers,
                None,
                None,
            )
        counts = _largest_remainder([c.fraction for c in self.classes], n_peers)
        behaviors: List[PeerBehavior] = []
        groups: List[str] = []
        capacities: List[float] = []
        for cls_spec, count in zip(self.classes, counts):
            behaviors.extend([cls_spec.behavior or self.default_behavior] * count)
            groups.extend([cls_spec.group or cls_spec.name] * count)
            capacities.extend([cls_spec.capacity] * count)
        distribution = MultiClassBandwidth(
            [(c.fraction, c.capacity) for c in self.classes]
        )
        return tuple(behaviors), tuple(groups), tuple(capacities), distribution

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "size": self.size,
            "default_behavior": self.default_behavior.as_dict(),
            "classes": [c.as_dict() for c in self.classes],
        }
        # Omitted when empty so every pre-group scenario fingerprint (and
        # the seeds derived from it) stays valid.
        if self.groups:
            data["groups"] = [g.as_dict() for g in self.groups]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PopulationSpec":
        return cls(
            size=int(data["size"]),
            default_behavior=PeerBehavior.from_dict(data["default_behavior"]),
            classes=tuple(
                BandwidthClass.from_dict(c) for c in data.get("classes", ())
            ),
            groups=tuple(
                BehaviorGroup.from_dict(g) for g in data.get("groups", ())
            ),
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival/departure process of a scenario.

    Parameters
    ----------
    kind:
        ``"steady"`` — only the base per-round churn;
        ``"flash_crowd"`` — one correlated wave replacing ``size`` of the
        swarm with fresh identities;
        ``"burst_churn"`` — repeated windows of elevated independent churn;
        ``"poisson"`` — *variable population*: a Poisson stream of genuine
        newcomers (expected ``size`` × initial population arrivals per
        round, starting at ``at``) while ``churn_rate`` departures shrink
        the active set;
        ``"whitewash"`` — *variable population*: ``churn_rate`` true
        departures per round, each re-entering under a fresh identity with
        probability ``size`` (Sybil-style whitewashing).
    churn_rate:
        Base per-peer per-round departure probability (all kinds; for the
        variable kinds, the true-departure rate of the shrink process).
    at:
        Start of the (first) wave — or of the Poisson arrival stream — as a
        fraction of the run.
    size:
        Wave intensity: the replaced fraction (flash crowd), the extra
        per-peer departure probability (burst churn), the per-round arrival
        expectation as a fraction of the initial population (poisson), or
        the whitewash probability per departure (whitewash).
    duration:
        Wave length in rounds.
    period:
        Burst churn only: distance between wave starts, as a fraction of the
        run; waves repeat until the run ends.
    cap:
        Variable kinds only: cap on the active population, as a multiple of
        the initial size (0 — the default — leaves growth unbounded).
    target_groups:
        Whitewash only: restrict rejoins to departures from these behaviour
        groups (*targeted* identity churn — a colluder clique shedding its
        reputation while honest departures leave for good).
    target_churn:
        Whitewash only, with ``target_groups``: extra per-round departure
        probability for the targeted groups on top of ``churn_rate`` — the
        deliberate identity cycling of the adversary.
    """

    kind: str = "steady"
    churn_rate: float = 0.0
    at: float = 0.3
    size: float = 0.0
    duration: int = 1
    period: float = 0.0
    cap: float = 0.0
    target_groups: Tuple[str, ...] = ()
    target_churn: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if not 0.0 <= self.churn_rate < 1.0:
            raise ValueError("churn_rate must be in [0, 1)")
        if not 0.0 <= self.at < 1.0:
            raise ValueError("at must be in [0, 1)")
        if self.duration < 1:
            raise ValueError("duration must be >= 1")
        if self.kind == "flash_crowd" and not 0.0 < self.size <= 1.0:
            raise ValueError("flash crowd size must be in (0, 1]")
        if self.kind == "burst_churn":
            if not 0.0 < self.size < 1.0:
                raise ValueError("burst churn size must be in (0, 1)")
            if not 0.0 < self.period < 1.0:
                raise ValueError("burst churn period must be in (0, 1)")
        if self.kind == "poisson" and self.size <= 0.0:
            raise ValueError("poisson arrivals need size > 0 (rate fraction)")
        if self.kind == "whitewash":
            if not 0.0 < self.size <= 1.0:
                raise ValueError("whitewash size (probability) must be in (0, 1]")
            if self.churn_rate <= 0.0:
                raise ValueError("whitewash needs churn_rate > 0 (departures)")
        if self.cap != 0.0:
            if self.kind not in VARIABLE_ARRIVAL_KINDS:
                raise ValueError("cap only applies to variable-population kinds")
            if self.cap < 1.0:
                raise ValueError("cap must be >= 1 (a multiple of the initial size)")
        if not isinstance(self.target_groups, tuple):
            object.__setattr__(self, "target_groups", tuple(self.target_groups))
        if self.target_groups and self.kind != "whitewash":
            raise ValueError("target_groups only apply to whitewash arrivals")
        if self.target_churn != 0.0:
            if not self.target_groups:
                raise ValueError("target_churn needs target_groups")
            if not 0.0 < self.target_churn < 1.0 or (
                not self.churn_rate + self.target_churn < 1.0
            ):
                raise ValueError(
                    "target_churn must keep the combined departure rate in (0, 1)"
                )

    @property
    def is_variable(self) -> bool:
        """Whether this process needs the variable-population engine."""
        return self.kind in VARIABLE_ARRIVAL_KINDS

    def compile(self, rounds: int) -> Tuple[float, Tuple[ChurnWave, ...]]:
        """Reduce to ``(base churn rate, churn waves)`` for a run of ``rounds``."""
        if self.is_variable:
            raise ValueError(
                f"arrival kind {self.kind!r} compiles to population dynamics; "
                "use compile_population()"
            )
        if self.kind == "steady":
            return self.churn_rate, ()
        start = min(rounds - 1, round(self.at * rounds))
        if self.kind == "flash_crowd":
            wave = ChurnWave(
                start=start,
                rounds=min(self.duration, rounds - start),
                intensity=self.size,
                correlated=True,
            )
            return self.churn_rate, (wave,)
        # burst_churn: waves every `period` from `start` to the end of the run.
        step = max(1, round(self.period * rounds))
        waves = tuple(
            ChurnWave(
                start=wave_start,
                rounds=min(self.duration, rounds - wave_start),
                intensity=self.size,
                correlated=False,
            )
            for wave_start in range(start, rounds, step)
        )
        return self.churn_rate, waves

    def compile_population(self, n_peers: int, rounds: int) -> PopulationDynamics:
        """Reduce a variable kind to engine :class:`PopulationDynamics`.

        Scale-free: the Poisson expectation is ``size`` arrivals per round
        *per initial peer*, the arrival start is the ``at`` fraction of the
        run, and the cap is a multiple of the initial population — so one
        declaration compiles consistently at every scale.
        """
        if not self.is_variable:
            raise ValueError(
                f"arrival kind {self.kind!r} compiles to churn waves; use compile()"
            )
        max_active = round(self.cap * n_peers) if self.cap else 0
        departure = DepartureProcess(
            rate=self.churn_rate,
            mode="shrink",
            group_rates=tuple(
                (group, self.target_churn) for group in self.target_groups
            )
            if self.target_churn
            else (),
        )
        if self.kind == "poisson":
            arrival = ArrivalProcess(
                kind="poisson",
                rate=self.size * n_peers,
                start=min(rounds - 1, round(self.at * rounds)),
            )
        else:  # whitewash
            arrival = ArrivalProcess(
                kind="whitewash",
                rate=self.size,
                whitewash_groups=self.target_groups,
            )
        return PopulationDynamics(
            arrival=arrival, departure=departure, max_active=max_active
        )

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "churn_rate": self.churn_rate,
            "at": self.at,
            "size": self.size,
            "duration": self.duration,
            "period": self.period,
        }
        # Omitted at their defaults so every pre-variable-population (and
        # pre-targeting) scenario fingerprint — and the seeds derived from
        # it — stays valid.
        if self.cap != 0.0:
            data["cap"] = self.cap
        if self.target_groups:
            data["target_groups"] = list(self.target_groups)
        if self.target_churn != 0.0:
            data["target_churn"] = self.target_churn
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ArrivalSpec":
        return cls(
            kind=str(data["kind"]),
            churn_rate=float(data["churn_rate"]),
            at=float(data["at"]),
            size=float(data["size"]),
            duration=int(data["duration"]),
            period=float(data["period"]),
            cap=float(data.get("cap", 0.0)),
            target_groups=tuple(str(g) for g in data.get("target_groups", ())),
            target_churn=float(data.get("target_churn", 0.0)),
        )


#: Default shifted-on behaviour and group label per shift kind.
_SHIFT_DEFAULTS = {
    "free_rider_wave": (PeerBehavior.free_rider, "freerider"),
    "colluders": (PeerBehavior.colluder, "colluder"),
}


@dataclass(frozen=True)
class ShiftSpec:
    """Behaviour dynamics: a population fraction switching protocol mid-run.

    Parameters
    ----------
    kind:
        ``"none"``, ``"free_rider_wave"``, ``"colluders"`` or ``"custom"``.
        The named kinds default the switched-on behaviour and group label
        (:meth:`~repro.sim.behavior.PeerBehavior.free_rider` /
        :meth:`~repro.sim.behavior.PeerBehavior.colluder`).
    at:
        When the shift fires, as a fraction of the run.
    fraction:
        Fraction of the population shifted; the affected peers are spread
        evenly over the id space (and therefore over contiguous classes).
    behavior, group:
        Overrides for the switched-on behaviour / relabelled group.
    """

    kind: str = "none"
    at: float = 0.5
    fraction: float = 0.0
    behavior: Optional[PeerBehavior] = None
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SHIFT_KINDS:
            raise ValueError(
                f"unknown shift kind {self.kind!r}; expected one of {SHIFT_KINDS}"
            )
        if not 0.0 <= self.at < 1.0:
            raise ValueError("at must be in [0, 1)")
        if self.kind == "none":
            if self.fraction != 0.0:
                raise ValueError("shift kind 'none' requires fraction == 0")
        elif not 0.0 < self.fraction <= 1.0:
            raise ValueError("shift fraction must be in (0, 1]")
        if self.kind == "custom" and self.behavior is None:
            raise ValueError("shift kind 'custom' requires an explicit behavior")

    def effective_behavior(self) -> Optional[PeerBehavior]:
        """The behaviour peers switch onto (``None`` for kind ``"none"``)."""
        if self.kind == "none":
            return None
        if self.behavior is not None:
            return self.behavior
        return _SHIFT_DEFAULTS[self.kind][0]()

    def effective_group(self) -> Optional[str]:
        """The group label applied to shifted peers (``None`` keeps labels)."""
        if self.group is not None:
            return self.group
        default = _SHIFT_DEFAULTS.get(self.kind)
        return default[1] if default else None

    def compile(self, n_peers: int, rounds: int) -> Tuple[BehaviorShift, ...]:
        """Reduce to engine :class:`~repro.sim.dynamics.BehaviorShift`\\ s."""
        if self.kind == "none":
            return ()
        count = max(1, round(self.fraction * n_peers))
        return (
            BehaviorShift(
                round=min(rounds - 1, round(self.at * rounds)),
                peer_ids=_spread_ids(n_peers, count),
                behavior=self.effective_behavior(),
                group=self.effective_group(),
            ),
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": self.at,
            "fraction": self.fraction,
            "behavior": self.behavior.as_dict() if self.behavior else None,
            "group": self.group,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ShiftSpec":
        behavior = data.get("behavior")
        group = data.get("group")
        return cls(
            kind=str(data["kind"]),
            at=float(data["at"]),
            fraction=float(data["fraction"]),
            behavior=PeerBehavior.from_dict(behavior) if behavior else None,
            group=str(group) if group is not None else None,
        )


@dataclass(frozen=True)
class NetworkEventSpec:
    """A scheduled network fault, declared scale-free.

    The packet-level swarm substrate injects these faithfully (reduced
    upload budgets, a partition cut blocking transfers until the heal);
    the abstract round engine — which has no link model — approximates
    them as churn via :meth:`to_churn_wave`, so one declaration compiles
    on both substrates.

    Parameters
    ----------
    kind:
        ``"degrade"`` (affected peers upload at ``1 - severity`` of their
        capacity) or ``"partition"`` (affected peers are cut off from the
        rest of the swarm, healing when the window ends).
    at:
        Start of the fault window, as a fraction of the run.
    span:
        Window length, as a fraction of the run.
    fraction:
        Fraction of active peers affected (sampled at the window start).
    severity:
        Degradation factor for ``"degrade"`` (ignored for partitions).
    """

    kind: str
    at: float
    span: float
    fraction: float
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in NETWORK_EVENT_KINDS:
            raise ValueError(
                f"unknown network event kind {self.kind!r}; "
                f"expected one of {NETWORK_EVENT_KINDS}"
            )
        if not 0.0 <= self.at < 1.0:
            raise ValueError("at must be in [0, 1)")
        if not 0.0 < self.span <= 1.0:
            raise ValueError("span must be in (0, 1]")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not 0.0 <= self.severity <= 1.0:
            raise ValueError("severity must be in [0, 1]")

    def start_round(self, rounds: int) -> int:
        """First affected round of a run of ``rounds``."""
        return min(rounds - 1, round(self.at * rounds))

    def span_rounds(self, rounds: int) -> int:
        """Window length in rounds (at least one)."""
        start = self.start_round(rounds)
        return max(1, min(round(self.span * rounds), rounds - start))

    def to_churn_wave(self, rounds: int) -> Optional[ChurnWave]:
        """The round-engine approximation of this fault as a churn wave.

        A partition loses the cut-off peers' accumulated state for its
        duration, which the round engine can only express as correlated
        identity churn of the same fraction.  Degradation bleeds peers'
        effectiveness, approximated as independent churn scaled by
        ``severity``.  Returns ``None`` when the approximation is a no-op
        (zero-severity degradation).
        """
        start = self.start_round(rounds)
        if self.kind == "partition":
            return ChurnWave(
                start=start,
                rounds=self.span_rounds(rounds),
                intensity=self.fraction,
                correlated=True,
            )
        intensity = self.fraction * self.severity
        if intensity <= 0.0:
            return None
        return ChurnWave(
            start=start,
            rounds=self.span_rounds(rounds),
            intensity=intensity,
            correlated=False,
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "at": self.at,
            "span": self.span,
            "fraction": self.fraction,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "NetworkEventSpec":
        return cls(
            kind=str(data["kind"]),
            at=float(data["at"]),
            span=float(data["span"]),
            fraction=float(data["fraction"]),
            severity=float(data.get("severity", 0.5)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete workload scenario: population × arrivals × dynamics.

    ``rounds`` and ``population.size`` are the *paper-scale* declaration;
    :meth:`at_scale` derives the smoke/bench variants, and the fractional
    timing in :class:`ArrivalSpec`/:class:`ShiftSpec` keeps the scaled runs
    qualitatively identical.
    """

    name: str
    population: PopulationSpec = field(default_factory=PopulationSpec)
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    shift: ShiftSpec = field(default_factory=ShiftSpec)
    rounds: int = 200
    description: str = ""
    network: Tuple[NetworkEventSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.rounds < _MIN_ROUNDS:
            raise ValueError(f"rounds must be >= {_MIN_ROUNDS}")
        if not isinstance(self.network, tuple):
            object.__setattr__(self, "network", tuple(self.network))
        if self.network and self.arrival.is_variable:
            raise ValueError(
                "network events are approximated as churn waves on the round "
                "engine and cannot be combined with a variable-population "
                "arrival process"
            )
        if self.arrival.is_variable:
            if self.shift.kind != "none":
                raise ValueError(
                    "behaviour shifts address fixed peer slots and cannot be "
                    "combined with a variable-population arrival process"
                )
            if self.population.classes:
                raise ValueError(
                    "capacity classes pin per-slot capacities and cannot be "
                    "combined with a variable-population arrival process "
                    "(behaviour groups are the variable-safe alternative)"
                )
        if self.arrival.target_groups:
            declared = {g.name for g in self.population.groups}
            declared.add("default")
            missing = [
                g for g in self.arrival.target_groups if g not in declared
            ]
            if missing:
                raise ValueError(
                    f"arrival targets undeclared behaviour groups: {missing}"
                )

    # ------------------------------------------------------------------ #
    # scaling and compilation
    # ------------------------------------------------------------------ #
    def at_scale(self, scale: str) -> "ScenarioSpec":
        """This scenario scaled down to the given run budget."""
        if scale not in SCALE_FACTORS:
            raise ValueError(
                f"scale must be one of {tuple(SCALE_FACTORS)}, got {scale!r}"
            )
        size_factor, rounds_factor = SCALE_FACTORS[scale]
        if size_factor == 1.0 and rounds_factor == 1.0:
            return self
        size = max(_MIN_PEERS, round(self.population.size * size_factor))
        rounds = max(_MIN_ROUNDS, round(self.rounds * rounds_factor))
        # dataclasses.replace keeps every other field by construction, so a
        # field added to either spec type can never be silently dropped here.
        return replace(
            self,
            population=replace(self.population, size=size),
            rounds=rounds,
        )

    def with_default_behavior(self, behavior: PeerBehavior) -> "ScenarioSpec":
        """This scenario with the default population protocol replaced.

        The robustness atlas's protocol-injection point: the sub-populations
        a workload declares (capacity classes with behaviour overrides,
        adversarial behaviour groups, shift targets) are untouched — only
        the peers running the *default* protocol switch to ``behavior``, so
        the workload stays the same while the protocol under test varies.
        """
        return replace(
            self,
            population=replace(self.population, default_behavior=behavior),
        )

    def compile(self, scale: str = "paper", seed: Optional[int] = 0) -> SimulationJob:
        """Reduce this scenario to one executable, cacheable simulation job."""
        spec = self.at_scale(scale)
        n_peers = spec.population.size
        behaviors, groups, capacities, distribution = spec.population.compile(n_peers)
        if spec.arrival.is_variable:
            config = SimulationConfig(
                n_peers=n_peers,
                rounds=spec.rounds,
                bandwidth=distribution,
                population=spec.arrival.compile_population(n_peers, spec.rounds),
            )
            return SimulationJob(
                config=config, behaviors=behaviors, groups=groups, seed=seed
            )
        churn_rate, waves = spec.arrival.compile(spec.rounds)
        # Network faults have no native round-engine form; fold in their
        # churn-wave approximations (a no-op for event-free scenarios).
        event_waves = tuple(
            wave
            for wave in (e.to_churn_wave(spec.rounds) for e in spec.network)
            if wave is not None
        )
        shifts = spec.shift.compile(n_peers, spec.rounds)
        dynamics = ScenarioDynamics(
            initial_capacities=capacities,
            churn_waves=waves + event_waves,
            behavior_shifts=shifts,
        )
        config = SimulationConfig(
            n_peers=n_peers,
            rounds=spec.rounds,
            bandwidth=distribution,
            churn_rate=churn_rate,
            dynamics=None if dynamics.is_trivial() else dynamics,
        )
        return SimulationJob(
            config=config, behaviors=behaviors, groups=groups, seed=seed
        )

    def job_seed(self, master_seed: int, repetition: int) -> int:
        """Deterministic per-(spec, master seed, repetition) simulation seed."""
        blob = f"{self.fingerprint()}:{master_seed}:{repetition}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")

    def jobs(
        self, scale: str = "paper", master_seed: int = 0, repetitions: int = 1
    ) -> List[SimulationJob]:
        """``repetitions`` independent jobs with deterministic derived seeds."""
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        return [
            self.compile(scale, seed=self.job_seed(master_seed, repetition))
            for repetition in range(repetitions)
        ]

    # ------------------------------------------------------------------ #
    # identity and serialization
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (round-trips via :meth:`from_dict`)."""
        data: Dict[str, object] = {
            "name": self.name,
            "population": self.population.as_dict(),
            "arrival": self.arrival.as_dict(),
            "shift": self.shift.as_dict(),
            "rounds": self.rounds,
            "description": self.description,
        }
        # Omitted when empty so every pre-network-event scenario fingerprint
        # (and the seeds derived from it) stays valid.
        if self.network:
            data["network"] = [e.as_dict() for e in self.network]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Inverse of :meth:`as_dict`."""
        return cls(
            name=str(data["name"]),
            population=PopulationSpec.from_dict(data["population"]),
            arrival=ArrivalSpec.from_dict(data["arrival"]),
            shift=ShiftSpec.from_dict(data["shift"]),
            rounds=int(data["rounds"]),
            description=str(data.get("description", "")),
            network=tuple(
                NetworkEventSpec.from_dict(e) for e in data.get("network", ())
            ),
        )

    def fingerprint(self) -> str:
        """Content hash of the full declaration (stable across processes)."""
        blob = json.dumps(self.as_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()
