"""Substrates: the two executable backends a scenario compiles onto.

The scenario layer is a *compiler* with two targets.  A
:class:`~repro.scenarios.spec.ScenarioSpec` is substrate-agnostic — it
declares population shape, arrival process, behaviour dynamics and network
events in scale-free terms — and a :class:`Substrate` turns it into an
executable, fingerprintable, cacheable job:

* :class:`RoundsSubstrate` targets the abstract round engines behind
  :func:`repro.sim.engine.simulate` (fast / reference / vec dispatch); the
  compiled artefact is the existing
  :class:`~repro.runner.jobs.SimulationJob`.
* :class:`SwarmSubstrate` targets the packet-level BitTorrent simulator:
  the spec compiles to a :class:`~repro.bittorrent.scenario.SwarmScenarioConfig`
  (peer plans with per-bandwidth-class rate limits, tracker-mediated
  arrivals/departures, behaviour-group → choker-variant mapping, network
  events in tick units) wrapped in a :class:`SwarmJob`.

Both job types flow through the same cached
:class:`~repro.runner.runner.ExperimentRunner`: executors call
``job.execute()`` polymorphically and the cache keys on ``fingerprint()``.
Swarm job payloads carry a ``"substrate": "swarm"`` discriminator that no
round-engine payload emits, so the two substrates can never collide in the
content-addressed cache — and every pre-existing fingerprint is untouched.

One scenario *round* maps to one rechoke interval of swarm ticks, so wave
timing, shifts and event windows land at the same relative points of the
run on both substrates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bittorrent.config import SwarmConfig
from repro.bittorrent.events import NetworkEvent
from repro.bittorrent.scenario import (
    SwarmArrivalModel,
    SwarmChurnWindow,
    SwarmPeerPlan,
    SwarmScenarioConfig,
    SwarmShift,
)
from repro.bittorrent.swarm import SwarmResult, SwarmSimulation
from repro.bittorrent.variants import variant_from_behavior
from repro.runner.jobs import SimulationJob, _bandwidth_payload
from repro.scenarios.spec import SCALE_FACTORS, ScenarioSpec, _largest_remainder

__all__ = [
    "SUBSTRATE_CHOICES",
    "SWARM_KB_PER_ROUND",
    "Substrate",
    "RoundsSubstrate",
    "SwarmSubstrate",
    "SwarmJob",
    "compile_swarm",
    "get_substrate",
]

#: Substrate names accepted by the CLI and the experiment drivers.
SUBSTRATE_CHOICES = ("rounds", "swarm")

#: File volume per scenario round for swarm-compiled scenarios (KB).
#:
#: A typical Piatek-capacity swarm delivers ~60 KB/tick per peer, i.e.
#: ~600 KB per 10-tick round; at 400 KB/round the median peer finishes
#: around two thirds of the horizon.  This matters: it keeps downloads
#: *overlapping* the scenario's mid-run dynamics (waves, shifts, faults)
#: instead of the whole swarm completing before the first wave fires, while
#: leaving slow/free-riding peers measurably censored at the horizon.
SWARM_KB_PER_ROUND = 400.0


def compile_swarm(spec: ScenarioSpec, scale: str = "paper") -> SwarmScenarioConfig:
    """Reduce a scenario to a fully compiled packet-level swarm plan.

    The population compiles through the same
    :meth:`~repro.scenarios.spec.PopulationSpec.compile` as the round
    substrate, then maps per peer: behaviour → choker variant
    (:func:`~repro.bittorrent.variants.variant_from_behavior`), bandwidth
    class → pinned capacity + rate limiter, ``uploads_nothing`` behaviours →
    zero-rate limiter.  Arrival kinds map to the swarm arrival models
    (identity replacement, Poisson growth, whitewash rejoins), shifts keep
    their exact slot targets, and network events convert to tick windows.
    """
    spec = spec.at_scale(scale)  # validates the scale name
    n_peers = spec.population.size
    rounds = spec.rounds
    behaviors, groups, capacities, distribution = spec.population.compile(n_peers)

    class_names: List[Optional[str]] = [None] * n_peers
    if spec.population.classes:
        counts = _largest_remainder(
            [c.fraction for c in spec.population.classes], n_peers
        )
        index = 0
        for cls_spec, count in zip(spec.population.classes, counts):
            for _ in range(count):
                class_names[index] = cls_spec.name
                index += 1

    base = SwarmConfig(
        n_leechers=n_peers,
        file_size_mb=rounds * SWARM_KB_PER_ROUND / 1024.0,
        bandwidth=distribution,
    )
    base = base.with_(max_ticks=rounds * base.rechoke_interval)
    round_ticks = base.rechoke_interval

    plans = tuple(
        SwarmPeerPlan(
            variant=variant_from_behavior(behaviors[i]),
            capacity=capacities[i] if capacities is not None else None,
            group=groups[i],
            capacity_class=class_names[i],
            free_rider=behaviors[i].uploads_nothing,
        )
        for i in range(n_peers)
    )

    arrival = spec.arrival
    waves: tuple = ()
    if arrival.is_variable:
        if arrival.kind == "poisson":
            default_plan = SwarmPeerPlan(
                variant=variant_from_behavior(spec.population.default_behavior),
                free_rider=spec.population.default_behavior.uploads_nothing,
            )
            model = SwarmArrivalModel(
                kind="poisson",
                churn_rate=arrival.churn_rate,
                arrival_rate=arrival.size * n_peers,
                arrival_start_round=min(rounds - 1, round(arrival.at * rounds)),
                arrival_plan=default_plan,
                max_active=round(arrival.cap * n_peers) if arrival.cap else 0,
            )
        else:  # whitewash
            model = SwarmArrivalModel(
                kind="whitewash",
                churn_rate=arrival.churn_rate,
                rejoin_prob=arrival.size,
                target_groups=arrival.target_groups,
                target_churn=arrival.target_churn,
            )
    else:
        churn_rate, churn_waves = arrival.compile(rounds)
        model = SwarmArrivalModel(kind="replacement", churn_rate=churn_rate)
        waves = tuple(
            SwarmChurnWindow(
                start_round=w.start,
                rounds=w.rounds,
                intensity=w.intensity,
                correlated=w.correlated,
            )
            for w in churn_waves
        )

    shifts = tuple(
        SwarmShift(
            round=bs.round,
            slot_ids=bs.peer_ids,
            variant=variant_from_behavior(bs.behavior),
            free_rider=bs.behavior.uploads_nothing,
            group=bs.group,
        )
        for bs in spec.shift.compile(n_peers, rounds)
    )

    events = tuple(
        NetworkEvent(
            kind=e.kind,
            start=e.start_round(rounds) * round_ticks,
            duration=e.span_rounds(rounds) * round_ticks,
            fraction=e.fraction,
            severity=e.severity,
        )
        for e in spec.network
    )

    return SwarmScenarioConfig(
        base=base,
        plans=plans,
        rounds=rounds,
        arrivals=model,
        waves=waves,
        shifts=shifts,
        events=events,
    )


@dataclass(frozen=True)
class SwarmJob:
    """One swarm-substrate scenario run, described by value.

    Stores the *paper-scale* spec plus the scale so the job is a small,
    picklable value (process executors ship it to workers); compilation is
    deterministic and cheap, so it happens on demand.
    """

    spec: ScenarioSpec
    scale: str = "paper"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scale not in SCALE_FACTORS:
            raise ValueError(
                f"scale must be one of {tuple(SCALE_FACTORS)}, got {self.scale!r}"
            )

    @property
    def config(self) -> SwarmConfig:
        """The effective swarm config (what cache hits are rebuilt against)."""
        return compile_swarm(self.spec, self.scale).base

    # ------------------------------------------------------------------ #
    # identity
    # ------------------------------------------------------------------ #
    def payload(self) -> Dict[str, object]:
        """Everything that determines the run outcome, as JSON-stable data.

        The ``"substrate"`` discriminator keeps swarm fingerprints disjoint
        from every round-engine fingerprint; the compiled swarm parameters
        are included so a change to the spec → swarm mapping changes the
        fingerprint (stale cached results can never be served).
        """
        config = self.config
        return {
            "substrate": "swarm",
            "scenario": self.spec.as_dict(),
            "scale": self.scale,
            "swarm": {
                "n_leechers": config.n_leechers,
                "seeder_upload_kbps": config.seeder_upload_kbps,
                "file_size_mb": config.file_size_mb,
                "piece_size_kb": config.piece_size_kb,
                "rechoke_interval": config.rechoke_interval,
                "optimistic_interval": config.optimistic_interval,
                "regular_slots": config.regular_slots,
                "seeder_slots": config.seeder_slots,
                "max_ticks": config.max_ticks,
                "bandwidth": _bandwidth_payload(config.distribution()),
            },
            "seed": self.seed,
        }

    def fingerprint(self) -> str:
        """Content hash identifying this job (and therefore its result)."""
        blob = json.dumps(self.payload(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self) -> SwarmResult:
        """Compile and run the packet-level swarm described by this job."""
        scenario = compile_swarm(self.spec, self.scale)
        return SwarmSimulation(scenario=scenario, seed=self.seed).run()


class Substrate:
    """Interface of a scenario compilation target.

    A substrate turns a :class:`ScenarioSpec` into executable jobs; the
    runner and cache treat the result uniformly via ``execute()`` /
    ``fingerprint()`` duck typing.
    """

    name: str = "abstract"

    def compile_job(
        self, spec: ScenarioSpec, scale: str = "paper", seed: Optional[int] = 0
    ):
        raise NotImplementedError

    def jobs(
        self,
        spec: ScenarioSpec,
        scale: str = "paper",
        master_seed: int = 0,
        repetitions: int = 1,
    ) -> List[object]:
        """``repetitions`` independent jobs with deterministic derived seeds.

        Seeds derive from the spec fingerprint exactly like the round
        substrate's :meth:`ScenarioSpec.jobs`, so paired cross-substrate
        comparisons share seed streams per (scenario, repetition).
        """
        if repetitions < 1:
            raise ValueError("repetitions must be >= 1")
        return [
            self.compile_job(spec, scale, seed=spec.job_seed(master_seed, repetition))
            for repetition in range(repetitions)
        ]


class RoundsSubstrate(Substrate):
    """The abstract round-engine substrate (fast / reference / vec dispatch)."""

    name = "rounds"

    def compile_job(
        self, spec: ScenarioSpec, scale: str = "paper", seed: Optional[int] = 0
    ) -> SimulationJob:
        return spec.compile(scale, seed=seed)


class SwarmSubstrate(Substrate):
    """The packet-level BitTorrent swarm substrate."""

    name = "swarm"

    def compile_job(
        self, spec: ScenarioSpec, scale: str = "paper", seed: Optional[int] = 0
    ) -> SwarmJob:
        return SwarmJob(spec=spec, scale=scale, seed=seed)


_SUBSTRATES = {"rounds": RoundsSubstrate(), "swarm": SwarmSubstrate()}


def get_substrate(name: str) -> Substrate:
    """The substrate registered under ``name`` (``"rounds"`` or ``"swarm"``)."""
    try:
        return _SUBSTRATES[name]
    except KeyError:
        raise ValueError(
            f"unknown substrate {name!r}; expected one of {SUBSTRATE_CHOICES}"
        ) from None
