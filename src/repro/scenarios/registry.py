"""The named-scenario registry: the shared workload vocabulary.

Every experiment that stresses protocol variants across workloads draws its
scenarios from here, so "flash-crowd" means the same population, arrival
process and dynamics everywhere — in the CLI, the scenario sweep and any
future experiment.  The built-ins cover the workload axes the ROADMAP calls
for:

==================  =====================================================
baseline            the paper's static swarm (no churn, no dynamics)
flash-crowd         a correlated batch of newcomers replaces 40% of the
                    swarm mid-run, on top of mild steady churn
burst-churn         repeated windows of elevated independent churn
                    (correlated failure waves)
capacity-skew       seed/leecher asymmetry: few fast generous seed-class
                    peers among many slow leechers
free-rider-wave     30% of peers switch to contributing nothing mid-run
colluders           a clique switches on mid-run: loyal to each other,
                    defecting on everyone else
growing-swarm       variable population: a Poisson stream of genuine
                    newcomers grows the swarm (capped at 3x) while mild
                    true departures thin it
whitewash-churn     variable population: departing peers re-enter under
                    fresh identities to shed their reputation
                    (Sybil-style whitewashing)
colluding-whitewash variable population: a colluder clique (loyal in-group,
                    defecting outward) deliberately cycles identities —
                    elevated targeted churn with near-certain whitewash
                    rejoins — while honest departures leave for good
network-faults      steady mild churn plus injected network events: a
                    link-degradation window mid-run and a partition/heal
                    cycle later (survivability under failure; the swarm
                    substrate injects the faults natively, the round
                    engine approximates them as churn waves)
==================  =====================================================

Additional scenarios can be registered at runtime with :func:`register`
(name collisions are rejected; tests use :func:`unregister` to clean up).
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import (
    ArrivalSpec,
    BandwidthClass,
    BehaviorGroup,
    NetworkEventSpec,
    PopulationSpec,
    ScenarioSpec,
    ShiftSpec,
)
from repro.sim.behavior import PeerBehavior

__all__ = [
    "register",
    "unregister",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add ``spec`` to the registry (its name must be unused) and return it."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def unregister(name: str) -> None:
    """Remove a registered scenario (KeyError if absent)."""
    del _REGISTRY[name]


def get_scenario(name: str) -> ScenarioSpec:
    """The registered scenario called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from None


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[ScenarioSpec]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# ---------------------------------------------------------------------- #
# built-in scenarios
# ---------------------------------------------------------------------- #
register(
    ScenarioSpec(
        name="baseline",
        description="Static 50-peer swarm, Piatek capacities, no churn",
        population=PopulationSpec(size=50),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="flash-crowd",
        description="40% of the swarm replaced by a newcomer burst at t=0.3",
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(
            kind="flash_crowd", churn_rate=0.01, at=0.3, size=0.4, duration=2
        ),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="burst-churn",
        description="Correlated failure waves: +15% churn for 3 rounds, every 20% of the run",
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(
            kind="burst_churn", churn_rate=0.01, at=0.2, size=0.15,
            duration=3, period=0.2,
        ),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="capacity-skew",
        description="Seed/leecher asymmetry: 10% fast generous seeds, 90% slow leechers",
        population=PopulationSpec(
            size=50,
            classes=(
                BandwidthClass(
                    name="seed",
                    fraction=0.10,
                    capacity=800.0,
                    behavior=PeerBehavior.generous_seed(),
                ),
                BandwidthClass(name="mid", fraction=0.30, capacity=80.0),
                BandwidthClass(name="leecher", fraction=0.60, capacity=20.0),
            ),
        ),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="free-rider-wave",
        description="30% of peers switch to contributing nothing at t=0.4",
        population=PopulationSpec(size=50),
        shift=ShiftSpec(kind="free_rider_wave", at=0.4, fraction=0.3),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="colluders",
        description="A 20% clique switches on at t=0.25: loyal in-group, defecting outward",
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(kind="steady", churn_rate=0.01),
        shift=ShiftSpec(kind="colluders", at=0.25, fraction=0.2),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="growing-swarm",
        description=(
            "Variable population: Poisson newcomers (3% of the initial swarm "
            "per round, capped at 3x) against 1% true departures"
        ),
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(
            kind="poisson", churn_rate=0.01, at=0.0, size=0.03, cap=3.0
        ),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="whitewash-churn",
        description=(
            "Variable population: 4% true departures per round, 90% of them "
            "re-entering under fresh identities (whitewashing)"
        ),
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(kind="whitewash", churn_rate=0.04, size=0.9),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="network-faults",
        description=(
            "Survivability under failure: 30% of peers degraded to half "
            "rate at t=0.25 for 20% of the run, then a 25% partition at "
            "t=0.6 healing after 15% of the run, over 1% steady churn"
        ),
        population=PopulationSpec(size=50),
        arrival=ArrivalSpec(kind="steady", churn_rate=0.01),
        network=(
            NetworkEventSpec(
                kind="degrade", at=0.25, span=0.2, fraction=0.3, severity=0.5
            ),
            NetworkEventSpec(kind="partition", at=0.6, span=0.15, fraction=0.25),
        ),
        rounds=200,
    )
)

register(
    ScenarioSpec(
        name="colluding-whitewash",
        description=(
            "Variable population: a 20% colluder clique sheds reputation by "
            "targeted identity churn (+6%/round, 95% whitewash rejoins) on "
            "top of 2% honest departures that leave for good"
        ),
        population=PopulationSpec(
            size=50,
            groups=(
                BehaviorGroup(
                    name="colluder",
                    fraction=0.2,
                    behavior=PeerBehavior.colluder(),
                ),
            ),
        ),
        arrival=ArrivalSpec(
            kind="whitewash",
            churn_rate=0.02,
            size=0.95,
            target_groups=("colluder",),
            target_churn=0.06,
        ),
        rounds=200,
    )
)
