"""Declarative workload scenarios for dynamic and adversarial experiments.

The public surface is the spec types (:class:`ScenarioSpec` and its
components), which compile down to cached, parallel-executable simulation
jobs, and the named-scenario registry shared by every experiment.
"""

from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    BandwidthClass,
    BehaviorGroup,
    PopulationSpec,
    ScenarioSpec,
    ShiftSpec,
)

__all__ = [
    "ArrivalSpec",
    "BandwidthClass",
    "BehaviorGroup",
    "PopulationSpec",
    "ScenarioSpec",
    "ShiftSpec",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
    "unregister",
]
