"""Declarative workload scenarios for dynamic and adversarial experiments.

The public surface is the spec types (:class:`ScenarioSpec` and its
components), which compile down to cached, parallel-executable simulation
jobs, and the named-scenario registry shared by every experiment.
"""

from repro.scenarios.registry import (
    all_scenarios,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.spec import (
    ArrivalSpec,
    BandwidthClass,
    BehaviorGroup,
    NetworkEventSpec,
    PopulationSpec,
    ScenarioSpec,
    ShiftSpec,
)
from repro.scenarios.substrate import (
    SUBSTRATE_CHOICES,
    RoundsSubstrate,
    Substrate,
    SwarmJob,
    SwarmSubstrate,
    compile_swarm,
    get_substrate,
)

__all__ = [
    "ArrivalSpec",
    "BandwidthClass",
    "BehaviorGroup",
    "NetworkEventSpec",
    "PopulationSpec",
    "ScenarioSpec",
    "ShiftSpec",
    "SUBSTRATE_CHOICES",
    "Substrate",
    "RoundsSubstrate",
    "SwarmSubstrate",
    "SwarmJob",
    "compile_swarm",
    "get_substrate",
    "all_scenarios",
    "get_scenario",
    "register",
    "scenario_names",
    "unregister",
]
