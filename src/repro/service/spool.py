"""The spool: a directory/queue protocol coordinating schedulers and workers.

Everything the service shares between processes lives in one spool
directory, manipulated only through atomic filesystem operations — no
sockets, no locks, no daemons — so any number of submitters and workers
(including on different machines over a shared filesystem) cooperate
safely:

.. code-block:: text

    <root>/
      pending/<fp>.job           queued work: one pickled job per file
      claimed/<worker>/<fp>.job  in-flight work, owned by one worker
      errors/<fp>.json           last execution error for a job (atomic)
      workers/<worker>.json      registration (pid, started) per worker
      workers/<worker>.alive     heartbeat: mtime touched by the worker loop
      stop                       sentinel: workers drain and exit

The invariants the protocol rests on:

* **enqueue is exclusive** — a job file is created via temp-file +
  ``os.link``, which fails with ``FileExistsError`` if another submitter
  got there first: concurrent submitters sharing a spool enqueue each
  unique fingerprint once;
* **claim is atomic** — a worker takes a job with a single ``os.rename``
  from ``pending/`` into its own ``claimed/<worker>/`` directory; rename
  either succeeds (the worker owns the job) or raises (someone else won);
  a job file is therefore always at exactly one place;
* **death is visible** — a worker killed mid-job leaves its claimed file
  behind and its heartbeat goes stale; the scheduler re-queues such
  orphans (jobs *survive* worker death, in the survivability-strategy
  sense: re-mapped, not lost);
* **results are elsewhere** — completion is "the fingerprint appears in
  the shared :class:`~repro.service.store.IndexedResultStore`", so the
  spool never carries result payloads and a re-executed job is harmless
  (content-addressed results are idempotent).

The spool is also where telemetry hooks the job lifecycle: handed a
:class:`~repro.telemetry.Telemetry`, it emits ``enqueue``/``claim``/
``requeue``/``error`` events at the exact atomic operations — whichever
process (scheduler or worker) performs them — and observes claim latency
(time a job file sat in ``pending/``, read off its mtime, which both
``enqueue`` and ``release_claim`` preserve) into the shared metrics.
Without telemetry the hooks are :data:`~repro.telemetry.NULL_TELEMETRY`
stubs.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry import NULL_TELEMETRY

__all__ = ["Spool", "WorkerInfo"]


@dataclass(frozen=True)
class WorkerInfo:
    """One registered worker as seen through the spool."""

    worker_id: str
    pid: Optional[int]
    heartbeat_age: float
    alive: bool
    claimed: int


class Spool:
    """Handle on a spool directory (creates the layout on first use)."""

    def __init__(self, root: Union[str, Path], telemetry=None):
        self.root = Path(root)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    @property
    def pending_dir(self) -> Path:
        return self.root / "pending"

    @property
    def claimed_dir(self) -> Path:
        return self.root / "claimed"

    @property
    def errors_dir(self) -> Path:
        return self.root / "errors"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def ensure_layout(self) -> None:
        for directory in (
            self.pending_dir,
            self.claimed_dir,
            self.errors_dir,
            self.workers_dir,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # enqueue / claim / finish
    # ------------------------------------------------------------------ #
    def _job_path(self, fingerprint: str) -> Path:
        return self.pending_dir / f"{fingerprint}.job"

    def enqueue(self, fingerprint: str, job) -> bool:
        """Queue ``job`` under ``fingerprint``; False if already queued.

        The job file appears atomically (temp file + ``os.link``) and
        exclusively — the loser of an enqueue race sees ``False`` and
        simply awaits the winner's job.
        """
        self.ensure_layout()
        target = self._job_path(fingerprint)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.pending_dir, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(job, handle, protocol=pickle.HIGHEST_PROTOCOL)
            try:
                os.link(tmp_name, target)
            except FileExistsError:
                return False
            self.telemetry.emit("enqueue", fingerprint=fingerprint)
            self.telemetry.metrics.inc("spool.enqueued")
            return True
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    def is_queued_or_claimed(self, fingerprint: str) -> bool:
        """Whether a job file for ``fingerprint`` exists anywhere."""
        if self._job_path(fingerprint).exists():
            return True
        name = f"{fingerprint}.job"
        if not self.claimed_dir.exists():
            return False
        return any(
            (worker_dir / name).exists()
            for worker_dir in self.claimed_dir.iterdir()
            if worker_dir.is_dir()
        )

    def claim(self, worker_id: str) -> Optional[Tuple[str, object]]:
        """Atomically take one pending job, or ``None`` if the queue is empty.

        Claims the oldest pending entry first (FIFO by enqueue mtime, name
        as tie-break) so long-waiting jobs are not starved; rename races
        with other workers simply move on to the next candidate — that *is*
        the work-stealing: every idle worker pulls from the one shared
        queue, so a fast worker drains what a slow one never got to.
        """
        if not self.pending_dir.exists():
            return None
        own_dir = self.claimed_dir / worker_id
        own_dir.mkdir(parents=True, exist_ok=True)
        try:
            candidates = sorted(
                self.pending_dir.glob("*.job"),
                key=lambda p: (p.stat().st_mtime, p.name),
            )
        except OSError:
            candidates = sorted(self.pending_dir.glob("*.job"))
        for candidate in candidates:
            target = own_dir / candidate.name
            try:
                os.rename(candidate, target)
            except OSError:
                continue  # another worker won the race (or file vanished)
            try:
                with target.open("rb") as handle:
                    job = pickle.load(handle)
            except Exception:
                # Undecodable job file: drop it rather than poison the
                # worker loop; the scheduler's timeout path re-queues.
                target.unlink(missing_ok=True)
                continue
            # Rename preserves mtime, so the claimed file still carries its
            # enqueue time: the difference *is* the queue wait.
            queue_wait = None
            try:
                queue_wait = max(0.0, time.time() - target.stat().st_mtime)
            except OSError:
                pass
            self.telemetry.emit(
                "claim",
                fingerprint=candidate.stem,
                worker=worker_id,
                queue_wait=queue_wait,
            )
            self.telemetry.metrics.inc("spool.claimed")
            if queue_wait is not None:
                self.telemetry.metrics.observe("claim_latency_seconds", queue_wait)
            return candidate.stem, job
        return None

    def finish(self, worker_id: str, fingerprint: str) -> None:
        """Release a claimed job (after its result landed in the store)."""
        path = self.claimed_dir / worker_id / f"{fingerprint}.job"
        path.unlink(missing_ok=True)

    def release_claim(
        self, worker_id: str, fingerprint: str, reason: str = "requeue"
    ) -> bool:
        """Move one claimed job back to pending (scheduler recovery path).

        ``reason`` labels the telemetry event — ``"dead-worker"`` and
        ``"timeout"`` are the scheduler's two recovery sweeps.
        """
        source = self.claimed_dir / worker_id / f"{fingerprint}.job"
        target = self._job_path(fingerprint)
        self.ensure_layout()
        try:
            os.rename(source, target)
        except OSError:
            return False
        self.telemetry.emit(
            "requeue", fingerprint=fingerprint, worker=worker_id, reason=reason
        )
        self.telemetry.metrics.inc("spool.requeued")
        self.telemetry.metrics.inc(f"spool.requeued.{reason}")
        return True

    def claimed_jobs(self) -> Dict[str, List[str]]:
        """``worker_id -> [fingerprint, ...]`` of every in-flight claim."""
        claims: Dict[str, List[str]] = {}
        if not self.claimed_dir.exists():
            return claims
        for worker_dir in self.claimed_dir.iterdir():
            if not worker_dir.is_dir():
                continue
            fingerprints = [entry.stem for entry in worker_dir.glob("*.job")]
            if fingerprints:
                claims[worker_dir.name] = fingerprints
        return claims

    def queue_depth(self) -> int:
        """Number of pending (unclaimed) jobs."""
        if not self.pending_dir.exists():
            return 0
        return sum(1 for _ in self.pending_dir.glob("*.job"))

    def in_flight(self) -> int:
        """Number of claimed (in-execution) jobs."""
        return sum(len(fps) for fps in self.claimed_jobs().values())

    # ------------------------------------------------------------------ #
    # execution errors
    # ------------------------------------------------------------------ #
    def report_error(self, fingerprint: str, worker_id: str, error: BaseException) -> None:
        """Record a job execution failure (last error wins, atomic)."""
        self.ensure_layout()
        payload = {
            "fingerprint": fingerprint,
            "worker": worker_id,
            "error": f"{type(error).__name__}: {error}",
            "time": time.time(),
        }
        fd, tmp_name = tempfile.mkstemp(dir=self.errors_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp_name, self.errors_dir / f"{fingerprint}.json")
        self.telemetry.emit(
            "error",
            fingerprint=fingerprint,
            worker=worker_id,
            error=payload["error"],
        )
        self.telemetry.metrics.inc("spool.errors")

    def error_fingerprints(self) -> List[str]:
        """Fingerprints with a recorded execution error (one listing)."""
        if not self.errors_dir.exists():
            return []
        return [entry.stem for entry in self.errors_dir.glob("*.json")]

    def take_error(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """Consume (read + delete) the recorded error for a job, if any."""
        path = self.errors_dir / f"{fingerprint}.json"
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        path.unlink(missing_ok=True)
        return payload

    # ------------------------------------------------------------------ #
    # worker liveness
    # ------------------------------------------------------------------ #
    def register_worker(self, worker_id: str, pid: Optional[int] = None) -> None:
        self.ensure_layout()
        info = {"pid": pid if pid is not None else os.getpid(), "started": time.time()}
        path = self.workers_dir / f"{worker_id}.json"
        fd, tmp_name = tempfile.mkstemp(dir=self.workers_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(info, handle)
        os.replace(tmp_name, path)
        self.heartbeat(worker_id)

    def unregister_worker(self, worker_id: str) -> None:
        (self.workers_dir / f"{worker_id}.json").unlink(missing_ok=True)
        (self.workers_dir / f"{worker_id}.alive").unlink(missing_ok=True)

    def heartbeat(self, worker_id: str) -> None:
        """Touch the worker's liveness file (cheap: one utime or create)."""
        path = self.workers_dir / f"{worker_id}.alive"
        try:
            os.utime(path)
        except FileNotFoundError:
            self.ensure_layout()
            path.touch()

    def heartbeat_age(self, worker_id: str, now: Optional[float] = None) -> float:
        """Seconds since the worker's last heartbeat (``inf`` if never)."""
        path = self.workers_dir / f"{worker_id}.alive"
        try:
            mtime = path.stat().st_mtime
        except OSError:
            return float("inf")
        return max(0.0, (now if now is not None else time.time()) - mtime)

    def _grace_age(self, worker_id: str, now: float) -> float:
        """Age of the youngest non-heartbeat evidence a worker exists.

        Registration file and claim directory mtimes — what a worker that
        has not heartbeated yet (still importing numpy, still between its
        registration write and its first heartbeat touch) leaves behind.
        """
        age = float("inf")
        for path in (
            self.workers_dir / f"{worker_id}.json",
            self.claimed_dir / worker_id,
        ):
            try:
                age = min(age, max(0.0, now - path.stat().st_mtime))
            except OSError:
                continue
        return age

    def workers(
        self, liveness_timeout: float = 5.0, registration_grace: float = 0.0
    ) -> List[WorkerInfo]:
        """Every worker that registered (or left claims behind), with liveness.

        A worker with no heartbeat at all (``heartbeat_age == inf``) is not
        necessarily dead — it may be *young*: registered (or holding a
        freshly created claim directory) but not yet through its first
        loop iteration.  ``registration_grace`` keeps such workers alive
        while their registration/claim evidence is younger than the grace
        window, so the scheduler's dead-worker sweep does not re-queue a
        claim out from under a worker that is still starting up.
        """
        claims = self.claimed_jobs()
        seen = set()
        infos: List[WorkerInfo] = []
        now = time.time()

        def liveness(worker_id: str, age: float) -> bool:
            if age <= liveness_timeout:
                return True
            if age == float("inf") and registration_grace > 0.0:
                return self._grace_age(worker_id, now) <= registration_grace
            return False

        if self.workers_dir.exists():
            for entry in sorted(self.workers_dir.glob("*.json")):
                worker_id = entry.stem
                seen.add(worker_id)
                try:
                    with entry.open("r", encoding="utf-8") as handle:
                        pid = json.load(handle).get("pid")
                except (OSError, json.JSONDecodeError):
                    pid = None
                age = self.heartbeat_age(worker_id, now)
                infos.append(
                    WorkerInfo(
                        worker_id=worker_id,
                        pid=pid,
                        heartbeat_age=age,
                        alive=liveness(worker_id, age),
                        claimed=len(claims.get(worker_id, [])),
                    )
                )
        # Claims of workers that never registered (or whose registration
        # was cleaned up) still need liveness accounting: dead, unless the
        # claim evidence is young enough to fall in the grace window.
        for worker_id in sorted(set(claims) - seen):
            infos.append(
                WorkerInfo(
                    worker_id=worker_id,
                    pid=None,
                    heartbeat_age=float("inf"),
                    alive=liveness(worker_id, float("inf")),
                    claimed=len(claims[worker_id]),
                )
            )
        return infos

    # ------------------------------------------------------------------ #
    # stop sentinel
    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Ask every worker sharing the spool to drain and exit."""
        self.root.mkdir(parents=True, exist_ok=True)
        self.stop_path.touch()

    def clear_stop(self) -> None:
        self.stop_path.unlink(missing_ok=True)

    def stop_requested(self) -> bool:
        return self.stop_path.exists()

    # ------------------------------------------------------------------ #
    # garbage collection
    # ------------------------------------------------------------------ #
    def compact(
        self,
        liveness_timeout: float = 5.0,
        worker_ttl: float = 60.0,
        error_ttl: float = 3600.0,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Garbage-collect spool debris; returns per-category removal counts.

        A long-lived spool accumulates residue that no protocol step ever
        cleans up: registration/heartbeat files of workers that exited
        uncleanly, empty claim directories left by :meth:`release_claim`,
        error files nobody collected (e.g. a scheduler that went away), and
        a stop sentinel from a previous drain.  None of it breaks
        correctness, but it slows directory scans and makes ``repro
        status`` lie about the worker roster.  Everything removed here is
        either provably stale or re-creatable, and every removal uses the
        same tolerant, atomic idioms as the hot path — so compaction is
        safe to run concurrently with live workers.

        * worker files: removed once a worker has been heartbeat-dead for
          ``worker_ttl`` beyond ``liveness_timeout`` and holds no claims
          (claims are left for the scheduler's re-queue sweep first);
        * stray ``.alive`` files without a matching registration follow the
          same staleness rule;
        * empty claim directories of dead or unknown workers are rmdir'd
          (``OSError`` means the worker raced a new claim in — skip);
        * error files older than ``error_ttl`` are dropped;
        * the stop sentinel is cleared when it is stale and no registered
          worker is still alive to consume it.
        """
        if now is None:
            now = time.time()
        removed = {
            "workers": 0,
            "heartbeats": 0,
            "claim_dirs": 0,
            "errors": 0,
            "stop": 0,
        }
        claims = self.claimed_jobs()
        stale_cutoff = liveness_timeout + worker_ttl

        registered = set()
        if self.workers_dir.exists():
            for entry in sorted(self.workers_dir.glob("*.json")):
                worker_id = entry.stem
                registered.add(worker_id)
                age = self.heartbeat_age(worker_id, now)
                if age == float("inf"):
                    # Never heartbeated: judge by registration age instead,
                    # same grace logic the liveness check uses.
                    age = self._grace_age(worker_id, now)
                if age <= stale_cutoff or claims.get(worker_id):
                    continue
                alive_path = self.workers_dir / f"{worker_id}.alive"
                entry.unlink(missing_ok=True)
                removed["workers"] += 1
                if alive_path.exists():
                    alive_path.unlink(missing_ok=True)
                    removed["heartbeats"] += 1
            # Heartbeat files whose registration is already gone.
            for alive_path in sorted(self.workers_dir.glob("*.alive")):
                worker_id = alive_path.stem
                if worker_id in registered:
                    continue
                try:
                    age = max(0.0, now - alive_path.stat().st_mtime)
                except OSError:
                    continue
                if age > stale_cutoff and not claims.get(worker_id):
                    alive_path.unlink(missing_ok=True)
                    removed["heartbeats"] += 1

        # Empty claim directories of workers that are gone.  Live workers
        # re-create theirs on the next claim; rmdir refuses non-empty ones
        # and a concurrent claim simply makes it fail — both fine.
        if self.claimed_dir.exists():
            live = {
                info.worker_id
                for info in self.workers(liveness_timeout)
                if info.alive
            }
            for claim_dir in sorted(self.claimed_dir.iterdir()):
                if not claim_dir.is_dir() or claim_dir.name in live:
                    continue
                try:
                    claim_dir.rmdir()
                except OSError:
                    continue  # not empty, or a claim raced in
                removed["claim_dirs"] += 1

        if self.errors_dir.exists():
            for error_path in sorted(self.errors_dir.glob("*.json")):
                try:
                    age = max(0.0, now - error_path.stat().st_mtime)
                except OSError:
                    continue
                if age > error_ttl:
                    error_path.unlink(missing_ok=True)
                    removed["errors"] += 1

        if self.stop_path.exists():
            any_alive = any(
                info.alive for info in self.workers(liveness_timeout)
            )
            try:
                stop_age = max(0.0, now - self.stop_path.stat().st_mtime)
            except OSError:
                stop_age = 0.0
            if not any_alive and stop_age > stale_cutoff:
                self.stop_path.unlink(missing_ok=True)
                removed["stop"] += 1

        if any(removed.values()):
            self.telemetry.metrics.inc(
                "spool.compacted", float(sum(removed.values()))
            )
        return removed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Spool(root={str(self.root)!r})"
