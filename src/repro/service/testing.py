"""Fault-injection jobs for exercising the service's failure paths.

These doubles satisfy the job duck type (``fingerprint()`` / ``execute()``
/ ``seed``) without touching the simulation engines, and live in the
installed package — not the test tree — so spool-pickled instances load in
*any* worker process (CI smoke runs, ``repro serve`` workers, forked
pools alike).
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass

from repro.runner.jobs import RESULT_PAYLOAD_VERSION

__all__ = ["EchoJob", "FailJob", "HangJob", "WorkerKillJob"]


class _StringResultCodec:
    """Payload hooks letting the doubles' string results round-trip the cache.

    The result cache serialises simulation results with a shared codec; jobs
    of any other type provide ``result_to_payload``/``result_from_payload``
    themselves (see :meth:`repro.runner.cache.ResultCache.put`) — here a
    trivial tagged envelope, so the doubles flow through the *real*
    store/worker machinery end to end.
    """

    def result_to_payload(self, result):
        return {
            "version": RESULT_PAYLOAD_VERSION,
            "kind": "service-testing",
            "value": result,
        }

    def result_from_payload(self, payload):
        return payload["value"]


@dataclass(frozen=True)
class EchoJob(_StringResultCodec):
    """Completes instantly with a deterministic payload-free result."""

    token: str
    seed: int = 0

    def fingerprint(self) -> str:
        blob = f"echo:{self.token}:{self.seed}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def execute(self) -> str:
        return f"echo:{self.token}"


@dataclass(frozen=True)
class FailJob(_StringResultCodec):
    """Raises on every attempt — exercises retry exhaustion."""

    token: str
    seed: int = 0

    def fingerprint(self) -> str:
        blob = f"fail:{self.token}:{self.seed}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def execute(self):
        raise RuntimeError(f"injected failure for {self.token}")


@dataclass(frozen=True)
class HangJob(_StringResultCodec):
    """Sleeps far past any sane job timeout — exercises the timeout path."""

    token: str
    sleep_seconds: float = 3600.0
    seed: int = 0

    def fingerprint(self) -> str:
        blob = f"hang:{self.token}:{self.sleep_seconds}:{self.seed}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def execute(self):
        time.sleep(self.sleep_seconds)
        return f"hang:{self.token}"


@dataclass(frozen=True)
class WorkerKillJob(_StringResultCodec):
    """SIGKILLs the executing worker — exercises dead-worker re-queue.

    ``max_kills`` bounds the carnage via a marker directory: once that many
    workers have died on this job, later attempts succeed — modelling a
    transient crash (OOM kill, preemption) rather than a poison pill.
    """

    token: str
    marker_dir: str
    max_kills: int = 1
    seed: int = 0

    def fingerprint(self) -> str:
        blob = f"kill:{self.token}:{self.max_kills}:{self.seed}".encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def execute(self) -> str:
        os.makedirs(self.marker_dir, exist_ok=True)
        kills = len(os.listdir(self.marker_dir))
        if kills < self.max_kills:
            with open(
                os.path.join(self.marker_dir, f"kill-{kills}-{os.getpid()}"), "w"
            ):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
        return f"kill:{self.token}:survived"
